// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # Libra — a unified congestion control framework
//!
//! A from-scratch Rust reproduction of *"A Unified Congestion Control
//! Framework for Diverse Application Preferences and Network Conditions"*
//! (CoNEXT 2021). Libra combines a classic congestion-control algorithm
//! (CUBIC or BBR) with a PPO-based learned one through a three-stage
//! control cycle — **explore → evaluate → exploit** — arbitrated by the
//! utility function
//!
//! ```text
//! u(x) = α·x^t − β·x·max(0, dRTT/dt) − γ·x·L
//! ```
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `libra-types` | time/rate units, the `CongestionControl` trait, utility function |
//! | [`netsim`] | `libra-netsim` | deterministic packet-level network simulator + trace generators |
//! | [`nn`] | `libra-nn` | dense NN substrate (MLP, Adam) |
//! | [`rl`] | `libra-rl` | PPO actor-critic |
//! | [`classic`] | `libra-classic` | CUBIC, BBR, Reno, Vegas, Westwood, Illinois, Copa |
//! | [`learned`] | `libra-learned` | Aurora, Orca, PCC Vivace/Proteus, Remy/Indigo/Sprout, RL formulations |
//! | [`core`] | `libra-core` | **Libra itself** (three-stage cycle, preferences, equilibrium analysis) |
//!
//! # Quickstart
//!
//! ```
//! use libra::prelude::*;
//! use std::{cell::RefCell, rc::Rc};
//!
//! // A deterministic 24 Mbps / 40 ms RTT dumbbell with a 1-BDP buffer.
//! let link = LinkConfig::constant(Rate::from_mbps(24.0), Duration::from_millis(40), 1.0);
//! let until = Instant::from_secs(10);
//! let mut sim = Simulation::new(link, 42);
//!
//! // C-Libra: CUBIC + a (here untrained, deterministic) RL component.
//! let mut rng = DetRng::new(7);
//! let mut agent = PpoAgent::new(Libra::ppo_config(), &mut rng);
//! agent.set_eval(true);
//! let libra = Libra::c_libra(Rc::new(RefCell::new(agent)));
//!
//! sim.add_flow(FlowConfig::whole_run(Box::new(libra), until));
//! let report = sim.run(until);
//! assert!(report.link.utilization > 0.5);
//! ```

pub use libra_classic as classic;
pub use libra_core as core;
pub use libra_learned as learned;
pub use libra_netsim as netsim;
pub use libra_nn as nn;
pub use libra_rl as rl;
pub use libra_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use libra_classic::{Bbr, Copa, Cubic, Illinois, NewReno, Vegas, Westwood};
    pub use libra_core::{GuardrailParams, Libra, LibraParams, LibraVariant};
    pub use libra_learned::{Orca, Pcc, Remy, RlCca, RlCcaConfig, Sprout};
    pub use libra_netsim::{
        lte_link, step_link, wan_link, wired_link, CapacitySchedule, FaultKind, FaultPlan,
        FaultReport, FlowConfig, GilbertElliott, LinkConfig, LteScenario, SimConfig, SimReport,
        Simulation, WanScenario,
    };
    pub use libra_rl::{PpoAgent, PpoConfig};
    pub use libra_types::{
        CongestionControl, DetRng, Duration, Instant, Preference, Rate, UtilityParams,
    };
}
