//! Orca (Abbasloo et al., SIGCOMM'20): the prior classic+RL hybrid the
//! paper positions Libra against. A DRL agent periodically rescales the
//! base congestion window of an underlying CUBIC (`cwnd ← cwnd · 2^a`,
//! `a ∈ [−2, 2]`), while CUBIC continues its per-ACK updates in between.
//!
//! The failure mode the paper highlights (Fig. 2) is visible by
//! construction: a single bad agent output rescales the window by up to
//! 4× in either direction with no evaluation step to catch it.

use crate::formulation::{ActionSpace, MiObservation, RewardSpec, StateSpace};
use libra_classic::Cubic;
use libra_rl::{PpoAgent, PpoConfig};
use libra_types::{
    AckEvent, CongestionControl, Duration, Ewma, LossEvent, MiStats, Rate, SendEvent,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Orca hybrid controller.
pub struct Orca {
    cubic: Cubic,
    agent: Rc<RefCell<PpoAgent>>,
    state: StateSpace,
    action: ActionSpace,
    reward: RewardSpec,
    history: std::collections::VecDeque<Vec<f64>>,
    x_max: Rate,
    d_min: Duration,
    prev_raw: f64,
    send_gap: Ewma,
    last_send_at: Option<libra_types::Instant>,
    srtt: Duration,
    decisions: u64,
}

impl Orca {
    /// Observation dimension Orca's agent needs.
    pub fn ppo_config() -> PpoConfig {
        PpoConfig::new(StateSpace::orca().dim(), 1)
    }

    /// Build over a shared agent (trained or fresh).
    pub fn new(agent: Rc<RefCell<PpoAgent>>) -> Self {
        assert_eq!(
            agent.borrow().config().obs_dim,
            StateSpace::orca().dim(),
            "agent/state dimension mismatch"
        );
        Orca {
            cubic: Cubic::new(1500),
            agent,
            state: StateSpace::orca(),
            action: ActionSpace::MimdOrca { bound: 2.0 },
            reward: RewardSpec {
                use_delta: false, // Orca uses the raw reward (Sec. 4.2)
                ..RewardSpec::default()
            },
            history: std::collections::VecDeque::new(),
            x_max: Rate::from_mbps(10.0), // running max, floored at the training range's bottom
            d_min: Duration::ZERO,
            prev_raw: 0.0,
            send_gap: Ewma::new(0.2),
            last_send_at: None,
            srtt: Duration::ZERO,
            decisions: 0,
        }
    }

    /// Agent decisions taken (telemetry).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The shared agent.
    pub fn agent(&self) -> Rc<RefCell<PpoAgent>> {
        Rc::clone(&self.agent)
    }

    fn state_vector(&self) -> Vec<f64> {
        let w = self.state.step_width();
        let h = self.state.history;
        let mut v = Vec::with_capacity(w * h);
        for k in 0..h {
            match self.history.get(self.history.len().wrapping_sub(h - k)) {
                Some(step) => v.extend(step),
                None => v.extend(std::iter::repeat_n(0.0, w)),
            }
        }
        v
    }
}

impl CongestionControl for Orca {
    fn name(&self) -> &'static str {
        "Orca"
    }

    fn on_send(&mut self, ev: &SendEvent) {
        if let Some(prev) = self.last_send_at {
            self.send_gap
                .update(ev.now.saturating_since(prev).as_secs_f64());
        }
        self.last_send_at = Some(ev.now);
        self.cubic.on_send(ev);
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
        if self.d_min.is_zero() {
            self.d_min = ev.min_rtt;
        } else {
            self.d_min = self.d_min.min(ev.min_rtt);
        }
        self.cubic.on_ack(ev);
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        self.cubic.on_loss(ev);
    }

    fn on_mi(&mut self, mi: &MiStats) {
        if mi.is_ack_starved() {
            return;
        }
        // Orca lets CUBIC finish slow start before the agent engages.
        if self.cubic.in_startup() {
            return;
        }
        self.x_max = self.x_max.max(mi.delivery_rate).max(mi.sending_rate);
        let obs = MiObservation {
            mi: *mi,
            ack_gap_ewma: Duration::ZERO,
            send_gap_ewma: Duration::from_secs_f64(self.send_gap.get_or(0.0)),
            x_max: self.x_max,
            d_min: self.d_min,
        };
        let (reward, raw) = self.reward.compute(&obs, self.prev_raw);
        self.prev_raw = raw;
        let step = self.state.extract(&obs);
        self.history.push_back(step);
        while self.history.len() > self.state.history {
            self.history.pop_front();
        }
        let state = self.state_vector();
        let mut agent = self.agent.borrow_mut();
        agent.give_reward(reward, false);
        let a = agent.act(&state)[0];
        drop(agent);
        // Rescale CUBIC's base window: cwnd ← cwnd · 2^a, clamped to the
        // deployable range (repeated ×4 rescales would otherwise compound
        // into an astronomically large window).
        let srtt = self.srtt.max(Duration::from_millis(10));
        let current = self.cubic.rate_estimate(srtt);
        let rescaled = self
            .action
            .apply(current, a)
            .clamp(Rate::from_kbps(80.0), Rate::from_mbps(400.0));
        self.cubic.set_rate(rescaled, srtt);
        self.decisions += 1;
    }

    fn mi_duration(&self, srtt: Duration) -> Duration {
        // Orca's control interval is a couple of RTTs.
        (srtt * 2).max(Duration::from_millis(20))
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cubic.cwnd_bytes()
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.cubic.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.cubic.in_startup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::{DetRng, Instant, LossKind};

    fn agent(seed: u64) -> Rc<RefCell<PpoAgent>> {
        let mut rng = DetRng::new(seed);
        Rc::new(RefCell::new(PpoAgent::new(Orca::ppo_config(), &mut rng)))
    }

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    fn mi(rate_mbps: f64, rtt_ms: u64) -> MiStats {
        let mut s = MiStats::empty(Instant::from_millis(100));
        s.sending_rate = Rate::from_mbps(rate_mbps);
        s.delivery_rate = Rate::from_mbps(rate_mbps);
        s.avg_rtt = Duration::from_millis(rtt_ms);
        s.acks = 10;
        s.sent_bytes = 10_000;
        s.acked_bytes = 10_000;
        s
    }

    #[test]
    fn agent_idle_during_slow_start() {
        let mut o = Orca::new(agent(1));
        o.on_ack(&ack(10, 50));
        assert!(o.in_startup());
        o.on_mi(&mi(5.0, 50));
        assert_eq!(o.decisions(), 0);
    }

    #[test]
    fn agent_rescales_cubic_after_startup() {
        let mut o = Orca::new(agent(2));
        // Leave slow start via a loss.
        for k in 0..20 {
            o.on_ack(&ack(k, 50));
        }
        o.on_loss(&libra_types::LossEvent {
            now: Instant::from_millis(30),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        assert!(!o.in_startup());
        let w0 = o.cwnd_bytes();
        o.on_mi(&mi(5.0, 50));
        assert_eq!(o.decisions(), 1);
        let w1 = o.cwnd_bytes();
        // Rescale bounded by 2^±2.
        let ratio = w1 as f64 / w0 as f64;
        assert!((0.2..=5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mi_interval_is_two_rtts() {
        let o = Orca::new(agent(3));
        assert_eq!(
            o.mi_duration(Duration::from_millis(50)),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn ack_starvation_skips() {
        let mut o = Orca::new(agent(4));
        for k in 0..20 {
            o.on_ack(&ack(k, 50));
        }
        o.on_loss(&libra_types::LossEvent {
            now: Instant::from_millis(30),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        o.on_mi(&MiStats::empty(Instant::from_secs(1)));
        assert_eq!(o.decisions(), 0);
    }
}
