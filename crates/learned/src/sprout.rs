//! Sprout-lite: stochastic-forecast congestion control in the style of
//! Sprout (Winstein et al., NSDI'13).
//!
//! Sprout models a cellular link's packet-delivery process and sends only
//! what the 5th-percentile forecast says will drain within a 100 ms
//! target delay. This substitute keeps the control law — window = a
//! conservative quantile of recent delivery-rate samples × the delay
//! budget — without the full Bayesian inference (DESIGN.md
//! "Substitutions"). The qualitative behaviour matches: very low delay,
//! cautious throughput on variable links.

use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};
use std::collections::VecDeque;

/// Delay budget Sprout aims to keep (the paper's 100 ms target).
const DELAY_BUDGET: Duration = Duration::from_millis(100);
/// Forecast quantile (0.05 = 5th percentile — conservative).
const QUANTILE: f64 = 0.05;
/// Delivery-rate samples kept (one per ~20 ms tick).
const WINDOW: usize = 50;

/// Sprout-lite controller.
pub struct Sprout {
    mss: u64,
    cwnd: f64,
    rate_samples: VecDeque<f64>, // bytes/sec
    acked_since: u64,
    tick_start: Instant,
    min_cwnd: f64,
}

impl Sprout {
    /// Sprout-lite with the given MSS.
    pub fn new(mss: u64) -> Self {
        Sprout {
            mss,
            cwnd: 10.0,
            rate_samples: VecDeque::with_capacity(WINDOW),
            acked_since: 0,
            tick_start: Instant::ZERO,
            min_cwnd: 2.0,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }

    fn forecast_rate(&self) -> Option<f64> {
        if self.rate_samples.len() < 5 {
            return None;
        }
        let mut xs: Vec<f64> = self.rate_samples.iter().copied().collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let idx = ((xs.len() as f64 - 1.0) * QUANTILE).round() as usize;
        Some(xs[idx])
    }
}

impl Default for Sprout {
    fn default() -> Self {
        Sprout::new(1500)
    }
}

impl CongestionControl for Sprout {
    fn name(&self) -> &'static str {
        "Sprout"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.acked_since += ev.bytes;
        let span = ev.now.saturating_since(self.tick_start);
        if span >= Duration::from_millis(20) {
            self.rate_samples
                .push_back(self.acked_since as f64 / span.as_secs_f64());
            if self.rate_samples.len() > WINDOW {
                self.rate_samples.pop_front();
            }
            self.acked_since = 0;
            self.tick_start = ev.now;
            if let Some(rate) = self.forecast_rate() {
                // Send what the conservative forecast can drain within the
                // delay budget.
                let target =
                    (rate * DELAY_BUDGET.as_secs_f64() / self.mss as f64).max(self.min_cwnd);
                self.cwnd = target;
            } else {
                self.cwnd += 1.0; // warm-up
            }
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        if ev.kind == LossKind::Timeout {
            self.cwnd = self.min_cwnd;
            self.rate_samples.clear();
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd.max(self.min_cwnd) * self.mss as f64) as u64
    }

    fn set_rate(&mut self, rate: Rate, _srtt: Duration) {
        self.cwnd = (rate.bytes_per_sec() * DELAY_BUDGET.as_secs_f64() / self.mss as f64)
            .max(self.min_cwnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, bytes: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes,
            rtt: Duration::from_millis(50),
            min_rtt: Duration::from_millis(50),
            srtt: Duration::from_millis(50),
            sent_at: Instant::from_millis(now_ms.saturating_sub(50)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    #[test]
    fn window_tracks_conservative_forecast() {
        let mut s = Sprout::new(1500);
        // Steady 1500 B per 5 ms = 300 kB/s = 2.4 Mbps.
        for k in 0..400u64 {
            s.on_ack(&ack(k * 5, 1500));
        }
        // Forecast ≈ 300 kB/s → window ≈ 300e3 × 0.1 / 1500 = 20 packets.
        let w = s.cwnd_packets();
        assert!(w > 10.0 && w < 30.0, "cwnd {w}");
    }

    #[test]
    fn quantile_is_conservative_under_variance() {
        let mut s = Sprout::new(1500);
        // Alternate fast/slow ticks: 3000 B vs 750 B per 20 ms.
        for k in 0..200u64 {
            let bytes = if k % 2 == 0 { 3000 } else { 750 };
            s.on_ack(&ack(k * 20, bytes));
        }
        let w = s.cwnd_packets();
        // 5th-percentile ≈ the slow rate (37.5 kB/s → 2.5 pkts), far below
        // the mean.
        assert!(w < 6.0, "cwnd {w} should track the slow tail");
    }

    #[test]
    fn timeout_resets_model() {
        let mut s = Sprout::new(1500);
        for k in 0..100u64 {
            s.on_ack(&ack(k * 5, 1500));
        }
        s.on_loss(&LossEvent {
            now: Instant::from_secs(1),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
        });
        assert_eq!(s.cwnd_packets(), 2.0);
    }

    #[test]
    fn warm_up_grows_additively() {
        let mut s = Sprout::new(1500);
        s.on_ack(&ack(25, 1500));
        s.on_ack(&ack(50, 1500));
        assert!(s.cwnd_packets() > 10.0);
    }
}
