//! PCC Vivace (NSDI'18): online-learning congestion control by gradient
//! ascent on a utility function, and PCC Proteus (SIGCOMM'20), its
//! successor with a latency-deviation-sensitive utility.
//!
//! The controller alternates between *testing* pairs of monitor intervals
//! (rate `r(1+ε)` then `r(1−ε)`), computing the utility gradient from the
//! two measurements, and *moving* in the gradient direction with a
//! confidence-amplified step — the PCC control loop.

use libra_types::{
    cca::rate_based_cwnd, AckEvent, CongestionControl, Duration, LossEvent, MiStats, Rate,
    SendEvent, UtilityParams,
};

const EPSILON: f64 = 0.05; // test-rate perturbation
const INITIAL_STEP: f64 = 1.0; // Mbps per unit gradient (θ0)
const MAX_STEP_FRAC: f64 = 0.25; // bound a move to ±25 % of the rate
const AMPLIFIER_MAX: f64 = 6.0;

/// Which utility profile the controller optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PccFlavour {
    /// Vivace's default utility (Eq. 1's shape with Vivace weights).
    Vivace,
    /// Proteus-P: heavier latency-deviation penalty — lower delay, more
    /// cautious rate moves (the paper's Fig. 2a notes its slow
    /// re-convergence after capacity changes).
    Proteus,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Double the rate each MI until utility drops.
    Starting,
    /// First test MI at `r(1+ε)`.
    TestUp,
    /// Second test MI at `r(1−ε)`.
    TestDown,
    /// Apply the decided rate for one MI.
    Moving,
}

/// PCC Vivace / Proteus.
pub struct Pcc {
    flavour: PccFlavour,
    utility: UtilityParams,
    rate: Rate, // the base rate r
    phase: Phase,
    u_up: f64,
    u_down: f64,
    prev_utility: f64,
    step: f64, // θ, Mbps per unit normalized gradient
    amplifier: f64,
    last_direction: f64,
    srtt: Duration,
    mss: u64,
    min_rate: Rate,
    max_rate: Rate,
    decisions: u64,
}

impl Pcc {
    /// A Vivace controller with the paper's default utility parameters.
    pub fn vivace() -> Self {
        Pcc::new(PccFlavour::Vivace)
    }

    /// A Proteus-P controller.
    pub fn proteus() -> Self {
        Pcc::new(PccFlavour::Proteus)
    }

    fn new(flavour: PccFlavour) -> Self {
        let utility = match flavour {
            PccFlavour::Vivace => UtilityParams::default(),
            // Proteus: stronger latency sensitivity, softer loss term.
            PccFlavour::Proteus => UtilityParams {
                beta: 1800.0,
                gamma: 11.35,
                ..UtilityParams::default()
            },
        };
        Pcc {
            flavour,
            utility,
            rate: Rate::from_mbps(2.0),
            phase: Phase::Starting,
            u_up: 0.0,
            u_down: 0.0,
            prev_utility: f64::NEG_INFINITY,
            step: INITIAL_STEP,
            amplifier: 1.0,
            last_direction: 0.0,
            srtt: Duration::ZERO,
            mss: 1500,
            min_rate: Rate::from_kbps(80.0),
            max_rate: Rate::from_mbps(400.0),
            decisions: 0,
        }
    }

    /// The base (undithered) rate decision.
    pub fn base_rate(&self) -> Rate {
        self.rate
    }

    /// Rate-move decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    fn applied_rate(&self) -> Rate {
        match self.phase {
            Phase::TestUp => self.rate.scale(1.0 + EPSILON),
            Phase::TestDown => self.rate.scale(1.0 - EPSILON),
            _ => self.rate,
        }
    }

    fn clamp(&self, r: Rate) -> Rate {
        r.clamp(self.min_rate, self.max_rate)
    }
}

impl CongestionControl for Pcc {
    fn name(&self) -> &'static str {
        match self.flavour {
            PccFlavour::Vivace => "Vivace",
            PccFlavour::Proteus => "Proteus",
        }
    }

    fn on_send(&mut self, _ev: &SendEvent) {}

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
    }

    fn on_loss(&mut self, _ev: &LossEvent) {
        // Loss enters through MI statistics.
    }

    fn on_mi(&mut self, mi: &MiStats) {
        // No-ACK case: hold the current decision.
        if mi.is_ack_starved() {
            return;
        }
        let u = self.utility.evaluate_mi(mi);
        match self.phase {
            Phase::Starting => {
                if u >= self.prev_utility {
                    self.prev_utility = u;
                    self.rate = self.clamp(self.rate.scale(2.0));
                } else {
                    // Overshot: back off and begin online learning.
                    self.rate = self.clamp(self.rate.scale(0.5));
                    self.phase = Phase::TestUp;
                }
            }
            Phase::TestUp => {
                self.u_up = u;
                self.phase = Phase::TestDown;
            }
            Phase::TestDown => {
                self.u_down = u;
                // Gradient wrt rate, normalized per Mbps of dither.
                let dr = 2.0 * EPSILON * self.rate.mbps();
                let gradient = if dr > 1e-9 {
                    (self.u_up - self.u_down) / dr
                } else {
                    0.0
                };
                let direction = gradient.signum();
                if direction != 0.0 && direction == self.last_direction {
                    self.amplifier = (self.amplifier + 1.0).min(AMPLIFIER_MAX);
                } else {
                    self.amplifier = 1.0;
                }
                self.last_direction = direction;
                let caution = match self.flavour {
                    PccFlavour::Vivace => 1.0,
                    PccFlavour::Proteus => 0.5, // more conservative moves
                };
                let raw_move = caution * self.step * self.amplifier * gradient;
                let bound = MAX_STEP_FRAC * self.rate.mbps().max(0.5);
                let delta = raw_move.clamp(-bound, bound);
                self.rate = self.clamp(Rate::from_mbps((self.rate.mbps() + delta).max(0.05)));
                self.decisions += 1;
                self.phase = Phase::Moving;
            }
            Phase::Moving => {
                self.phase = Phase::TestUp;
            }
        }
    }

    fn mi_duration(&self, srtt: Duration) -> Duration {
        // PCC uses ~1 RTT monitor intervals.
        srtt.max(Duration::from_millis(10))
    }

    fn cwnd_bytes(&self) -> u64 {
        rate_based_cwnd(
            self.applied_rate(),
            self.srtt.max(Duration::from_millis(10)),
            self.mss,
        )
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.applied_rate())
    }

    fn rate_estimate(&self, _srtt: Duration) -> Rate {
        self.rate
    }

    fn set_rate(&mut self, rate: Rate, _srtt: Duration) {
        self.rate = self.clamp(rate);
        self.phase = Phase::TestUp;
    }

    fn in_startup(&self) -> bool {
        self.phase == Phase::Starting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::Instant;

    fn mi(rate_mbps: f64, gradient: f64, loss: f64) -> MiStats {
        let mut s = MiStats::empty(Instant::from_millis(100));
        s.sending_rate = Rate::from_mbps(rate_mbps);
        s.delivery_rate = Rate::from_mbps(rate_mbps * (1.0 - loss));
        s.avg_rtt = Duration::from_millis(50);
        s.rtt_gradient = gradient;
        s.loss_rate = loss;
        s.acks = 10;
        s.acked_bytes = 10_000;
        s.sent_bytes = 10_000;
        s
    }

    #[test]
    fn startup_doubles_until_utility_drops() {
        let mut v = Pcc::vivace();
        assert!(v.in_startup());
        let r0 = v.base_rate().mbps();
        v.on_mi(&mi(r0, 0.0, 0.0));
        assert!((v.base_rate().mbps() - 2.0 * r0).abs() < 1e-9);
        // Feed a congested MI: utility collapses, startup exits.
        v.on_mi(&mi(2.0 * r0, 0.5, 0.2));
        assert!(!v.in_startup());
        assert!(v.base_rate().mbps() < 2.0 * r0);
    }

    fn drive_cycle(v: &mut Pcc, up_u: MiStats, down_u: MiStats) {
        // TestUp MI, TestDown MI, then one Moving MI.
        v.on_mi(&up_u);
        v.on_mi(&down_u);
        v.on_mi(&down_u); // moving-phase measurement (ignored for gradient)
    }

    #[test]
    fn gradient_ascends_on_clean_link() {
        let mut v = Pcc::vivace();
        // Exit startup.
        v.on_mi(&mi(2.0, 0.0, 0.0));
        v.on_mi(&mi(4.0, 0.9, 0.5));
        let r0 = v.base_rate().mbps();
        // Clean link: testing a higher rate always wins → rate climbs.
        for _ in 0..6 {
            let r = v.base_rate().mbps();
            drive_cycle(&mut v, mi(r * 1.05, 0.0, 0.0), mi(r * 0.95, 0.0, 0.0));
        }
        assert!(
            v.base_rate().mbps() > r0,
            "{} vs {r0}",
            v.base_rate().mbps()
        );
    }

    #[test]
    fn gradient_descends_when_congested() {
        let mut v = Pcc::vivace();
        v.on_mi(&mi(2.0, 0.0, 0.0));
        v.on_mi(&mi(4.0, 0.9, 0.5));
        // Force a few cycles where the higher rate hurts badly.
        for _ in 0..4 {
            let r = v.base_rate().mbps();
            drive_cycle(
                &mut v,
                mi(r * 1.05, 0.4, 0.3), // up: heavy queueing + loss
                mi(r * 0.95, 0.0, 0.0), // down: clean
            );
        }
        // After at least one full cycle the rate must be lower than the
        // level right after startup back-off.
        assert!(v.decisions() >= 3);
        let r_end = v.base_rate().mbps();
        assert!(
            r_end < 2.0,
            "rate should collapse under congestion: {r_end}"
        );
    }

    #[test]
    fn amplifier_accelerates_persistent_direction() {
        let mut v = Pcc::vivace();
        v.on_mi(&mi(2.0, 0.0, 0.0));
        v.on_mi(&mi(4.0, 0.9, 0.5));
        let mut moves = Vec::new();
        let mut prev = v.base_rate().mbps();
        for _ in 0..5 {
            let r = v.base_rate().mbps();
            drive_cycle(&mut v, mi(r * 1.05, 0.0, 0.0), mi(r * 0.95, 0.0, 0.0));
            moves.push(v.base_rate().mbps() - prev);
            prev = v.base_rate().mbps();
        }
        assert!(
            moves.last().unwrap() >= moves.first().unwrap(),
            "moves should not shrink: {moves:?}"
        );
    }

    #[test]
    fn proteus_moves_more_cautiously() {
        let mut v = Pcc::vivace();
        let mut p = Pcc::proteus();
        for c in [&mut v, &mut p] {
            c.on_mi(&mi(2.0, 0.0, 0.0));
            c.on_mi(&mi(4.0, 0.9, 0.5));
        }
        for _ in 0..3 {
            let rv = v.base_rate().mbps();
            drive_cycle(&mut v, mi(rv * 1.05, 0.0, 0.0), mi(rv * 0.95, 0.0, 0.0));
            let rp = p.base_rate().mbps();
            drive_cycle(&mut p, mi(rp * 1.05, 0.0, 0.0), mi(rp * 0.95, 0.0, 0.0));
        }
        assert!(v.base_rate().mbps() > p.base_rate().mbps());
    }

    #[test]
    fn test_phases_dither_applied_rate() {
        let mut v = Pcc::vivace();
        v.on_mi(&mi(2.0, 0.0, 0.0));
        v.on_mi(&mi(4.0, 0.9, 0.5)); // leave startup → TestUp
        let base = v.base_rate();
        let up = v.pacing_rate().unwrap();
        assert!((up.mbps() - base.mbps() * 1.05).abs() < 1e-9);
        v.on_mi(&mi(base.mbps() * 1.05, 0.0, 0.0)); // → TestDown
        let down = v.pacing_rate().unwrap();
        assert!((down.mbps() - base.mbps() * 0.95).abs() < 1e-9);
    }

    #[test]
    fn ack_starvation_freezes_state() {
        let mut v = Pcc::vivace();
        v.on_mi(&mi(2.0, 0.0, 0.0));
        let r = v.base_rate();
        v.on_mi(&MiStats::empty(Instant::from_secs(1)));
        assert_eq!(v.base_rate(), r);
    }

    #[test]
    fn set_rate_rebases() {
        let mut v = Pcc::vivace();
        v.set_rate(Rate::from_mbps(7.0), Duration::from_millis(50));
        assert!((v.base_rate().mbps() - 7.0).abs() < 1e-9);
        assert!(!v.in_startup());
    }
}
