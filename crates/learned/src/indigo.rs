//! Indigo-lite: an imitation-learning controller in the style of Indigo
//! (Yan et al., ATC'18).
//!
//! Indigo trains an LSTM offline to imitate an oracle that keeps exactly
//! one bandwidth-delay product in flight. The published model is not
//! redistributable; this substitute implements the *oracle policy the
//! model imitates* — track `cwnd ≈ bw_est × min_rtt` with damped updates —
//! which reproduces Indigo's characteristic behaviour on Pantheon:
//! low delay, stable rates, and persistent under-utilization on links
//! outside its calibration (Tab. 5 of the paper reports 8.2 Mbps on a
//! 16 Mbps fair share).

use libra_types::{
    AckEvent, CongestionControl, Duration, Ewma, Instant, LossEvent, LossKind, Rate,
};

/// Fraction of the estimated BDP Indigo-lite targets. Below 1.0 —
/// the imitation model is conservative, matching observed behaviour.
const TARGET_BDP_FRACTION: f64 = 0.85;
/// Damping applied per decision toward the target window.
const DAMPING: f64 = 0.3;

/// Indigo-lite controller.
pub struct Indigo {
    mss: u64,
    cwnd: f64,
    bw_est: Ewma, // bytes/sec
    min_rtt: Duration,
    acked_since: u64,
    window_start: Instant,
    decision_end: Instant,
    min_cwnd: f64,
}

impl Indigo {
    /// Indigo-lite with the given MSS.
    pub fn new(mss: u64) -> Self {
        Indigo {
            mss,
            cwnd: 10.0,
            bw_est: Ewma::new(0.15),
            min_rtt: Duration::MAX,
            acked_since: 0,
            window_start: Instant::ZERO,
            decision_end: Instant::ZERO,
            min_cwnd: 2.0,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }
}

impl Default for Indigo {
    fn default() -> Self {
        Indigo::new(1500)
    }
}

impl CongestionControl for Indigo {
    fn name(&self) -> &'static str {
        "Indigo"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.min_rtt = self.min_rtt.min(ev.rtt);
        self.acked_since += ev.bytes;
        if ev.now >= self.decision_end {
            let span = ev.now.saturating_since(self.window_start);
            if !span.is_zero() && self.acked_since > 0 {
                self.bw_est
                    .update(self.acked_since as f64 / span.as_secs_f64());
            }
            self.acked_since = 0;
            self.window_start = ev.now;
            self.decision_end = ev.now + ev.srtt.max(Duration::from_millis(10));
            // Two-mode oracle, like the policy the Indigo model imitates:
            // while no queueing shows (RTT near the minimum) the bandwidth
            // estimate is self-confirming (delivery = cwnd/RTT), so probe
            // multiplicatively; once the RTT inflates, the delivery rate
            // reflects the bottleneck and the window damps toward the
            // conservative BDP target.
            let rtt_ratio = if self.min_rtt == Duration::MAX || self.min_rtt.is_zero() {
                1.0
            } else {
                ev.rtt / self.min_rtt
            };
            if rtt_ratio < 1.1 || self.bw_est.get().is_none() {
                self.cwnd *= 1.25;
            } else if let Some(bw) = self.bw_est.get() {
                let target =
                    TARGET_BDP_FRACTION * bw * self.min_rtt.as_secs_f64() / self.mss as f64;
                let target = target.max(self.min_cwnd);
                self.cwnd += DAMPING * (target - self.cwnd);
            }
            self.cwnd = self.cwnd.max(self.min_cwnd);
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                // Mild reaction: the oracle treats isolated loss as noise.
                self.cwnd = (self.cwnd * 0.9).max(self.min_cwnd);
            }
            LossKind::Timeout => {
                self.cwnd = self.min_cwnd;
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd.max(self.min_cwnd) * self.mss as f64) as u64
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.cwnd = (rate.bytes_in(srtt) as f64 / self.mss as f64).max(self.min_cwnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, bytes: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    #[test]
    fn probes_multiplicatively_while_rtt_flat() {
        let mut i = Indigo::new(1500);
        let w0 = i.cwnd_packets();
        for k in 0..200u64 {
            i.on_ack(&ack(k * 10, 50, 1500));
        }
        assert!(i.cwnd_packets() > 3.0 * w0, "cwnd {}", i.cwnd_packets());
    }

    #[test]
    fn damps_to_bdp_target_under_queueing() {
        let mut i = Indigo::new(1500);
        i.on_ack(&ack(0, 50, 1500)); // min_rtt = 50 ms
                                     // Queueing regime: RTT 80 ms, delivery 10 Mbps (1500 B / 1.2 ms).
        let mut t_tenths = 10u64;
        for _ in 0..4000 {
            i.on_ack(&ack(t_tenths / 10, 80, 1500));
            t_tenths += 12;
        }
        // Target = 0.85 × 10 Mbps × 50 ms ≈ 35 packets.
        let w = i.cwnd_packets();
        assert!(w > 20.0 && w < 60.0, "cwnd {w}");
    }

    #[test]
    fn isolated_loss_is_mild() {
        let mut i = Indigo::new(1500);
        for k in 0..100u64 {
            i.on_ack(&ack(k * 10, 50, 1500));
        }
        let w = i.cwnd_packets();
        i.on_loss(&LossEvent {
            now: Instant::from_secs(10),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        assert!((i.cwnd_packets() - 0.9 * w).abs() < 1e-9);
    }

    #[test]
    fn timeout_resets() {
        let mut i = Indigo::new(1500);
        for k in 0..100u64 {
            i.on_ack(&ack(k, 50, 1500));
        }
        i.on_loss(&LossEvent {
            now: Instant::from_secs(1),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
        });
        assert_eq!(i.cwnd_packets(), 2.0);
    }
}
