//! The generic RL-based congestion controller: a PPO agent driven per
//! monitor interval with a configurable state space, action space and
//! reward — the paper's Alg. 2, and (with the appropriate formulation)
//! also Aurora and the Modified-RL benchmark.

use crate::formulation::{ActionSpace, MiObservation, RewardSpec, StateSpace};
use libra_rl::{PpoAgent, PpoConfig};
use libra_types::{
    cca::rate_based_cwnd, AckEvent, CongestionControl, Duration, Ewma, LossEvent, MiStats, Rate,
    SendEvent, UtilityParams,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Reward source: the standard normalized reward of Alg. 2, or Eq. 1's
/// utility function directly (the "Modified RL" benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardSource {
    /// `r = w1·x/x_max − w2·d/d_min − w3·L` (optionally Δr).
    Normalized(RewardSpec),
    /// Eq. 1's utility value as the reward (Mod. RL).
    Utility(UtilityParams),
}

/// Configuration of an [`RlCca`].
#[derive(Debug, Clone)]
pub struct RlCcaConfig {
    /// Display name (the paper compares several formulations).
    pub name: &'static str,
    /// State-space design.
    pub state: StateSpace,
    /// Action-space design.
    pub action: ActionSpace,
    /// Reward design.
    pub reward: RewardSource,
    /// Decision interval in units of sRTT.
    pub mi_rtts: f64,
    /// Rate bounds.
    pub min_rate: Rate,
    /// Upper rate bound.
    pub max_rate: Rate,
    /// Initial rate.
    pub init_rate: Rate,
    /// Floor for the running throughput normalizer (Alg. 2's `x_max`).
    /// `x_max` starts here — the *bottom* of the paper's 10–200 Mbps
    /// training range — and rises with the observed delivery rate.
    /// Starting low keeps a real upward gradient in the reward
    /// (`x / x_max` can exceed 1 while the flow is still discovering the
    /// link); starting at the flow's own first rate pins the term at ~1
    /// and teaches timidity.
    pub norm_floor: Rate,
    /// Degradation-ladder staleness bound: how many consecutive
    /// missing/invalid policy responses may be bridged by replaying the
    /// last-good cached action before rejections start counting as
    /// invalid (which escalates to Libra's guardrail and the
    /// classic-CCA pin).
    pub stale_limit: u32,
}

impl RlCcaConfig {
    /// Libra's RL component formulation (Sec. 4.2): Libra state space,
    /// MIMD action, Δr reward with loss, per-RTT decisions.
    pub fn libra_rl() -> Self {
        RlCcaConfig {
            name: "Libra-RL",
            state: StateSpace::libra(),
            action: ActionSpace::libra_default(),
            reward: RewardSource::Normalized(RewardSpec::default()),
            mi_rtts: 1.0,
            min_rate: Rate::from_kbps(80.0),
            max_rate: Rate::from_mbps(400.0),
            init_rate: Rate::from_mbps(2.0),
            norm_floor: Rate::from_mbps(10.0),
            stale_limit: 8,
        }
    }

    /// Aurora's formulation: its own state space, Aurora-MIMD action and
    /// non-delta reward.
    pub fn aurora() -> Self {
        RlCcaConfig {
            name: "Aurora",
            state: StateSpace::aurora(),
            action: ActionSpace::MimdAurora { scale: 10.0 },
            reward: RewardSource::Normalized(RewardSpec {
                use_delta: false,
                ..RewardSpec::default()
            }),
            ..RlCcaConfig::libra_rl()
        }
    }

    /// The Modified-RL benchmark: Libra's formulation but rewarded by
    /// Eq. 1's utility directly (shows that the utility function alone,
    /// without the combined framework, lacks convergence guarantees).
    pub fn mod_rl() -> Self {
        RlCcaConfig {
            name: "Mod. RL",
            reward: RewardSource::Utility(UtilityParams::default()),
            ..RlCcaConfig::libra_rl()
        }
    }

    /// PPO geometry this formulation needs.
    pub fn ppo_config(&self) -> PpoConfig {
        PpoConfig::new(self.state.dim(), 1)
    }
}

/// A PPO-driven rate-based congestion controller.
///
/// The agent is shared via `Rc<RefCell<…>>` so a trainer (or Libra) can
/// keep updating/saving it while the simulator owns the controller.
pub struct RlCca {
    config: RlCcaConfig,
    agent: Rc<RefCell<PpoAgent>>,
    rate: Rate,
    history: VecDeque<Vec<f64>>,
    // Feature-normalization state (Alg. 2 line 6).
    x_max: Rate,
    d_min: Duration,
    prev_raw_reward: f64,
    // Gap EWMAs for features (i)/(ii).
    ack_gap: Ewma,
    send_gap: Ewma,
    last_ack_at: Option<libra_types::Instant>,
    last_send_at: Option<libra_types::Instant>,
    srtt: Duration,
    mss: u64,
    decisions: u64,
    invalid_actions: u64,
    in_slow_start: bool,
    // Degradation-ladder state: the last validated action, how many
    // consecutive ticks it has been replayed, and a lifetime replay
    // count for reports.
    last_good: Vec<f64>,
    stale_served: u32,
    fallback_ticks: u64,
}

impl RlCca {
    /// Wrap a shared agent. The agent's observation dimension must match
    /// the configured state space.
    pub fn new(config: RlCcaConfig, agent: Rc<RefCell<PpoAgent>>) -> Self {
        assert_eq!(
            agent.borrow().config().obs_dim,
            config.state.dim(),
            "agent/state dimension mismatch"
        );
        let rate = config.init_rate;
        let x_max = config.norm_floor;
        RlCca {
            config,
            agent,
            rate,
            history: VecDeque::new(),
            x_max,
            d_min: Duration::ZERO,
            prev_raw_reward: 0.0,
            ack_gap: Ewma::new(0.2),
            send_gap: Ewma::new(0.2),
            last_ack_at: None,
            last_send_at: None,
            srtt: Duration::ZERO,
            mss: 1500,
            decisions: 0,
            invalid_actions: 0,
            in_slow_start: true,
            last_good: Vec::new(),
            stale_served: 0,
            fallback_ticks: 0,
        }
    }

    /// Decisions made so far (telemetry).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Actions rejected because the policy emitted a non-finite value.
    /// A rising count is the primary symptom of a corrupted network and
    /// feeds Libra's guardrail.
    pub fn invalid_actions(&self) -> u64 {
        self.invalid_actions
    }

    /// Missing/invalid policy responses bridged by replaying the
    /// last-good cached action (the degradation ladder's middle rung).
    pub fn fallback_ticks(&self) -> u64 {
        self.fallback_ticks
    }

    /// Access the shared agent.
    pub fn agent(&self) -> Rc<RefCell<PpoAgent>> {
        Rc::clone(&self.agent)
    }

    /// The controller's current rate decision.
    pub fn current_rate(&self) -> Rate {
        self.rate
    }

    fn observation(&self, mi: &MiStats) -> MiObservation {
        MiObservation {
            mi: *mi,
            ack_gap_ewma: Duration::from_secs_f64(self.ack_gap.get_or(0.0)),
            send_gap_ewma: Duration::from_secs_f64(self.send_gap.get_or(0.0)),
            x_max: self.x_max,
            d_min: self.d_min,
        }
    }

    fn state_vector(&self) -> Vec<f64> {
        let mut v = Vec::new();
        self.write_state(&mut v);
        v
    }

    /// Write the current state vector into a reused buffer (the batched
    /// submit path's allocation-free variant of [`Self::state_vector`]).
    fn write_state(&self, out: &mut Vec<f64>) {
        let w = self.config.state.step_width();
        let h = self.config.state.history;
        out.clear();
        out.reserve(w * h);
        // Pad missing history with zeros (cold start).
        for k in 0..h {
            match self.history.get(self.history.len().wrapping_sub(h - k)) {
                Some(step) => out.extend(step),
                None => out.extend(std::iter::repeat_n(0.0, w)),
            }
        }
    }

    /// Apply a policy action to the rate — the tail of a decision,
    /// shared by the inline path and the two-phase resolve path. This is
    /// the degradation ladder's resolve-side anchor:
    ///
    /// 1. a validated action (right dimension, finite) is cached and
    ///    applied;
    /// 2. a missing (empty — dropped/late/quarantined response) or
    ///    invalid (NaN/inf, wrong-dimension) action replays the cached
    ///    last-good action, up to `stale_limit` consecutive ticks;
    /// 3. past the staleness bound — or with nothing cached — the
    ///    rejection is counted so an arbiter above (Libra's guardrail)
    ///    can pin the flow to the classic CCA and re-probe with backoff.
    fn apply_action(&mut self, action: &[f64]) {
        // A NaN/inf action means the policy network is corrupt; a wrong
        // dimension or an empty slice means the serving boundary failed.
        // `Rate` would silently clamp NaN to zero, so the raw output must
        // be validated *before* conversion.
        let valid = action.len() == 1 && action[0].is_finite();
        if valid {
            self.last_good.clear();
            self.last_good.extend_from_slice(action);
            self.stale_served = 0;
            self.rate = self
                .config
                .action
                .apply(self.rate, action[0])
                .clamp(self.config.min_rate, self.config.max_rate);
            self.decisions += 1;
            return;
        }
        if !self.last_good.is_empty() && self.stale_served < self.config.stale_limit {
            self.stale_served += 1;
            self.fallback_ticks += 1;
            self.rate = self
                .config
                .action
                .apply(self.rate, self.last_good[0])
                .clamp(self.config.min_rate, self.config.max_rate);
            return;
        }
        self.invalid_actions += 1;
    }

    /// The MI-close body, shared by [`CongestionControl::on_mi`] (inline
    /// inference, `out = None`) and the two-phase submit/resolve pair
    /// (`out = Some(buf)`: write the state vector and return `true`, the
    /// caller then resolves with the policy server's action).
    ///
    /// Both modes run the *identical* operation sequence, split at the
    /// `act` call — the bit-identity contract of the batched path.
    fn mi_step(&mut self, mi: &MiStats, out: Option<&mut Vec<f64>>) -> bool {
        // No-ACK special case (Sec. 3): keep the same rate decision and
        // skip the agent entirely.
        if mi.is_ack_starved() {
            return false;
        }
        // Startup: double per MI until congestion shows (every deployment
        // of a rate-based learned CCA needs this bootstrap — the policy
        // is trained for steady-state control, not cold starts).
        if self.in_slow_start {
            let congested = mi.loss_rate > 0.0
                || mi.rtt_gradient > 0.05
                || (!mi.min_rtt.is_zero()
                    && mi.avg_rtt.as_secs_f64() > 1.25 * mi.min_rtt.as_secs_f64());
            if congested {
                self.in_slow_start = false;
                self.rate = self
                    .rate
                    .scale(0.5)
                    .clamp(self.config.min_rate, self.config.max_rate);
            } else {
                self.x_max = self.x_max.max(mi.delivery_rate).max(mi.sending_rate);
                self.rate = self
                    .rate
                    .scale(2.0)
                    .clamp(self.config.min_rate, self.config.max_rate);
                return false;
            }
        }
        // Alg. 2 line 6: x_max tracks the maximum observed throughput
        // (with the configured floor).
        self.x_max = self.x_max.max(mi.delivery_rate).max(mi.sending_rate);
        let obs = self.observation(mi);
        // Reward for the *previous* action.
        let reward = match self.config.reward {
            RewardSource::Normalized(spec) => {
                let (r, raw) = spec.compute(&obs, self.prev_raw_reward);
                self.prev_raw_reward = raw;
                r
            }
            RewardSource::Utility(params) => params.evaluate_mi(mi),
        };
        let step = self.config.state.extract(&obs);
        self.history.push_back(step);
        while self.history.len() > self.config.state.history {
            self.history.pop_front();
        }
        // A degenerate MI can yield a non-finite reward (e.g. a zero-length
        // interval); feed the agent a neutral value rather than poisoning
        // its advantages.
        let reward = if reward.is_finite() { reward } else { 0.0 };
        match out {
            Some(buf) => {
                self.write_state(buf);
                self.agent.borrow_mut().give_reward(reward, false);
                true
            }
            None => {
                let state = self.state_vector();
                let mut agent = self.agent.borrow_mut();
                agent.give_reward(reward, false);
                let action = agent.act(&state);
                drop(agent);
                self.apply_action(&action);
                false
            }
        }
    }
}

impl CongestionControl for RlCca {
    fn name(&self) -> &'static str {
        self.config.name
    }

    fn on_send(&mut self, ev: &SendEvent) {
        if let Some(prev) = self.last_send_at {
            self.send_gap
                .update(ev.now.saturating_since(prev).as_secs_f64());
        }
        self.last_send_at = Some(ev.now);
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if let Some(prev) = self.last_ack_at {
            self.ack_gap
                .update(ev.now.saturating_since(prev).as_secs_f64());
        }
        self.last_ack_at = Some(ev.now);
        self.srtt = ev.srtt;
        if self.d_min.is_zero() {
            self.d_min = ev.min_rtt;
        } else {
            self.d_min = self.d_min.min(ev.min_rtt);
        }
    }

    fn on_loss(&mut self, _ev: &LossEvent) {
        // Loss enters through the MI statistics.
    }

    fn on_mi(&mut self, mi: &MiStats) {
        self.mi_step(mi, None);
    }

    fn mi_submit(&mut self, stats: &MiStats, policy_state: &mut Vec<f64>) -> bool {
        self.mi_step(stats, Some(policy_state))
    }

    fn mi_resolve(&mut self, _stats: &MiStats, action: &[f64]) {
        self.apply_action(action);
    }

    fn mi_duration(&self, srtt: Duration) -> Duration {
        srtt.mul_f64(self.config.mi_rtts)
            .max(Duration::from_millis(5))
    }

    fn cwnd_bytes(&self) -> u64 {
        rate_based_cwnd(
            self.rate,
            self.srtt.max(Duration::from_millis(10)),
            self.mss,
        )
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.rate)
    }

    fn set_rate(&mut self, rate: Rate, _srtt: Duration) {
        self.rate = rate.clamp(self.config.min_rate, self.config.max_rate);
        // A re-base means someone who knows better (Libra's cycle, the
        // trainer) placed us: skip the cold-start bootstrap.
        self.in_slow_start = false;
    }

    fn in_startup(&self) -> bool {
        self.in_slow_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::{DetRng, Instant};

    fn agent_for(config: &RlCcaConfig, seed: u64) -> Rc<RefCell<PpoAgent>> {
        let mut rng = DetRng::new(seed);
        Rc::new(RefCell::new(PpoAgent::new(config.ppo_config(), &mut rng)))
    }

    fn mi(rate_mbps: f64, rtt_ms: u64, loss: f64) -> MiStats {
        let mut s = MiStats::empty(Instant::from_millis(100));
        s.sending_rate = Rate::from_mbps(rate_mbps);
        s.delivery_rate = Rate::from_mbps(rate_mbps * (1.0 - loss));
        s.avg_rtt = Duration::from_millis(rtt_ms);
        s.min_rtt = Duration::from_millis(40);
        s.loss_rate = loss;
        s.acks = 20;
        s.sent_bytes = 100_000;
        s.acked_bytes = 100_000;
        s
    }

    #[test]
    fn acts_on_mi_and_changes_rate_bounds() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 1);
        let mut cca = RlCca::new(cfg, agent);
        cca.set_rate(Rate::from_mbps(5.0), Duration::from_millis(50)); // skip startup
        let r0 = cca.current_rate();
        for k in 0..20 {
            cca.on_mi(&mi(5.0 + k as f64, 50, 0.0));
        }
        assert_eq!(cca.decisions(), 20);
        let r = cca.current_rate();
        assert!(r >= Rate::from_kbps(80.0) && r <= Rate::from_mbps(400.0));
        // With exploration noise the rate must have moved at least once.
        assert_ne!(r0, r);
    }

    #[test]
    fn ack_starved_mi_skips_decision() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 2);
        let mut cca = RlCca::new(cfg, agent);
        cca.on_mi(&mi(5.0, 50, 0.0));
        let d = cca.decisions();
        let starved = MiStats::empty(Instant::from_millis(200));
        let r_before = cca.current_rate();
        cca.on_mi(&starved);
        assert_eq!(cca.decisions(), d, "no decision while starved");
        assert_eq!(cca.current_rate(), r_before, "rate held");
    }

    #[test]
    fn rewards_accumulate_in_agent_buffer() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 3);
        let mut cca = RlCca::new(cfg, Rc::clone(&agent));
        cca.set_rate(Rate::from_mbps(10.0), Duration::from_millis(50)); // skip startup
        for _ in 0..5 {
            cca.on_mi(&mi(10.0, 50, 0.0));
        }
        // First act has no completed predecessor: 4 transitions buffered.
        assert_eq!(agent.borrow().buffered(), 4);
    }

    #[test]
    fn mod_rl_uses_utility_reward() {
        let cfg = RlCcaConfig::mod_rl();
        let agent = agent_for(&cfg, 4);
        let mut cca = RlCca::new(cfg, Rc::clone(&agent));
        cca.set_rate(Rate::from_mbps(10.0), Duration::from_millis(50)); // skip startup
        cca.on_mi(&mi(10.0, 50, 0.0));
        cca.on_mi(&mi(10.0, 50, 0.0));
        // Utility of 10 Mbps clean MI = 10^0.9 ≈ 7.94.
        let total = agent.borrow().buffered_reward();
        assert!((total - 10f64.powf(0.9)).abs() < 0.2, "reward {total}");
    }

    #[test]
    fn cwnd_tracks_rate() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 5);
        let mut cca = RlCca::new(cfg, agent);
        cca.set_rate(Rate::from_mbps(10.0), Duration::from_millis(50));
        // Feed an ACK to set srtt.
        cca.on_ack(&libra_types::AckEvent {
            now: Instant::from_millis(100),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(50),
            min_rtt: Duration::from_millis(50),
            srtt: Duration::from_millis(50),
            sent_at: Instant::from_millis(50),
            delivered_at_send: 0,
            delivered: 1500,
            in_flight: 0,
            app_limited: false,
        });
        // 10 Mbps × 100 ms = 125 kB.
        assert_eq!(cca.cwnd_bytes(), 125_000);
        assert_eq!(cca.pacing_rate(), Some(Rate::from_mbps(10.0)));
    }

    #[test]
    fn history_padding_cold_start() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 6);
        let mut cca = RlCca::new(cfg, agent);
        // One observed MI: the state vector is mostly zero padding but has
        // the right dimension (exercised through on_mi without panic).
        cca.on_mi(&mi(5.0, 50, 0.0));
        assert_eq!(cca.state_vector().len(), StateSpace::libra().dim());
    }

    #[test]
    fn startup_doubles_then_halts_on_congestion() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 8);
        let mut cca = RlCca::new(cfg, agent);
        assert!(libra_types::CongestionControl::in_startup(&cca));
        let r0 = cca.current_rate().mbps();
        cca.on_mi(&mi(5.0, 41, 0.0)); // no congestion → double
        assert!((cca.current_rate().mbps() - 2.0 * r0).abs() < 1e-9);
        assert_eq!(cca.decisions(), 0, "agent idle during startup");
        // Congested MI (loss): exit startup with a halved rate.
        let before = cca.current_rate().mbps();
        cca.on_mi(&mi(10.0, 80, 0.1));
        assert!(!libra_types::CongestionControl::in_startup(&cca));
        assert!(cca.current_rate().mbps() <= before, "backed off");
    }

    #[test]
    fn non_finite_actions_are_rejected_and_counted() {
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 9);
        agent.borrow_mut().map_actor_params(|_| f64::NAN);
        agent.borrow_mut().set_eval(true);
        let mut cca = RlCca::new(cfg, agent);
        cca.set_rate(Rate::from_mbps(5.0), Duration::from_millis(50)); // skip startup
        let r0 = cca.current_rate();
        for _ in 0..4 {
            cca.on_mi(&mi(5.0, 50, 0.0));
        }
        assert_eq!(cca.invalid_actions(), 4);
        assert_eq!(cca.decisions(), 0, "no decision applied");
        assert_eq!(cca.current_rate(), r0, "rate held through NaN actions");
    }

    #[test]
    fn submit_resolve_matches_inline_on_mi_bitwise() {
        let cfg = RlCcaConfig::libra_rl();
        let a = agent_for(&cfg, 10);
        a.borrow_mut().set_eval(true);
        let b = agent_for(&cfg, 10);
        b.borrow_mut().set_eval(true);
        let mut inline = RlCca::new(cfg.clone(), a);
        let mut split = RlCca::new(cfg, Rc::clone(&b));
        inline.set_rate(Rate::from_mbps(5.0), Duration::from_millis(50));
        split.set_rate(Rate::from_mbps(5.0), Duration::from_millis(50));
        let mut state = Vec::new();
        for k in 0..10 {
            let stats = mi(5.0 + k as f64, 50, if k == 3 { 0.02 } else { 0.0 });
            inline.on_mi(&stats);
            assert!(split.mi_submit(&stats, &mut state), "submitted");
            // Stand-in for the policy server: eval inference on the
            // submitted state, fed back through resolve.
            let action = b.borrow_mut().act(&state);
            split.mi_resolve(&stats, &action);
        }
        assert_eq!(inline.decisions(), split.decisions());
        assert_eq!(
            inline.current_rate().mbps().to_bits(),
            split.current_rate().mbps().to_bits(),
            "split path must be bit-identical to inline"
        );
    }

    #[test]
    fn stale_ladder_bridges_then_escalates() {
        let cfg = RlCcaConfig::libra_rl();
        let stale_limit = cfg.stale_limit;
        let agent = agent_for(&cfg, 11);
        agent.borrow_mut().set_eval(true);
        let mut cca = RlCca::new(cfg, agent);
        cca.set_rate(Rate::from_mbps(5.0), Duration::from_millis(50));
        // One healthy decision caches a last-good action.
        let stats = mi(5.0, 50, 0.0);
        assert!(cca.mi_submit(&stats, &mut Vec::new()));
        cca.mi_resolve(&stats, &[0.05]);
        assert_eq!(cca.decisions(), 1);
        // Missing responses (empty action) ride the cached action for
        // `stale_limit` ticks without counting as invalid…
        for k in 1..=stale_limit as u64 {
            assert!(cca.mi_submit(&stats, &mut Vec::new()));
            cca.mi_resolve(&stats, &[]);
            assert_eq!(cca.fallback_ticks(), k);
            assert_eq!(cca.invalid_actions(), 0);
        }
        // …then the staleness bound trips and rejections escalate.
        assert!(cca.mi_submit(&stats, &mut Vec::new()));
        cca.mi_resolve(&stats, &[]);
        assert_eq!(cca.fallback_ticks(), stale_limit as u64);
        assert_eq!(cca.invalid_actions(), 1);
        // A fresh valid action re-arms the ladder.
        assert!(cca.mi_submit(&stats, &mut Vec::new()));
        cca.mi_resolve(&stats, &[0.02]);
        assert!(cca.mi_submit(&stats, &mut Vec::new()));
        cca.mi_resolve(&stats, &[f64::NAN]);
        assert_eq!(cca.fallback_ticks(), stale_limit as u64 + 1);
        assert_eq!(cca.invalid_actions(), 1);
    }

    #[test]
    fn empty_and_wrong_dim_actions_do_not_panic() {
        // Pre-ladder, an empty action slice (a dropped policy response)
        // hit `action[0]` and panicked; wrong-dimension outputs applied
        // their first element silently. Both now land on the ladder.
        let cfg = RlCcaConfig::libra_rl();
        let agent = agent_for(&cfg, 12);
        let mut cca = RlCca::new(cfg, agent);
        cca.set_rate(Rate::from_mbps(5.0), Duration::from_millis(50));
        let r0 = cca.current_rate();
        let stats = mi(5.0, 50, 0.0);
        cca.mi_resolve(&stats, &[]);
        cca.mi_resolve(&stats, &[0.1, 0.2]);
        assert_eq!(cca.decisions(), 0);
        assert_eq!(cca.invalid_actions(), 2, "nothing cached: escalate");
        assert_eq!(cca.current_rate(), r0, "rate held");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_is_rejected() {
        let cfg = RlCcaConfig::libra_rl();
        let wrong = RlCcaConfig::aurora(); // different state dim
        let agent = agent_for(&wrong, 7);
        let _ = RlCca::new(cfg, agent);
    }
}
