// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-learned`: learning-based congestion control.
//!
//! This crate implements the paper's RL formulation study (Sec. 4.2) and
//! all learned baselines the evaluation compares against:
//!
//! * [`formulation`] — the state-space catalogue of Tab. 1, AIAD/MIMD
//!   action spaces (Fig. 6) and reward variants (Tab. 3/4).
//! * [`RlCca`] — the generic PPO-driven controller (Alg. 2); with the
//!   right formulation it is Libra's RL component, Aurora, or Mod. RL.
//! * [`Pcc`] — PCC Vivace (online gradient ascent) and PCC Proteus.
//! * [`Orca`] — the prior classic+RL hybrid (DRL rescales CUBIC's cwnd).
//! * [`Remy`], [`Indigo`], [`Sprout`] — compact substitutes for the
//!   offline-synthesized baselines (see DESIGN.md "Substitutions").
//! * [`trainer`] — the randomized-environment PPO training loop.

pub mod formulation;
pub mod indigo;
pub mod orca;
pub mod remy;
pub mod rl_cca;
pub mod sprout;
pub mod trainer;
pub mod vivace;

pub use formulation::{ActionSpace, Feature, MiObservation, RewardSpec, StateSpace};
pub use indigo::Indigo;
pub use orca::Orca;
pub use remy::Remy;
pub use rl_cca::{RewardSource, RlCca, RlCcaConfig};
pub use sprout::Sprout;
pub use trainer::{
    config_for_state_space, tail_reward, train_orca, train_rl_cca, EnvRanges, EpisodeLog,
    TrainConfig, TrainResult,
};
pub use vivace::{Pcc, PccFlavour};
