//! The RL formulation zoo of Sec. 4.2: state-space features (Tab. 1),
//! action spaces (AIAD / MIMD) and reward variants (`r` vs `Δr`, with and
//! without the loss term).

use libra_types::{Duration, MiStats, Rate};
use serde::{Deserialize, Serialize};

/// The nine state candidates of Tab. 1. Each contributes one or two
/// normalized scalars to the feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// (i) EWMA of the gap between sequential ACKs.
    AckInterarrivalEwma,
    /// (ii) EWMA of the gap between sequential packet sends.
    SendInterarrivalEwma,
    /// (iii) Ratio of most-recent to minimum RTT.
    RttRatio,
    /// (iv) Current sending rate.
    SendingRate,
    /// (v) Ratio between packets sent and acknowledged.
    SentAckedRatio,
    /// (vi) Current RTT and the minimum RTT (two scalars).
    RttAndMinRtt,
    /// (vii) Average loss rate.
    LossRate,
    /// (viii) Derivative of latency with respect to time.
    LatencyGradient,
    /// (ix) Average delivery rate.
    DeliveryRate,
}

impl Feature {
    /// Scalars this feature contributes.
    pub fn width(self) -> usize {
        match self {
            Feature::RttAndMinRtt => 2,
            _ => 1,
        }
    }

    /// Tab. 1 index label, e.g. "(iv)".
    pub fn label(self) -> &'static str {
        match self {
            Feature::AckInterarrivalEwma => "(i)",
            Feature::SendInterarrivalEwma => "(ii)",
            Feature::RttRatio => "(iii)",
            Feature::SendingRate => "(iv)",
            Feature::SentAckedRatio => "(v)",
            Feature::RttAndMinRtt => "(vi)",
            Feature::LossRate => "(vii)",
            Feature::LatencyGradient => "(viii)",
            Feature::DeliveryRate => "(ix)",
        }
    }
}

/// Per-MI measurements the feature extractor consumes — [`MiStats`] plus
/// the two ACK/send-gap EWMAs only the sender can maintain.
#[derive(Debug, Clone, Copy)]
pub struct MiObservation {
    /// Closed monitor-interval statistics.
    pub mi: MiStats,
    /// EWMA of inter-ACK gaps (feature i).
    pub ack_gap_ewma: Duration,
    /// EWMA of inter-send gaps (feature ii).
    pub send_gap_ewma: Duration,
    /// Running maximum throughput (normalizer, Alg. 2 line 6).
    pub x_max: Rate,
    /// Running minimum delay (normalizer, Alg. 2 line 6).
    pub d_min: Duration,
}

impl MiObservation {
    fn norm_rtt(&self) -> f64 {
        if self.d_min.is_zero() || self.mi.avg_rtt.is_zero() {
            1.0
        } else {
            self.mi.avg_rtt / self.d_min
        }
    }
}

/// A state-space design: a feature set plus a history length `h`
/// (the state vector is `⟨f_{t−h+1}, …, f_t⟩`, Sec. 4.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSpace {
    /// Ordered feature set.
    pub features: Vec<Feature>,
    /// History length `h`.
    pub history: usize,
}

impl StateSpace {
    /// Build from features and history.
    pub fn new(features: Vec<Feature>, history: usize) -> Self {
        assert!(history >= 1);
        assert!(!features.is_empty());
        StateSpace { features, history }
    }

    /// **Libra's state space** (Sec. 4.2): features (iv), (vii), (viii),
    /// (ix) with history 8.
    pub fn libra() -> Self {
        StateSpace::new(
            vec![
                Feature::SendingRate,
                Feature::LossRate,
                Feature::LatencyGradient,
                Feature::DeliveryRate,
            ],
            8,
        )
    }

    /// The Tab. 2 baseline: the Libra set plus (vi).
    pub fn tab2_baseline() -> Self {
        StateSpace::new(
            vec![
                Feature::SendingRate,
                Feature::RttAndMinRtt,
                Feature::LossRate,
                Feature::LatencyGradient,
                Feature::DeliveryRate,
            ],
            8,
        )
    }

    /// Aurora's published state: latency gradient, latency ratio,
    /// sent/acked ratio.
    pub fn aurora() -> Self {
        StateSpace::new(
            vec![
                Feature::LatencyGradient,
                Feature::RttRatio,
                Feature::SentAckedRatio,
            ],
            8,
        )
    }

    /// RL-TCP-style state (Kong et al.): gap EWMAs + RTT ratio + rate.
    pub fn rl_tcp() -> Self {
        StateSpace::new(
            vec![
                Feature::AckInterarrivalEwma,
                Feature::SendInterarrivalEwma,
                Feature::RttRatio,
                Feature::SendingRate,
            ],
            8,
        )
    }

    /// PCC-flavoured state: rate, loss, gradient.
    pub fn pcc() -> Self {
        StateSpace::new(
            vec![
                Feature::SendingRate,
                Feature::LossRate,
                Feature::LatencyGradient,
            ],
            8,
        )
    }

    /// Remy's observed state: both gap EWMAs and the RTT ratio.
    pub fn remy() -> Self {
        StateSpace::new(
            vec![
                Feature::AckInterarrivalEwma,
                Feature::SendInterarrivalEwma,
                Feature::RttRatio,
            ],
            8,
        )
    }

    /// DRL-CC-style state: rate, RTT pair, gradient, delivery rate.
    pub fn drl_cc() -> Self {
        StateSpace::new(
            vec![
                Feature::SendingRate,
                Feature::RttAndMinRtt,
                Feature::LatencyGradient,
                Feature::DeliveryRate,
            ],
            8,
        )
    }

    /// Orca's published state: send gap, rate, RTT pair, loss, delivery.
    pub fn orca() -> Self {
        StateSpace::new(
            vec![
                Feature::SendInterarrivalEwma,
                Feature::SendingRate,
                Feature::RttAndMinRtt,
                Feature::LossRate,
                Feature::DeliveryRate,
            ],
            8,
        )
    }

    /// Scalars per time step.
    pub fn step_width(&self) -> usize {
        self.features.iter().map(|f| f.width()).sum()
    }

    /// Total observation dimension (`step_width × history`).
    pub fn dim(&self) -> usize {
        self.step_width() * self.history
    }

    /// Extract one step's normalized feature scalars.
    pub fn extract(&self, obs: &MiObservation) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.step_width());
        for f in &self.features {
            match f {
                Feature::AckInterarrivalEwma => {
                    // Normalize by the minimum RTT: ≈0 when ACKs stream in,
                    // ≈1 when one ACK per RTT.
                    let d = if obs.d_min.is_zero() {
                        0.0
                    } else {
                        obs.ack_gap_ewma / obs.d_min
                    };
                    out.push(d.min(10.0));
                }
                Feature::SendInterarrivalEwma => {
                    let d = if obs.d_min.is_zero() {
                        0.0
                    } else {
                        obs.send_gap_ewma / obs.d_min
                    };
                    out.push(d.min(10.0));
                }
                Feature::RttRatio => out.push(obs.norm_rtt().min(10.0)),
                Feature::SendingRate => out.push((obs.mi.sending_rate / obs.x_max).min(4.0)),
                Feature::SentAckedRatio => {
                    let r = if obs.mi.acked_bytes > 0 {
                        obs.mi.sent_bytes as f64 / obs.mi.acked_bytes as f64
                    } else if obs.mi.sent_bytes > 0 {
                        4.0
                    } else {
                        1.0
                    };
                    out.push(r.min(4.0));
                }
                Feature::RttAndMinRtt => {
                    out.push(obs.norm_rtt().min(10.0));
                    // Min RTT normalized against a 200 ms reference.
                    out.push((obs.d_min.as_secs_f64() / 0.2).min(5.0));
                }
                Feature::LossRate => out.push(obs.mi.loss_rate),
                Feature::LatencyGradient => out.push(obs.mi.rtt_gradient.clamp(-5.0, 5.0)),
                Feature::DeliveryRate => out.push((obs.mi.delivery_rate / obs.x_max).min(4.0)),
            }
        }
        out
    }
}

/// Action-space designs evaluated in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActionSpace {
    /// Additive: `x ← x + a` Mbps, `a ∈ [−scale, scale]`.
    Aiad {
        /// Action bound in Mbps.
        scale: f64,
    },
    /// Aurora-style multiplicative: `x·(1+δa)` for `a ≥ 0`, `x/(1−δa)`
    /// otherwise, `a ∈ [−scale, scale]`, `δ = 0.025`.
    MimdAurora {
        /// Action bound.
        scale: f64,
    },
    /// Orca-style multiplicative: `x · 2^a`, `a ∈ [−bound, bound]`.
    MimdOrca {
        /// Exponent bound (Orca uses 2).
        bound: f64,
    },
}

impl ActionSpace {
    /// Libra's default action space (Sec. 4.2 chooses MIMD).
    pub fn libra_default() -> Self {
        ActionSpace::MimdOrca { bound: 1.0 }
    }

    /// Apply a raw (unclamped) agent output to the current rate.
    pub fn apply(self, rate: Rate, raw_action: f64) -> Rate {
        match self {
            ActionSpace::Aiad { scale } => {
                let a = raw_action.clamp(-scale, scale);
                Rate::from_mbps((rate.mbps() + a).max(0.0))
            }
            ActionSpace::MimdAurora { scale } => {
                let a = raw_action.clamp(-scale, scale);
                const DELTA: f64 = 0.025;
                if a >= 0.0 {
                    rate.scale(1.0 + DELTA * a)
                } else {
                    rate.scale(1.0 / (1.0 - DELTA * a))
                }
            }
            ActionSpace::MimdOrca { bound } => {
                let a = raw_action.clamp(-bound, bound);
                rate.scale(2f64.powf(a))
            }
        }
    }

    /// Label for experiment tables.
    pub fn label(self) -> String {
        match self {
            ActionSpace::Aiad { scale } => format!("AIAD(scale={scale})"),
            ActionSpace::MimdAurora { scale } => format!("MIMD-Aurora(scale={scale})"),
            ActionSpace::MimdOrca { bound } => format!("MIMD-Orca(bound={bound})"),
        }
    }
}

/// Reward-function design (Alg. 2 lines 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardSpec {
    /// Throughput weight `w1`.
    pub w1: f64,
    /// Delay weight `w2`.
    pub w2: f64,
    /// Loss weight `w3`.
    pub w3: f64,
    /// Use `Δr = r_t − r_{t−1}` instead of `r_t` (Tab. 4's winner).
    pub use_delta: bool,
    /// Include the loss term (Tab. 3's ablation).
    pub include_loss: bool,
}

impl Default for RewardSpec {
    /// The paper's weights: `w = (1, 0.5, 10)`, Δr, with loss.
    fn default() -> Self {
        RewardSpec {
            w1: 1.0,
            w2: 0.5,
            w3: 10.0,
            use_delta: true,
            include_loss: true,
        }
    }
}

impl RewardSpec {
    /// Raw reward `r_t = w1·x/x_max − w2·d/d_min − w3·L`.
    pub fn raw(&self, obs: &MiObservation) -> f64 {
        let x_norm = obs.mi.delivery_rate / obs.x_max;
        let d_norm = if obs.d_min.is_zero() || obs.mi.avg_rtt.is_zero() {
            1.0
        } else {
            obs.mi.avg_rtt / obs.d_min
        };
        let loss = if self.include_loss {
            obs.mi.loss_rate
        } else {
            0.0
        };
        self.w1 * x_norm - self.w2 * d_norm - self.w3 * loss
    }

    /// Final reward given the previous raw reward; returns
    /// `(reward, new_prev_raw)`.
    pub fn compute(&self, obs: &MiObservation, prev_raw: f64) -> (f64, f64) {
        let r = self.raw(obs);
        if self.use_delta {
            (r - prev_raw, r)
        } else {
            (r, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::Instant;

    fn obs(rate_mbps: f64, deliv_mbps: f64, rtt_ms: u64, loss: f64) -> MiObservation {
        let mut mi = MiStats::empty(Instant::ZERO);
        mi.sending_rate = Rate::from_mbps(rate_mbps);
        mi.delivery_rate = Rate::from_mbps(deliv_mbps);
        mi.avg_rtt = Duration::from_millis(rtt_ms);
        mi.loss_rate = loss;
        mi.acks = 10;
        mi.sent_bytes = 10_000;
        mi.acked_bytes = 10_000;
        MiObservation {
            mi,
            ack_gap_ewma: Duration::from_millis(2),
            send_gap_ewma: Duration::from_millis(2),
            x_max: Rate::from_mbps(100.0),
            d_min: Duration::from_millis(50),
        }
    }

    #[test]
    fn dims_add_up() {
        assert_eq!(StateSpace::libra().step_width(), 4);
        assert_eq!(StateSpace::libra().dim(), 32);
        assert_eq!(StateSpace::tab2_baseline().step_width(), 6); // (vi) is 2-wide
        assert_eq!(StateSpace::orca().step_width(), 6);
    }

    #[test]
    fn extract_matches_width_and_normalization() {
        let ss = StateSpace::tab2_baseline();
        let v = ss.extract(&obs(50.0, 40.0, 100, 0.02));
        assert_eq!(v.len(), ss.step_width());
        // (iv) = 50/100, (vi).0 = 100/50, (vii) = 0.02, (ix) = 40/100.
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[1] - 2.0).abs() < 1e-12);
        assert!((v[3] - 0.02).abs() < 1e-12);
        assert!((v[5] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn extract_is_bounded() {
        // Degenerate inputs never produce unbounded features.
        let mut o = obs(100_000.0, 100_000.0, 10_000, 1.0);
        o.d_min = Duration::ZERO;
        for ss in [
            StateSpace::libra(),
            StateSpace::aurora(),
            StateSpace::rl_tcp(),
            StateSpace::remy(),
            StateSpace::drl_cc(),
            StateSpace::orca(),
            StateSpace::pcc(),
        ] {
            for x in ss.extract(&o) {
                assert!(x.is_finite() && x.abs() <= 10.0, "{x}");
            }
        }
    }

    #[test]
    fn aiad_moves_additively() {
        let a = ActionSpace::Aiad { scale: 5.0 };
        let r = a.apply(Rate::from_mbps(10.0), 3.0);
        assert!((r.mbps() - 13.0).abs() < 1e-9);
        // Clamped at the scale.
        let r2 = a.apply(Rate::from_mbps(10.0), 100.0);
        assert!((r2.mbps() - 15.0).abs() < 1e-9);
        // Never negative.
        let r3 = a.apply(Rate::from_mbps(1.0), -5.0);
        assert_eq!(r3, Rate::ZERO);
    }

    #[test]
    fn mimd_aurora_symmetric() {
        let a = ActionSpace::MimdAurora { scale: 10.0 };
        let up = a.apply(Rate::from_mbps(10.0), 4.0);
        assert!((up.mbps() - 11.0).abs() < 1e-9); // ×(1+0.1)
        let dn = a.apply(up, -4.0);
        assert!((dn.mbps() - 10.0).abs() < 1e-9); // ÷(1+0.1)
    }

    #[test]
    fn mimd_orca_doubles_and_halves() {
        let a = ActionSpace::MimdOrca { bound: 2.0 };
        assert!((a.apply(Rate::from_mbps(8.0), 1.0).mbps() - 16.0).abs() < 1e-9);
        assert!((a.apply(Rate::from_mbps(8.0), -1.0).mbps() - 4.0).abs() < 1e-9);
        // Clamped to ±2 → at most ×4 / ÷4.
        assert!((a.apply(Rate::from_mbps(8.0), 99.0).mbps() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn reward_prefers_throughput_and_penalizes_loss() {
        let spec = RewardSpec {
            use_delta: false,
            ..RewardSpec::default()
        };
        let good = spec.raw(&obs(50.0, 50.0, 50, 0.0));
        let lossy = spec.raw(&obs(50.0, 50.0, 50, 0.1));
        let slow = spec.raw(&obs(10.0, 10.0, 50, 0.0));
        assert!(good > lossy);
        assert!(good > slow);
    }

    #[test]
    fn delta_reward_flags_degradation() {
        // Throughput saturated, delay rising: r decreases, so Δr < 0 even
        // though r itself is still positive — the Sec. 4.2 argument.
        let spec = RewardSpec::default();
        let r1 = spec.raw(&obs(90.0, 90.0, 50, 0.0));
        let (dr, _) = spec.compute(&obs(90.0, 90.0, 80, 0.0), r1);
        assert!(dr < 0.0, "Δr = {dr}");
    }

    #[test]
    fn loss_ablation_removes_term() {
        let with = RewardSpec::default();
        let without = RewardSpec {
            include_loss: false,
            ..RewardSpec::default()
        };
        let o = obs(50.0, 50.0, 50, 0.37);
        assert!(without.raw(&o) > with.raw(&o));
    }

    #[test]
    fn labels_render() {
        assert_eq!(ActionSpace::Aiad { scale: 5.0 }.label(), "AIAD(scale=5)");
        assert_eq!(Feature::SendingRate.label(), "(iv)");
    }
}
