//! Remy-lite: a rule-table controller in the style of TCP ex machina
//! (Winstein & Balakrishnan, SIGCOMM'13).
//!
//! RemyCC maps an observed state — (EWMA of inter-ACK gaps, EWMA of
//! inter-send gaps, ratio of recent to minimum RTT) — to an action
//! (window multiplier `m`, window increment `b`, minimum send spacing).
//! The original table is machine-synthesized offline for an assumed
//! network range; redistributing it is not possible, so this module ships
//! a compact hand-written table with the published structure and the
//! qualitative behaviour Remy exhibits on Pantheon: efficient inside its
//! design range, brittle outside it (see DESIGN.md "Substitutions").

use libra_types::{
    AckEvent, CongestionControl, Duration, Ewma, Instant, LossEvent, LossKind, Rate,
};

/// One rule: thresholds on the observed state → window action.
#[derive(Debug, Clone, Copy)]
struct Rule {
    /// Rule applies when `rtt_ratio < rtt_ratio_max`.
    rtt_ratio_max: f64,
    /// …and `ack_gap / min_rtt < ack_gap_max`.
    ack_gap_max: f64,
    /// Window multiplier `m`.
    multiplier: f64,
    /// Window increment `b` (packets).
    increment: f64,
}

/// The design range Remy-lite's table was "synthesized" for. Matches the
/// spirit of the published RemyCC-100x tables.
const RULES: [Rule; 5] = [
    // ACKs streaming fast, RTT at baseline: open aggressively.
    Rule {
        rtt_ratio_max: 1.1,
        ack_gap_max: 0.3,
        multiplier: 1.0,
        increment: 2.0,
    },
    // Mild queueing: gentle additive increase.
    Rule {
        rtt_ratio_max: 1.4,
        ack_gap_max: 0.6,
        multiplier: 1.0,
        increment: 0.5,
    },
    // Moderate queueing: hold.
    Rule {
        rtt_ratio_max: 1.8,
        ack_gap_max: 1.0,
        multiplier: 1.0,
        increment: 0.0,
    },
    // Heavy queueing: multiplicative backoff.
    Rule {
        rtt_ratio_max: 2.5,
        ack_gap_max: 2.0,
        multiplier: 0.85,
        increment: 0.0,
    },
    // Severe: strong backoff (catch-all; thresholds infinite).
    Rule {
        rtt_ratio_max: f64::INFINITY,
        ack_gap_max: f64::INFINITY,
        multiplier: 0.6,
        increment: 0.0,
    },
];

/// Remy-lite controller.
pub struct Remy {
    mss: u64,
    cwnd: f64,
    min_rtt: Duration,
    ack_gap: Ewma,
    send_gap: Ewma,
    last_ack_at: Option<Instant>,
    last_send_at: Option<Instant>,
    round_end: Instant,
    last_rtt: Duration,
    min_cwnd: f64,
    rule_hits: [u64; RULES.len()],
}

impl Remy {
    /// Remy-lite with the given MSS.
    pub fn new(mss: u64) -> Self {
        Remy {
            mss,
            cwnd: 10.0,
            min_rtt: Duration::MAX,
            ack_gap: Ewma::new(0.125),
            send_gap: Ewma::new(0.125),
            last_ack_at: None,
            last_send_at: None,
            round_end: Instant::ZERO,
            last_rtt: Duration::ZERO,
            min_cwnd: 2.0,
            rule_hits: [0; RULES.len()],
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }

    /// How many times each rule fired (telemetry).
    pub fn rule_hits(&self) -> &[u64] {
        &self.rule_hits
    }

    fn apply_rule(&mut self) {
        if self.min_rtt == Duration::MAX || self.last_rtt.is_zero() {
            return;
        }
        let rtt_ratio = self.last_rtt / self.min_rtt;
        let ack_gap_norm = self.ack_gap.get_or(0.0) / self.min_rtt.as_secs_f64().max(1e-6);
        for (i, rule) in RULES.iter().enumerate() {
            if rtt_ratio < rule.rtt_ratio_max && ack_gap_norm < rule.ack_gap_max {
                self.cwnd = (self.cwnd * rule.multiplier + rule.increment).max(self.min_cwnd);
                self.rule_hits[i] += 1;
                return;
            }
        }
        // rtt_ratio high but ACKs fast (or vice versa): catch-all backoff.
        self.cwnd = (self.cwnd * 0.6).max(self.min_cwnd);
        self.rule_hits[RULES.len() - 1] += 1;
    }
}

impl Default for Remy {
    fn default() -> Self {
        Remy::new(1500)
    }
}

impl CongestionControl for Remy {
    fn name(&self) -> &'static str {
        "Remy"
    }

    fn on_send(&mut self, ev: &libra_types::SendEvent) {
        if let Some(prev) = self.last_send_at {
            self.send_gap
                .update(ev.now.saturating_since(prev).as_secs_f64());
        }
        self.last_send_at = Some(ev.now);
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if let Some(prev) = self.last_ack_at {
            self.ack_gap
                .update(ev.now.saturating_since(prev).as_secs_f64());
        }
        self.last_ack_at = Some(ev.now);
        self.min_rtt = self.min_rtt.min(ev.rtt);
        self.last_rtt = ev.rtt;
        if ev.now >= self.round_end {
            self.apply_rule();
            self.round_end = ev.now + ev.srtt.max(Duration::from_millis(1));
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        if ev.kind == LossKind::Timeout {
            self.cwnd = self.min_cwnd;
        }
        // Remy's tables otherwise react through delay, not loss.
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd.max(self.min_cwnd) * self.mss as f64) as u64
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.cwnd = (rate.bytes_in(srtt) as f64 / self.mss as f64).max(self.min_cwnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    #[test]
    fn fast_acks_low_rtt_open_window() {
        let mut r = Remy::new(1500);
        // ACKs every 1 ms, RTT flat at 50 ms → rule 0 (+2/round).
        for k in 0..200u64 {
            r.on_ack(&ack(k, 50));
        }
        assert!(r.cwnd_packets() > 12.0, "cwnd {}", r.cwnd_packets());
        assert!(r.rule_hits()[0] > 0);
    }

    #[test]
    fn inflated_rtt_backs_off() {
        let mut r = Remy::new(1500);
        for k in 0..100u64 {
            r.on_ack(&ack(k, 50));
        }
        let w = r.cwnd_packets();
        // RTT jumps to 3× base → severe rule (×0.6).
        for k in 0..50u64 {
            r.on_ack(&ack(1000 + k * 10, 150));
        }
        assert!(r.cwnd_packets() < w, "{} vs {w}", r.cwnd_packets());
    }

    #[test]
    fn timeout_collapses() {
        let mut r = Remy::new(1500);
        for k in 0..100u64 {
            r.on_ack(&ack(k, 50));
        }
        r.on_loss(&LossEvent {
            now: Instant::from_secs(1),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
        });
        assert!((r.cwnd_packets() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rule_decisions_once_per_round() {
        let mut r = Remy::new(1500);
        // 100 ACKs inside one 50 ms round → exactly 2 decisions
        // (one at t=0, one at the first ACK past round_end).
        for k in 0..100u64 {
            r.on_ack(&ack(k / 2, 50));
        }
        let total: u64 = r.rule_hits().iter().sum();
        assert!(total <= 2, "decisions {total}");
    }
}
