//! Offline training of PPO-based controllers over randomized simulated
//! networks — the paper's training procedure (Sec. 5 "Implementation"):
//! each episode samples link capacity, RTT, buffer size and stochastic
//! loss from configured ranges and runs one fresh flow.

use crate::formulation::StateSpace;
use crate::orca::Orca;
use crate::rl_cca::{RlCca, RlCcaConfig};
use libra_netsim::{FaultPlan, FlowConfig, LinkConfig, Simulation};
use libra_rl::{PpoAgent, PpoWeights};
use libra_types::{Bytes, CongestionControl, DetRng, Duration, Instant, Rate};
use std::cell::RefCell;
use std::rc::Rc;

/// Ranges the training environment samples from. Defaults follow the
/// paper: capacity 10–200 Mbps, RTT 10–200 ms, buffer 10 KB–5 MB, loss
/// 0–10 %.
#[derive(Debug, Clone)]
pub struct EnvRanges {
    /// Link capacity range in Mbps.
    pub capacity_mbps: (f64, f64),
    /// Minimum-RTT range in milliseconds.
    pub rtt_ms: (f64, f64),
    /// Buffer range in KB.
    pub buffer_kb: (u64, u64),
    /// Stochastic loss range.
    pub loss: (f64, f64),
}

impl Default for EnvRanges {
    fn default() -> Self {
        EnvRanges {
            capacity_mbps: (10.0, 200.0),
            rtt_ms: (10.0, 200.0),
            buffer_kb: (10, 5_000),
            loss: (0.0, 0.10),
        }
    }
}

impl EnvRanges {
    /// A narrower, faster-converging range for unit tests and quick
    /// benches (capacities a small agent explores quickly).
    pub fn quick() -> Self {
        EnvRanges {
            capacity_mbps: (8.0, 60.0),
            rtt_ms: (20.0, 80.0),
            buffer_kb: (30, 500),
            loss: (0.0, 0.02),
        }
    }

    /// Sample one episode's link.
    pub fn sample(&self, rng: &mut DetRng) -> LinkConfig {
        let cap = Rate::from_mbps(rng.uniform_range(self.capacity_mbps.0, self.capacity_mbps.1));
        let rtt = Duration::from_secs_f64(rng.uniform_range(self.rtt_ms.0, self.rtt_ms.1) / 1e3);
        let buffer = Bytes::from_kb(rng.uniform_u64(self.buffer_kb.0, self.buffer_kb.1 + 1));
        let loss = rng.uniform_range(self.loss.0, self.loss.1);
        LinkConfig {
            capacity: libra_netsim::CapacitySchedule::constant(cap),
            one_way_delay: rtt / 2,
            buffer,
            stochastic_loss: loss,
            ack_jitter: Duration::ZERO,
            loss_process: None,
            ecn: None,
            faults: FaultPlan::default(),
            queue: libra_netsim::QueueConfig::Droptail,
        }
    }
}

/// Training loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of training episodes.
    pub episodes: usize,
    /// Simulated seconds per episode.
    pub episode_secs: u64,
    /// Environment ranges.
    pub env: EnvRanges,
    /// Master seed.
    pub seed: u64,
    /// Run a PPO update every `update_every` episodes.
    pub update_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            episodes: 300,
            episode_secs: 10,
            env: EnvRanges::quick(),
            seed: 7,
            update_every: 2,
        }
    }
}

/// Per-episode log entry of a training run.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeLog {
    /// Episode index.
    pub episode: usize,
    /// Sum of rewards the agent collected in the episode.
    pub reward: f64,
    /// Link utilization achieved.
    pub utilization: f64,
    /// Mean RTT in ms.
    pub rtt_ms: f64,
    /// Loss fraction.
    pub loss: f64,
}

/// Result of a training run: final weights plus the per-episode curve
/// (the data behind Fig. 5 and Fig. 6).
pub struct TrainResult {
    /// Trained weights.
    pub weights: PpoWeights,
    /// Per-episode reward curve.
    pub curve: Vec<EpisodeLog>,
}

/// Which controller wraps the agent during training.
enum Wrap<'a> {
    Generic(&'a RlCcaConfig),
    Orca,
}

fn run_training(
    cfg: &TrainConfig,
    agent: Rc<RefCell<PpoAgent>>,
    wrap: Wrap<'_>,
) -> Vec<EpisodeLog> {
    let mut rng = DetRng::new(cfg.seed);
    let mut env_rng = rng.fork("train-env");
    let mut init_rng = rng.fork("train-init");
    let mut curve = Vec::with_capacity(cfg.episodes);
    for episode in 0..cfg.episodes {
        let link = cfg.env.sample(&mut env_rng);
        let until = Instant::from_secs(cfg.episode_secs);
        let capacity = link.capacity.rate_at(Instant::ZERO);
        let rtt = link.one_way_delay * 2;
        let mut sim = Simulation::new(link, rng.next_u64());
        let mut cca: Box<dyn CongestionControl> = match &wrap {
            Wrap::Generic(c) => Box::new(RlCca::new((*c).clone(), Rc::clone(&agent))),
            Wrap::Orca => Box::new(Orca::new(Rc::clone(&agent))),
        };
        // Randomized initial sending rate (Aurora's trick): exposing the
        // agent to mid/high-rate states from the start gives dense
        // gradients and avoids the timid local optimum at the rate floor.
        let init = capacity.scale(init_rng.uniform_range(0.2, 1.3));
        cca.set_rate(init, rtt);
        let mut fc = FlowConfig::whole_run(cca, until);
        fc.measure_compute = false;
        sim.add_flow(fc);
        let report = sim.run(until);
        let reward = agent.borrow().buffered_reward();
        curve.push(EpisodeLog {
            episode,
            reward,
            utilization: report.link.utilization,
            rtt_ms: report.flows[0].rtt_ms.mean(),
            loss: report.flows[0].loss_fraction,
        });
        if (episode + 1) % cfg.update_every == 0 {
            agent.borrow_mut().update(None);
        }
    }
    agent.borrow_mut().update(None);
    curve
}

/// Train an [`RlCca`] formulation from scratch; returns weights and the
/// reward curve.
pub fn train_rl_cca(cca_cfg: &RlCcaConfig, cfg: &TrainConfig) -> TrainResult {
    let mut rng = DetRng::new(cfg.seed ^ 0xA5A5);
    let agent = Rc::new(RefCell::new(PpoAgent::new(cca_cfg.ppo_config(), &mut rng)));
    let curve = run_training(cfg, Rc::clone(&agent), Wrap::Generic(cca_cfg));
    let weights = agent.borrow().weights();
    TrainResult { weights, curve }
}

/// Train an [`Orca`] agent from scratch.
pub fn train_orca(cfg: &TrainConfig) -> TrainResult {
    let mut rng = DetRng::new(cfg.seed ^ 0x5A5A);
    let agent = Rc::new(RefCell::new(PpoAgent::new(Orca::ppo_config(), &mut rng)));
    let curve = run_training(cfg, Rc::clone(&agent), Wrap::Orca);
    let weights = agent.borrow().weights();
    TrainResult { weights, curve }
}

/// Smoothed tail reward of a curve (mean of the last quarter) — the
/// summary statistic the state-space comparison tables report.
pub fn tail_reward(curve: &[EpisodeLog]) -> f64 {
    if curve.is_empty() {
        return 0.0;
    }
    let n = (curve.len() / 4).max(1);
    curve[curve.len() - n..]
        .iter()
        .map(|e| e.reward)
        .sum::<f64>()
        / n as f64
}

/// Convenience: a generic RlCcaConfig for an arbitrary state space with
/// the Libra defaults otherwise (used by the Fig. 5 comparison).
pub fn config_for_state_space(name: &'static str, state: StateSpace) -> RlCcaConfig {
    RlCcaConfig {
        name,
        state,
        ..RlCcaConfig::libra_rl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_sampling_in_ranges() {
        let ranges = EnvRanges::default();
        let mut rng = DetRng::new(1);
        for _ in 0..50 {
            let link = ranges.sample(&mut rng);
            let cap = link.capacity.rate_at(Instant::ZERO).mbps();
            assert!((10.0..=200.0).contains(&cap), "cap {cap}");
            let rtt = link.one_way_delay.as_millis_f64() * 2.0;
            assert!((9.9..=200.1).contains(&rtt), "rtt {rtt}");
            assert!(link.buffer.get() >= 10_000 && link.buffer.get() <= 5_000_000);
            assert!((0.0..=0.1).contains(&link.stochastic_loss));
        }
    }

    #[test]
    fn short_training_runs_and_logs() {
        let cca = RlCcaConfig::libra_rl();
        let cfg = TrainConfig {
            episodes: 4,
            episode_secs: 2,
            env: EnvRanges::quick(),
            seed: 3,
            update_every: 2,
        };
        let result = train_rl_cca(&cca, &cfg);
        assert_eq!(result.curve.len(), 4);
        assert!(result.curve.iter().all(|e| e.reward.is_finite()));
        assert!(result.curve.iter().any(|e| e.utilization > 0.0));
    }

    #[test]
    fn orca_training_runs() {
        let cfg = TrainConfig {
            episodes: 2,
            episode_secs: 2,
            env: EnvRanges::quick(),
            seed: 4,
            update_every: 1,
        };
        let result = train_orca(&cfg);
        assert_eq!(result.curve.len(), 2);
    }

    #[test]
    fn training_is_deterministic() {
        let cca = RlCcaConfig::libra_rl();
        let cfg = TrainConfig {
            episodes: 3,
            episode_secs: 2,
            env: EnvRanges::quick(),
            seed: 9,
            update_every: 2,
        };
        let a = train_rl_cca(&cca, &cfg);
        let b = train_rl_cca(&cca, &cfg);
        for (x, y) in a.curve.iter().zip(&b.curve) {
            assert_eq!(x.reward, y.reward);
        }
    }

    #[test]
    fn tail_reward_math() {
        let curve: Vec<EpisodeLog> = (0..8)
            .map(|i| EpisodeLog {
                episode: i,
                reward: i as f64,
                utilization: 0.0,
                rtt_ms: 0.0,
                loss: 0.0,
            })
            .collect();
        // Last quarter = episodes 6,7 → mean 6.5.
        assert!((tail_reward(&curve) - 6.5).abs() < 1e-12);
        assert_eq!(tail_reward(&[]), 0.0);
    }
}
