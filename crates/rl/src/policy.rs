//! The shared policy server: one inference service for many flows.
//!
//! Per-flow serving runs one small matrix-vector product per decision —
//! the shape ROADMAP item 2 says a millions-of-users deployment cannot
//! afford. [`PolicyServer`] instead lets every flow in a decision tick
//! submit its state vector, composes the submissions into one matrix,
//! and runs a single matrix-matrix forward per layer
//! ([`PpoAgent::act_eval_batch`]), fanning the action rows back out.
//!
//! ## Determinism
//!
//! * **Composition order.** Requests arrive sorted by flow id and are
//!   gathered per agent group in that order (the index-ordered claim
//!   discipline of `sweep.rs`), so batch composition is a pure function
//!   of which flows ticked — never of arrival order or host timing.
//! * **Bit identity.** Registered agents must be in eval mode (checked
//!   at registration): eval actions are the actor mean, computed without
//!   RNG draws or agent mutation, and the batched kernel accumulates
//!   each output element in exactly the per-flow order — so every flow
//!   receives the bit-identical action it would have computed alone.
//! * **No threads.** Evaluation is synchronous inside the simulator's
//!   event loop; the server is plain single-threaded state.
//!
//! ## Robustness
//!
//! * **Quarantine.** A request whose state vector is non-finite or has
//!   the wrong dimension is *quarantined*: excluded from the shared
//!   forward pass (so it cannot poison the group), marked, and answered
//!   with an empty action — the resolve side's fallback sentinel. The
//!   rest of the batch is served exactly as if the bad request never
//!   arrived.
//! * **Fault injection.** An optional seed-deterministic
//!   [`PolicyFaultPlan`] injects boundary faults (drops, deadline
//!   misses, NaN/wrong-dim corruption, weight corruption with snapshot
//!   rollback, stuck replays) on a dedicated RNG stream. With no plan
//!   attached the injection path is a single `Option` check — faults-off
//!   serving is byte-identical to a server built before this subsystem
//!   existed.

use crate::ppo::{PpoAgent, WEIGHT_NORM_BOUND};
use libra_nn::{BatchScratch, Matrix};
use libra_types::{
    DetRng, PolicyFaultKind, PolicyFaultPlan, PolicyFaultReport, PolicyRequest, PolicyService,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Flows sharing one eval-mode agent (typically all flows of a sweep arm
/// share weights; distinct CCAs land in distinct groups).
struct Group {
    agent: Rc<RefCell<PpoAgent>>,
    obs_dim: usize,
}

/// Runtime state for an attached [`PolicyFaultPlan`]: the dedicated RNG
/// stream, injection counters, and per-window caches.
struct FaultState {
    plan: PolicyFaultPlan,
    rng: DetRng,
    report: PolicyFaultReport,
    /// `flow → first in-window action` for [`PolicyFaultKind::StuckAction`]
    /// replay; cleared whenever no stuck window is active.
    stuck: BTreeMap<u32, Vec<f64>>,
    /// True while a weight-corruption window has the shared weights
    /// poisoned (restored from snapshot when the window ends).
    corrupted: bool,
}

/// A synchronous, deterministic batched-inference service over one or
/// more shared eval-mode [`PpoAgent`]s. See the module docs for the
/// determinism contract.
#[derive(Default)]
pub struct PolicyServer {
    groups: Vec<Group>,
    /// `flow id → group index`, dense over registered flow ids.
    flow_group: Vec<Option<usize>>,
    /// Reused batch-composition buffers.
    obs: Matrix,
    acts: Matrix,
    scratch: BatchScratch,
    rows: Vec<usize>,
    // Serving statistics (deterministic: counts, not timings).
    batches: u64,
    rows_served: u64,
    max_batch: usize,
    quarantines: u64,
    faults: Option<Box<FaultState>>,
}

impl PolicyServer {
    /// An empty server; flows join via [`register`](Self::register).
    pub fn new() -> Self {
        PolicyServer::default()
    }

    /// Attach a fault plan (builder style). An empty plan attaches
    /// nothing, keeping the serving path identical to a plain server.
    pub fn with_faults(mut self, plan: PolicyFaultPlan) -> Self {
        self.set_faults(plan);
        self
    }

    /// Attach a fault plan. An empty plan detaches injection entirely.
    pub fn set_faults(&mut self, plan: PolicyFaultPlan) {
        if plan.is_empty() {
            self.faults = None;
            return;
        }
        let rng = DetRng::new(plan.seed);
        self.faults = Some(Box::new(FaultState {
            plan,
            rng,
            report: PolicyFaultReport::default(),
            stuck: BTreeMap::new(),
            corrupted: false,
        }));
    }

    /// Register `flow` to be served by `agent`. Agents are deduplicated
    /// by identity (`Rc::ptr_eq`), so a thousand flows sharing one
    /// weight set form a single batch group. The agent must already be
    /// in eval mode — training-mode action selection draws RNG and
    /// mutates the agent, which would make results depend on batch
    /// composition.
    pub fn register(&mut self, flow: u32, agent: &Rc<RefCell<PpoAgent>>) {
        assert!(
            agent.borrow().is_eval(),
            "policy server requires eval-mode agents (flow {flow})"
        );
        let group = match self.groups.iter().position(|g| Rc::ptr_eq(&g.agent, agent)) {
            Some(g) => g,
            None => {
                let obs_dim = agent.borrow().config().obs_dim;
                self.groups.push(Group {
                    agent: Rc::clone(agent),
                    obs_dim,
                });
                self.groups.len() - 1
            }
        };
        let idx = flow as usize;
        if idx >= self.flow_group.len() {
            self.flow_group.resize(idx + 1, None);
        }
        self.flow_group[idx] = Some(group);
    }

    /// Number of distinct agent groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Batched evaluations run so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total flow requests served.
    pub fn rows_served(&self) -> u64 {
        self.rows_served
    }

    /// Largest single-group batch served (the batching win's witness).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Requests quarantined for invalid state vectors.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Injection counters of the attached fault plan (all-zero when no
    /// plan is attached).
    pub fn fault_report(&self) -> PolicyFaultReport {
        self.faults.as_ref().map(|f| f.report).unwrap_or_default()
    }

    fn group_of(&self, flow: u32) -> usize {
        self.flow_group
            .get(flow as usize)
            .copied()
            .flatten()
            .expect("flow submitted a policy request without registering")
    }

    /// Enter/leave weight-corruption windows around the forward passes.
    /// Entering snapshots every group's weights and poisons them;
    /// leaving restores the snapshots (the `ModelStore`-style
    /// snapshot/rollback contract).
    fn manage_weight_windows(&mut self, now: libra_types::Instant) {
        let Some(faults) = self.faults.as_mut() else {
            return;
        };
        let corrupt_active = faults
            .plan
            .events
            .iter()
            .any(|e| matches!(e.kind, PolicyFaultKind::WeightCorrupt) && e.active_at(now));
        if corrupt_active && !faults.corrupted {
            for g in &self.groups {
                let mut agent = g.agent.borrow_mut();
                agent.snapshot_good();
                agent.map_actor_params(|_| f64::NAN);
                faults.report.weight_corruptions += 1;
            }
            faults.corrupted = true;
        } else if !corrupt_active && faults.corrupted {
            for g in &self.groups {
                if !g.agent.borrow_mut().validate_or_restore(WEIGHT_NORM_BOUND) {
                    faults.report.weight_restores += 1;
                }
            }
            faults.corrupted = false;
        }
    }

    /// Apply per-response faults after the forward passes, in batch
    /// (flow-id) order. RNG draws happen only inside active windows, so
    /// the stream — like netsim's link faults — is a pure function of
    /// the plan, its seed, and the deterministic request sequence.
    fn inject_response_faults(&mut self, batch: &mut [PolicyRequest]) {
        let Some(faults) = self.faults.as_mut() else {
            return;
        };
        let now = batch[0].at;
        let stuck_active = faults
            .plan
            .events
            .iter()
            .any(|e| matches!(e.kind, PolicyFaultKind::StuckAction) && e.active_at(now));
        if !stuck_active && !faults.stuck.is_empty() {
            faults.stuck.clear();
        }
        for req in batch.iter_mut() {
            if req.quarantined {
                continue;
            }
            if faults.corrupted {
                // The shared weights are poisoned: every served action is
                // already NaN. Label the response so reports can tell a
                // weight-corruption miss from a healthy decision.
                req.fault = Some("weight-corrupt");
            }
            for i in 0..faults.plan.events.len() {
                if !faults.plan.events[i].active_at(now) {
                    continue;
                }
                match faults.plan.events[i].kind {
                    PolicyFaultKind::ResponseDrop { probability } => {
                        if faults.rng.chance(probability) {
                            req.action.clear();
                            req.fault = Some("response-drop");
                            faults.report.dropped_responses += 1;
                        }
                    }
                    PolicyFaultKind::ResponseDelay { probability } => {
                        if faults.rng.chance(probability) {
                            req.action.clear();
                            req.fault = Some("response-delay");
                            faults.report.delayed_responses += 1;
                        }
                    }
                    PolicyFaultKind::NanAction { probability } => {
                        if faults.rng.chance(probability) && !req.action.is_empty() {
                            for (j, a) in req.action.iter_mut().enumerate() {
                                *a = if j % 2 == 0 { f64::NAN } else { f64::INFINITY };
                            }
                            req.fault = Some("nan-action");
                            faults.report.nan_actions += 1;
                        }
                    }
                    PolicyFaultKind::WrongDim { probability } => {
                        if faults.rng.chance(probability) && !req.action.is_empty() {
                            req.action.push(0.0);
                            req.fault = Some("wrong-dim");
                            faults.report.wrong_dim_actions += 1;
                        }
                    }
                    PolicyFaultKind::StuckAction => {
                        if let Some(cached) = faults.stuck.get(&req.flow) {
                            req.action.clear();
                            req.action.extend_from_slice(cached);
                            req.fault = Some("stuck-action");
                            faults.report.stuck_actions += 1;
                        } else {
                            faults.stuck.insert(req.flow, req.action.clone());
                        }
                    }
                    PolicyFaultKind::WeightCorrupt => {}
                }
            }
        }
    }
}

impl PolicyService for PolicyServer {
    fn evaluate(&mut self, batch: &mut [PolicyRequest]) {
        debug_assert!(
            batch.windows(2).all(|w| w[0].flow < w[1].flow),
            "policy batch must be sorted by flow id"
        );
        if batch.is_empty() {
            return;
        }
        if self.faults.is_some() {
            self.manage_weight_windows(batch[0].at);
        }
        // Walk groups in index order; within a group, members keep the
        // batch slice's (flow-id) order — deterministic composition.
        for g in 0..self.groups.len() {
            self.rows.clear();
            let obs_dim = self.groups[g].obs_dim;
            for (i, req) in batch.iter_mut().enumerate() {
                if self.group_of(req.flow) != g {
                    continue;
                }
                // Quarantine before composition: a non-finite or
                // wrong-dimension state must not reach the shared
                // forward pass. The flow gets the empty-action fallback
                // sentinel; the rest of the group batches as usual.
                if req.state.len() != obs_dim || req.state.iter().any(|x| !x.is_finite()) {
                    req.quarantined = true;
                    req.action.clear();
                    self.quarantines += 1;
                    continue;
                }
                self.rows.push(i);
            }
            if self.rows.is_empty() {
                continue;
            }
            self.obs.reshape(self.rows.len(), obs_dim);
            {
                let flat = self.obs.as_mut_slice();
                for (k, &i) in self.rows.iter().enumerate() {
                    flat[k * obs_dim..(k + 1) * obs_dim].copy_from_slice(&batch[i].state);
                }
            }
            self.groups[g].agent.borrow().act_eval_batch(
                &self.obs,
                &mut self.acts,
                &mut self.scratch,
            );
            let act_dim = self.acts.cols();
            let acts = self.acts.as_slice();
            for (k, &i) in self.rows.iter().enumerate() {
                let req = &mut batch[i];
                req.action.clear();
                req.action
                    .extend_from_slice(&acts[k * act_dim..(k + 1) * act_dim]);
            }
            self.batches += 1;
            self.rows_served += self.rows.len() as u64;
            self.max_batch = self.max_batch.max(self.rows.len());
        }
        if self.faults.is_some() {
            self.inject_response_faults(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PpoConfig;
    use libra_types::{Duration, Instant};

    fn eval_agent(seed: u64) -> Rc<RefCell<PpoAgent>> {
        let mut rng = DetRng::new(seed);
        let mut agent = PpoAgent::new(PpoConfig::new(4, 2), &mut rng);
        agent.set_eval(true);
        Rc::new(RefCell::new(agent))
    }

    fn req(flow: u32, state: Vec<f64>) -> PolicyRequest {
        PolicyRequest {
            flow,
            state,
            ..PolicyRequest::default()
        }
    }

    fn req_at(flow: u32, at: Instant, state: Vec<f64>) -> PolicyRequest {
        PolicyRequest {
            flow,
            at,
            state,
            ..PolicyRequest::default()
        }
    }

    #[test]
    fn batched_actions_match_per_flow_eval_act_bitwise() {
        let agent = eval_agent(11);
        let mut server = PolicyServer::new();
        for flow in 0..5u32 {
            server.register(flow, &agent);
        }
        assert_eq!(server.group_count(), 1);
        let mut batch: Vec<PolicyRequest> = (0..5u32)
            .map(|f| {
                req(
                    f,
                    (0..4).map(|i| (f as f64) * 0.3 - i as f64 * 0.7).collect(),
                )
            })
            .collect();
        server.evaluate(&mut batch);
        for r in &batch {
            let solo = agent.borrow_mut().act(&r.state);
            assert_eq!(solo.len(), r.action.len());
            for (a, b) in solo.iter().zip(&r.action) {
                assert_eq!(a.to_bits(), b.to_bits(), "flow {}", r.flow);
            }
        }
        assert_eq!(server.batches(), 1);
        assert_eq!(server.rows_served(), 5);
        assert_eq!(server.max_batch(), 5);
        assert_eq!(server.quarantines(), 0);
        assert_eq!(server.fault_report(), PolicyFaultReport::default());
    }

    #[test]
    fn distinct_agents_form_distinct_groups() {
        let a = eval_agent(1);
        let b = eval_agent(2);
        let mut server = PolicyServer::new();
        server.register(0, &a);
        server.register(1, &b);
        server.register(2, &a);
        assert_eq!(server.group_count(), 2);
        let mut batch = vec![
            req(0, vec![0.1; 4]),
            req(1, vec![0.2; 4]),
            req(2, vec![0.3; 4]),
        ];
        server.evaluate(&mut batch);
        // Every request got an action from its own group's agent.
        for (r, agent) in batch.iter().zip([&a, &b, &a]) {
            let solo = agent.borrow_mut().act(&r.state);
            assert_eq!(solo, r.action, "flow {}", r.flow);
        }
        assert_eq!(server.batches(), 2);
        assert_eq!(server.max_batch(), 2);
    }

    #[test]
    #[should_panic(expected = "eval-mode agents")]
    fn training_mode_agent_is_rejected() {
        let mut rng = DetRng::new(3);
        let agent = Rc::new(RefCell::new(PpoAgent::new(PpoConfig::new(4, 2), &mut rng)));
        PolicyServer::new().register(0, &agent);
    }

    #[test]
    #[should_panic(expected = "without registering")]
    fn unregistered_flow_is_rejected() {
        let agent = eval_agent(4);
        let mut server = PolicyServer::new();
        server.register(0, &agent);
        let mut batch = vec![req(0, vec![0.0; 4]), req(7, vec![0.0; 4])];
        server.evaluate(&mut batch);
    }

    /// Pre-fix poisoning shape, pinned at the kernel layer: a NaN row
    /// fed into the shared batched forward produces a NaN action row.
    /// Before quarantine existed, a single flow submitting a non-finite
    /// state was composed into the group matrix exactly like this — the
    /// shared pass happily served it garbage (and a wrong-dimension
    /// state aborted the whole batch). Quarantine keeps such rows out of
    /// the composition entirely.
    #[test]
    fn nan_state_poisons_shared_forward_without_quarantine() {
        let agent = eval_agent(21);
        let mut obs = Matrix::default();
        obs.reshape(2, 4);
        obs.as_mut_slice()[..4].copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
        obs.as_mut_slice()[4..].copy_from_slice(&[f64::NAN, 0.2, 0.3, 0.4]);
        let mut acts = Matrix::default();
        let mut scratch = BatchScratch::default();
        agent.borrow().act_eval_batch(&obs, &mut acts, &mut scratch);
        let a = acts.as_slice();
        let dim = acts.cols();
        assert!(
            a[..dim].iter().all(|x| x.is_finite()),
            "clean row stays clean"
        );
        assert!(a[dim..].iter().any(|x| x.is_nan()), "NaN row served NaN");
    }

    #[test]
    fn quarantine_isolates_invalid_state_from_the_group() {
        let agent = eval_agent(11);
        let build_server = |agent: &Rc<RefCell<PpoAgent>>| {
            let mut s = PolicyServer::new();
            for flow in 0..4u32 {
                s.register(flow, agent);
            }
            s
        };
        let state = |f: u32| -> Vec<f64> { (0..4).map(|i| f as f64 * 0.2 + i as f64).collect() };
        // Clean run: all four flows valid.
        let mut clean: Vec<PolicyRequest> = (0..4u32).map(|f| req(f, state(f))).collect();
        build_server(&agent).evaluate(&mut clean);
        // Dirty run: flow 1 submits NaN, flow 2 submits a wrong-dim state.
        let mut dirty = vec![
            req(0, state(0)),
            req(1, vec![f64::NAN; 4]),
            req(2, vec![0.5; 3]),
            req(3, state(3)),
        ];
        let mut server = build_server(&agent);
        server.evaluate(&mut dirty);
        assert!(dirty[1].quarantined && dirty[1].action.is_empty());
        assert!(dirty[2].quarantined && dirty[2].action.is_empty());
        assert_eq!(server.quarantines(), 2);
        // The healthy members are bitwise-identical to the clean run.
        for i in [0usize, 3] {
            assert!(!dirty[i].quarantined);
            assert_eq!(clean[i].action.len(), dirty[i].action.len());
            for (a, b) in clean[i].action.iter().zip(&dirty[i].action) {
                assert_eq!(a.to_bits(), b.to_bits(), "flow {i}");
            }
        }
    }

    #[test]
    fn response_drop_clears_actions_inside_window_only() {
        let agent = eval_agent(5);
        let plan = PolicyFaultPlan::new(77).with(
            Instant::from_secs(1),
            Instant::from_secs(2),
            PolicyFaultKind::ResponseDrop { probability: 1.0 },
        );
        let mut server = PolicyServer::new().with_faults(plan);
        server.register(0, &agent);
        let mut before = vec![req_at(0, Instant::ZERO, vec![0.1; 4])];
        server.evaluate(&mut before);
        assert!(!before[0].action.is_empty() && before[0].fault.is_none());
        let mut inside = vec![req_at(0, Instant::from_millis(1500), vec![0.1; 4])];
        server.evaluate(&mut inside);
        assert!(inside[0].action.is_empty());
        assert_eq!(inside[0].fault, Some("response-drop"));
        let mut after = vec![req_at(0, Instant::from_secs(2), vec![0.1; 4])];
        server.evaluate(&mut after);
        assert!(!after[0].action.is_empty() && after[0].fault.is_none());
        assert_eq!(server.fault_report().dropped_responses, 1);
    }

    #[test]
    fn nan_and_wrong_dim_faults_corrupt_served_actions() {
        let agent = eval_agent(6);
        let w = Duration::from_secs(1);
        let plan = PolicyFaultPlan::new(3)
            .with(
                Instant::ZERO,
                Instant::ZERO + w,
                PolicyFaultKind::NanAction { probability: 1.0 },
            )
            .with(
                Instant::from_secs(5),
                Instant::from_secs(5) + w,
                PolicyFaultKind::WrongDim { probability: 1.0 },
            );
        let mut server = PolicyServer::new().with_faults(plan);
        server.register(0, &agent);
        let mut nan = vec![req_at(0, Instant::ZERO, vec![0.1; 4])];
        server.evaluate(&mut nan);
        assert!(nan[0].action.iter().any(|x| !x.is_finite()));
        assert_eq!(nan[0].fault, Some("nan-action"));
        let mut wrong = vec![req_at(0, Instant::from_secs(5), vec![0.1; 4])];
        server.evaluate(&mut wrong);
        assert_eq!(wrong[0].fault, Some("wrong-dim"));
        assert_eq!(wrong[0].action.len(), 3); // act_dim 2 + spurious element
        let r = server.fault_report();
        assert_eq!((r.nan_actions, r.wrong_dim_actions), (1, 1));
    }

    #[test]
    fn stuck_window_replays_first_in_window_action() {
        let agent = eval_agent(7);
        let plan = PolicyFaultPlan::new(1).with(
            Instant::ZERO,
            Instant::from_secs(10),
            PolicyFaultKind::StuckAction,
        );
        let mut server = PolicyServer::new().with_faults(plan);
        server.register(0, &agent);
        let mut first = vec![req_at(0, Instant::ZERO, vec![0.1; 4])];
        server.evaluate(&mut first);
        assert!(first[0].fault.is_none(), "first in-window action is live");
        let live = first[0].action.clone();
        // Different state later in the window: the stale action returns.
        let mut later = vec![req_at(0, Instant::from_secs(4), vec![0.9; 4])];
        server.evaluate(&mut later);
        assert_eq!(later[0].fault, Some("stuck-action"));
        assert_eq!(later[0].action, live);
        // Outside the window the cache clears and decisions go live again.
        let mut out = vec![req_at(0, Instant::from_secs(11), vec![0.9; 4])];
        server.evaluate(&mut out);
        assert!(out[0].fault.is_none());
        assert_ne!(out[0].action, live);
        assert_eq!(server.fault_report().stuck_actions, 1);
    }

    #[test]
    fn weight_corruption_window_poisons_then_rolls_back() {
        let agent = eval_agent(8);
        let plan = PolicyFaultPlan::new(2).with(
            Instant::from_secs(1),
            Instant::from_secs(2),
            PolicyFaultKind::WeightCorrupt,
        );
        let mut server = PolicyServer::new().with_faults(plan);
        server.register(0, &agent);
        let mut before = vec![req_at(0, Instant::ZERO, vec![0.1; 4])];
        server.evaluate(&mut before);
        let healthy = before[0].action.clone();
        let mut inside = vec![req_at(0, Instant::from_millis(1500), vec![0.1; 4])];
        server.evaluate(&mut inside);
        assert!(inside[0].action.iter().any(|x| x.is_nan()));
        assert_eq!(inside[0].fault, Some("weight-corrupt"));
        // Past the window: the snapshot is restored and actions recover
        // bitwise.
        let mut after = vec![req_at(0, Instant::from_secs(3), vec![0.1; 4])];
        server.evaluate(&mut after);
        assert!(after[0].fault.is_none());
        assert_eq!(after[0].action, healthy);
        let r = server.fault_report();
        assert_eq!((r.weight_corruptions, r.weight_restores), (1, 1));
        assert!(agent.borrow().weights_valid(WEIGHT_NORM_BOUND));
    }

    #[test]
    fn fault_injection_is_deterministic_under_the_plan_seed() {
        let run = |seed: u64| -> Vec<Option<&'static str>> {
            let agent = eval_agent(9);
            let plan = PolicyFaultPlan::new(seed).with(
                Instant::ZERO,
                Instant::from_secs(60),
                PolicyFaultKind::ResponseDrop { probability: 0.5 },
            );
            let mut server = PolicyServer::new().with_faults(plan);
            server.register(0, &agent);
            (0..64)
                .map(|t| {
                    let mut b = vec![req_at(0, Instant::from_millis(t * 100), vec![0.1; 4])];
                    server.evaluate(&mut b);
                    b[0].fault
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
