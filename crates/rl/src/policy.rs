//! The shared policy server: one inference service for many flows.
//!
//! Per-flow serving runs one small matrix-vector product per decision —
//! the shape ROADMAP item 2 says a millions-of-users deployment cannot
//! afford. [`PolicyServer`] instead lets every flow in a decision tick
//! submit its state vector, composes the submissions into one matrix,
//! and runs a single matrix-matrix forward per layer
//! ([`PpoAgent::act_eval_batch`]), fanning the action rows back out.
//!
//! ## Determinism
//!
//! * **Composition order.** Requests arrive sorted by flow id and are
//!   gathered per agent group in that order (the index-ordered claim
//!   discipline of `sweep.rs`), so batch composition is a pure function
//!   of which flows ticked — never of arrival order or host timing.
//! * **Bit identity.** Registered agents must be in eval mode (checked
//!   at registration): eval actions are the actor mean, computed without
//!   RNG draws or agent mutation, and the batched kernel accumulates
//!   each output element in exactly the per-flow order — so every flow
//!   receives the bit-identical action it would have computed alone.
//! * **No threads.** Evaluation is synchronous inside the simulator's
//!   event loop; the server is plain single-threaded state.

use crate::ppo::PpoAgent;
use libra_nn::{BatchScratch, Matrix};
use libra_types::{PolicyRequest, PolicyService};
use std::cell::RefCell;
use std::rc::Rc;

/// Flows sharing one eval-mode agent (typically all flows of a sweep arm
/// share weights; distinct CCAs land in distinct groups).
struct Group {
    agent: Rc<RefCell<PpoAgent>>,
    obs_dim: usize,
}

/// A synchronous, deterministic batched-inference service over one or
/// more shared eval-mode [`PpoAgent`]s. See the module docs for the
/// determinism contract.
#[derive(Default)]
pub struct PolicyServer {
    groups: Vec<Group>,
    /// `flow id → group index`, dense over registered flow ids.
    flow_group: Vec<Option<usize>>,
    /// Reused batch-composition buffers.
    obs: Matrix,
    acts: Matrix,
    scratch: BatchScratch,
    rows: Vec<usize>,
    // Serving statistics (deterministic: counts, not timings).
    batches: u64,
    rows_served: u64,
    max_batch: usize,
}

impl PolicyServer {
    /// An empty server; flows join via [`register`](Self::register).
    pub fn new() -> Self {
        PolicyServer::default()
    }

    /// Register `flow` to be served by `agent`. Agents are deduplicated
    /// by identity (`Rc::ptr_eq`), so a thousand flows sharing one
    /// weight set form a single batch group. The agent must already be
    /// in eval mode — training-mode action selection draws RNG and
    /// mutates the agent, which would make results depend on batch
    /// composition.
    pub fn register(&mut self, flow: u32, agent: &Rc<RefCell<PpoAgent>>) {
        assert!(
            agent.borrow().is_eval(),
            "policy server requires eval-mode agents (flow {flow})"
        );
        let group = match self.groups.iter().position(|g| Rc::ptr_eq(&g.agent, agent)) {
            Some(g) => g,
            None => {
                let obs_dim = agent.borrow().config().obs_dim;
                self.groups.push(Group {
                    agent: Rc::clone(agent),
                    obs_dim,
                });
                self.groups.len() - 1
            }
        };
        let idx = flow as usize;
        if idx >= self.flow_group.len() {
            self.flow_group.resize(idx + 1, None);
        }
        self.flow_group[idx] = Some(group);
    }

    /// Number of distinct agent groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Batched evaluations run so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total flow requests served.
    pub fn rows_served(&self) -> u64 {
        self.rows_served
    }

    /// Largest single-group batch served (the batching win's witness).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    fn group_of(&self, flow: u32) -> usize {
        self.flow_group
            .get(flow as usize)
            .copied()
            .flatten()
            .expect("flow submitted a policy request without registering")
    }
}

impl PolicyService for PolicyServer {
    fn evaluate(&mut self, batch: &mut [PolicyRequest]) {
        debug_assert!(
            batch.windows(2).all(|w| w[0].flow < w[1].flow),
            "policy batch must be sorted by flow id"
        );
        // Walk groups in index order; within a group, members keep the
        // batch slice's (flow-id) order — deterministic composition.
        for g in 0..self.groups.len() {
            self.rows.clear();
            for (i, req) in batch.iter().enumerate() {
                if self.group_of(req.flow) == g {
                    self.rows.push(i);
                }
            }
            if self.rows.is_empty() {
                continue;
            }
            let obs_dim = self.groups[g].obs_dim;
            self.obs.reshape(self.rows.len(), obs_dim);
            {
                let flat = self.obs.as_mut_slice();
                for (k, &i) in self.rows.iter().enumerate() {
                    let state = &batch[i].state;
                    assert_eq!(state.len(), obs_dim, "state/obs_dim mismatch");
                    flat[k * obs_dim..(k + 1) * obs_dim].copy_from_slice(state);
                }
            }
            self.groups[g].agent.borrow().act_eval_batch(
                &self.obs,
                &mut self.acts,
                &mut self.scratch,
            );
            let act_dim = self.acts.cols();
            let acts = self.acts.as_slice();
            for (k, &i) in self.rows.iter().enumerate() {
                let req = &mut batch[i];
                req.action.clear();
                req.action
                    .extend_from_slice(&acts[k * act_dim..(k + 1) * act_dim]);
            }
            self.batches += 1;
            self.rows_served += self.rows.len() as u64;
            self.max_batch = self.max_batch.max(self.rows.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PpoConfig;
    use libra_types::DetRng;

    fn eval_agent(seed: u64) -> Rc<RefCell<PpoAgent>> {
        let mut rng = DetRng::new(seed);
        let mut agent = PpoAgent::new(PpoConfig::new(4, 2), &mut rng);
        agent.set_eval(true);
        Rc::new(RefCell::new(agent))
    }

    fn req(flow: u32, state: Vec<f64>) -> PolicyRequest {
        PolicyRequest {
            flow,
            state,
            action: Vec::new(),
        }
    }

    #[test]
    fn batched_actions_match_per_flow_eval_act_bitwise() {
        let agent = eval_agent(11);
        let mut server = PolicyServer::new();
        for flow in 0..5u32 {
            server.register(flow, &agent);
        }
        assert_eq!(server.group_count(), 1);
        let mut batch: Vec<PolicyRequest> = (0..5u32)
            .map(|f| {
                req(
                    f,
                    (0..4).map(|i| (f as f64) * 0.3 - i as f64 * 0.7).collect(),
                )
            })
            .collect();
        server.evaluate(&mut batch);
        for r in &batch {
            let solo = agent.borrow_mut().act(&r.state);
            assert_eq!(solo.len(), r.action.len());
            for (a, b) in solo.iter().zip(&r.action) {
                assert_eq!(a.to_bits(), b.to_bits(), "flow {}", r.flow);
            }
        }
        assert_eq!(server.batches(), 1);
        assert_eq!(server.rows_served(), 5);
        assert_eq!(server.max_batch(), 5);
    }

    #[test]
    fn distinct_agents_form_distinct_groups() {
        let a = eval_agent(1);
        let b = eval_agent(2);
        let mut server = PolicyServer::new();
        server.register(0, &a);
        server.register(1, &b);
        server.register(2, &a);
        assert_eq!(server.group_count(), 2);
        let mut batch = vec![
            req(0, vec![0.1; 4]),
            req(1, vec![0.2; 4]),
            req(2, vec![0.3; 4]),
        ];
        server.evaluate(&mut batch);
        // Every request got an action from its own group's agent.
        for (r, agent) in batch.iter().zip([&a, &b, &a]) {
            let solo = agent.borrow_mut().act(&r.state);
            assert_eq!(solo, r.action, "flow {}", r.flow);
        }
        assert_eq!(server.batches(), 2);
        assert_eq!(server.max_batch(), 2);
    }

    #[test]
    #[should_panic(expected = "eval-mode agents")]
    fn training_mode_agent_is_rejected() {
        let mut rng = DetRng::new(3);
        let agent = Rc::new(RefCell::new(PpoAgent::new(PpoConfig::new(4, 2), &mut rng)));
        PolicyServer::new().register(0, &agent);
    }

    #[test]
    #[should_panic(expected = "without registering")]
    fn unregistered_flow_is_rejected() {
        let agent = eval_agent(4);
        let mut server = PolicyServer::new();
        server.register(0, &agent);
        let mut batch = vec![req(0, vec![0.0; 4]), req(7, vec![0.0; 4])];
        server.evaluate(&mut batch);
    }
}
