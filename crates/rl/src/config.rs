//! PPO hyper-parameters.

use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`crate::PpoAgent`]. Defaults follow the
/// stable-baselines PPO configuration the paper trains with, with network
/// sizes scaled down for simulation speed (see DESIGN.md "Substitutions";
/// set `hidden = [512, 512]` to match the paper's geometry exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Observation dimension.
    pub obs_dim: usize,
    /// Action dimension.
    pub act_dim: usize,
    /// Hidden layer widths for both actor and critic.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE-λ.
    pub lambda: f64,
    /// PPO clip range ε.
    pub clip: f64,
    /// Learning rate (actor and critic).
    pub lr: f64,
    /// Gradient-ascent epochs per update.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Entropy bonus coefficient.
    pub ent_coef: f64,
    /// Value-loss coefficient.
    pub vf_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f64,
    /// Initial policy log standard deviation.
    pub init_log_std: f64,
}

impl PpoConfig {
    /// Defaults for the given observation/action dimensions.
    pub fn new(obs_dim: usize, act_dim: usize) -> Self {
        PpoConfig {
            obs_dim,
            act_dim,
            hidden: vec![64, 64],
            gamma: 0.99,
            lambda: 0.95,
            clip: 0.2,
            lr: 3e-4,
            epochs: 6,
            minibatch: 64,
            ent_coef: 0.01,
            vf_coef: 0.5,
            max_grad_norm: 0.5,
            init_log_std: -0.5,
        }
    }

    /// The paper's full-size geometry (two 512-unit layers).
    pub fn paper_sized(obs_dim: usize, act_dim: usize) -> Self {
        PpoConfig {
            hidden: vec![512, 512],
            ..PpoConfig::new(obs_dim, act_dim)
        }
    }

    /// Actor layer sizes (input → hidden… → action means).
    pub fn actor_sizes(&self) -> Vec<usize> {
        let mut v = vec![self.obs_dim];
        v.extend(&self.hidden);
        v.push(self.act_dim);
        v
    }

    /// Critic layer sizes (input → hidden… → scalar value).
    pub fn critic_sizes(&self) -> Vec<usize> {
        let mut v = vec![self.obs_dim];
        v.extend(&self.hidden);
        v.push(1);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_include_endpoints() {
        let c = PpoConfig::new(32, 1);
        assert_eq!(c.actor_sizes(), vec![32, 64, 64, 1]);
        assert_eq!(c.critic_sizes(), vec![32, 64, 64, 1]);
    }

    #[test]
    fn paper_sized_uses_512() {
        let c = PpoConfig::paper_sized(40, 1);
        assert_eq!(c.hidden, vec![512, 512]);
    }

    #[test]
    fn serde_round_trip() {
        let c = PpoConfig::new(8, 2);
        let s = serde_json::to_string(&c).unwrap();
        let back: PpoConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
