//! Rollout storage and generalized advantage estimation (GAE-λ).

/// One transition of an on-policy rollout.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation at decision time.
    pub obs: Vec<f64>,
    /// Action taken.
    pub action: Vec<f64>,
    /// Log-probability of the action under the behaviour policy.
    pub logp: f64,
    /// Critic value estimate at decision time.
    pub value: f64,
    /// Reward received *after* this action.
    pub reward: f64,
    /// Whether the episode ended after this transition.
    pub done: bool,
}

/// Post-GAE training sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Observation.
    pub obs: Vec<f64>,
    /// Action.
    pub action: Vec<f64>,
    /// Behaviour log-probability.
    pub logp_old: f64,
    /// Normalized advantage.
    pub advantage: f64,
    /// Discounted return target for the critic.
    pub ret: f64,
}

/// An on-policy rollout buffer.
#[derive(Debug, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

impl RolloutBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        RolloutBuffer::default()
    }

    /// Append one transition.
    pub fn push(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// Stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Discard everything.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Sum of rewards (for logging).
    pub fn total_reward(&self) -> f64 {
        self.transitions.iter().map(|t| t.reward).sum()
    }

    /// Compute GAE-λ advantages and returns, consuming the buffer into
    /// training samples. Advantages are normalized to zero mean / unit
    /// variance (when there is any variance).
    ///
    /// `last_value` bootstraps the value after the final transition when
    /// the rollout was truncated mid-episode (`done == false` at the end).
    pub fn finish(&mut self, gamma: f64, lambda: f64, last_value: f64) -> Vec<Sample> {
        let n = self.transitions.len();
        if n == 0 {
            return Vec::new();
        }
        let mut advantages = vec![0.0; n];
        let mut gae = 0.0;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let next_value = if t.done {
                0.0
            } else if i + 1 < n {
                self.transitions[i + 1].value
            } else {
                last_value
            };
            let not_done = if t.done { 0.0 } else { 1.0 };
            let delta = t.reward + gamma * next_value * not_done - t.value;
            gae = delta + gamma * lambda * not_done * gae;
            advantages[i] = gae;
        }
        // Normalize advantages.
        let mean = advantages.iter().sum::<f64>() / n as f64;
        let var = advantages.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-8);
        let samples = self
            .transitions
            .drain(..)
            .zip(advantages)
            .map(|(t, adv)| Sample {
                ret: adv + t.value, // return target = advantage + value
                obs: t.obs,
                action: t.action,
                logp_old: t.logp,
                advantage: (adv - mean) / std,
            })
            .collect();
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(reward: f64, value: f64, done: bool) -> Transition {
        Transition {
            obs: vec![0.0],
            action: vec![0.0],
            logp: 0.0,
            value,
            reward,
            done,
        }
    }

    #[test]
    fn single_terminal_transition() {
        let mut b = RolloutBuffer::new();
        b.push(t(1.0, 0.5, true));
        let s = b.finish(0.99, 0.95, 0.0);
        assert_eq!(s.len(), 1);
        // δ = r − V = 0.5; advantage normalizes to 0 (single sample).
        assert!((s[0].advantage - 0.0).abs() < 1e-9);
        assert!((s[0].ret - 1.0).abs() < 1e-9); // raw adv 0.5 + value 0.5
        assert!(b.is_empty());
    }

    #[test]
    fn gae_matches_hand_computation() {
        // Two steps, γ = λ = 1 for easy math, all values zero:
        // raw advantages = reward-to-go: [3, 2].
        let mut b = RolloutBuffer::new();
        b.push(t(1.0, 0.0, false));
        b.push(t(2.0, 0.0, true));
        let s = b.finish(1.0, 1.0, 0.0);
        let raw: Vec<f64> = s.iter().map(|x| x.ret).collect(); // ret = raw adv here
        assert!((raw[0] - 3.0).abs() < 1e-9);
        assert!((raw[1] - 2.0).abs() < 1e-9);
        // Normalized advantages are ±1 (σ over two samples 0.5 apart… check sign only).
        assert!(s[0].advantage > 0.0 && s[1].advantage < 0.0);
    }

    #[test]
    fn done_blocks_bootstrap() {
        // Episode boundary between the two transitions: the first episode's
        // advantage must not see the second's value/reward.
        let mut b = RolloutBuffer::new();
        b.push(t(1.0, 0.0, true));
        b.push(t(100.0, 0.0, true));
        let s = b.finish(0.99, 0.95, 0.0);
        assert!((s[0].ret - 1.0).abs() < 1e-9);
        assert!((s[1].ret - 100.0).abs() < 1e-9);
    }

    #[test]
    fn truncated_rollout_bootstraps_last_value() {
        let mut b = RolloutBuffer::new();
        b.push(t(0.0, 0.0, false));
        let s = b.finish(0.5, 1.0, 10.0);
        // δ = 0 + 0.5·10 − 0 = 5 → return 5.
        assert!((s[0].ret - 5.0).abs() < 1e-9);
    }

    #[test]
    fn total_reward_sums() {
        let mut b = RolloutBuffer::new();
        b.push(t(1.5, 0.0, false));
        b.push(t(-0.5, 0.0, true));
        assert!((b.total_reward() - 1.0).abs() < 1e-12);
        b.clear();
        assert_eq!(b.len(), 0);
    }
}
