// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-rl`: Proximal Policy Optimization over the `libra-nn` substrate.
//!
//! This crate provides the reinforcement-learning machinery of the paper's
//! DRL component: a diagonal-Gaussian actor-critic trained with PPO
//! (clipped surrogate, GAE-λ, entropy bonus, Adam, gradient clipping). It
//! knows nothing about congestion control — `libra-learned` builds the
//! state/action/reward formulations of Sec. 4.2 on top of it.

pub mod buffer;
pub mod config;
pub mod policy;
pub mod ppo;

pub use buffer::{RolloutBuffer, Sample, Transition};
pub use config::PpoConfig;
pub use policy::PolicyServer;
pub use ppo::{PpoAgent, PpoWeights, UpdateStats, WEIGHT_NORM_BOUND};
