//! Proximal Policy Optimization with a diagonal-Gaussian policy —
//! the learning algorithm of the paper's DRL component (Alg. 2 calls it
//! as `PPO(R(t), S_t)`).
//!
//! The actor MLP outputs action means; a state-independent learned
//! `log_std` vector provides exploration noise. The critic MLP estimates
//! state values for GAE. The update maximizes the clipped surrogate with
//! an entropy bonus and a squared-error value loss, using Adam and global
//! gradient-norm clipping — the stable-baselines recipe.

use crate::buffer::{RolloutBuffer, Sample, Transition};
use crate::config::PpoConfig;
use libra_nn::{Activation, Adam, BatchScratch, Matrix, Mlp};
use libra_types::DetRng;
use serde::{Deserialize, Serialize};

const LOG_2PI: f64 = 1.837877066409345; // ln(2π)

/// Statistics from one PPO update (for reward-curve logging).
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateStats {
    /// Mean clipped-surrogate loss (lower is better for the optimizer).
    pub policy_loss: f64,
    /// Mean value loss.
    pub value_loss: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Fraction of samples whose ratio was clipped.
    pub clip_fraction: f64,
    /// Samples consumed.
    pub samples: usize,
}

/// Default L2-norm bound above which a weight set is treated as corrupt.
/// A healthy 2×32 Xavier-initialized actor-critic pair sits around norm
/// 10–30 and trained networks stay well under 10³; anything near 10⁶ is
/// a runaway update, not a policy.
pub const WEIGHT_NORM_BOUND: f64 = 1e6;

/// Serializable snapshot of an agent's learnable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpoWeights {
    /// Configuration the weights were trained under.
    pub config: PpoConfig,
    actor: Mlp,
    critic: Mlp,
    log_std: Vec<f64>,
}

impl PpoWeights {
    /// Global L2 norm over every learnable parameter.
    pub fn l2_norm(&self) -> f64 {
        let a = self.actor.param_l2_norm();
        let c = self.critic.param_l2_norm();
        let s: f64 = self.log_std.iter().map(|x| x * x).sum();
        (a * a + c * c + s).sqrt()
    }

    /// True when every parameter is finite and the global L2 norm stays
    /// under `norm_bound` — the corruption check run on load and after
    /// every PPO update.
    pub fn is_valid(&self, norm_bound: f64) -> bool {
        self.actor.params_finite()
            && self.critic.params_finite()
            && self.log_std.iter().all(|x| x.is_finite())
            && self.l2_norm() <= norm_bound
    }
}

/// A PPO actor-critic agent.
pub struct PpoAgent {
    config: PpoConfig,
    actor: Mlp,
    critic: Mlp,
    log_std: Vec<f64>,
    actor_opt: Adam,
    critic_opt: Adam,
    log_std_m: Vec<f64>,
    log_std_v: Vec<f64>,
    log_std_t: u64,
    buffer: RolloutBuffer,
    rng: DetRng,
    eval_mode: bool,
    // Pending transition: filled by `act`, completed by the next reward.
    pending: Option<(Vec<f64>, Vec<f64>, f64, f64)>, // (obs, action, logp, value)
    // Last weight set that passed validation; restored on corruption.
    last_good: Option<PpoWeights>,
    weight_restores: u64,
}

impl PpoAgent {
    /// Fresh agent with Xavier-initialized networks.
    pub fn new(config: PpoConfig, rng: &mut DetRng) -> Self {
        let mut net_rng = rng.fork("ppo-nets");
        let actor = Mlp::new(&config.actor_sizes(), Activation::Tanh, &mut net_rng);
        let critic = Mlp::new(&config.critic_sizes(), Activation::Tanh, &mut net_rng);
        let actor_opt = Adam::new(&actor, config.lr);
        let critic_opt = Adam::new(&critic, config.lr);
        let act_dim = config.act_dim;
        let init_log_std = config.init_log_std;
        PpoAgent {
            actor,
            critic,
            log_std: vec![init_log_std; act_dim],
            actor_opt,
            critic_opt,
            log_std_m: vec![0.0; act_dim],
            log_std_v: vec![0.0; act_dim],
            log_std_t: 0,
            buffer: RolloutBuffer::new(),
            rng: rng.fork("ppo-explore"),
            eval_mode: false,
            pending: None,
            last_good: None,
            weight_restores: 0,
            config,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Total learnable parameters (memory-overhead proxy).
    pub fn param_count(&self) -> usize {
        self.actor.param_count() + self.critic.param_count() + self.log_std.len()
    }

    /// Switch between exploration (training) and deterministic (eval)
    /// action selection.
    pub fn set_eval(&mut self, eval: bool) {
        self.eval_mode = eval;
    }

    /// True when in deterministic mode.
    pub fn is_eval(&self) -> bool {
        self.eval_mode
    }

    fn logp_and_entropy(&self, mean: &[f64], action: &[f64]) -> (f64, f64) {
        let mut logp = 0.0;
        let mut ent = 0.0;
        for i in 0..mean.len() {
            let std = self.log_std[i].exp();
            let z = (action[i] - mean[i]) / std;
            logp += -0.5 * z * z - self.log_std[i] - 0.5 * LOG_2PI;
            ent += self.log_std[i] + 0.5 * (LOG_2PI + 1.0);
        }
        (logp, ent)
    }

    /// Deliver the reward earned since the previous action. Must be called
    /// between [`act`](Self::act) calls while training.
    pub fn give_reward(&mut self, reward: f64, done: bool) {
        if self.eval_mode {
            self.pending = None;
            return;
        }
        if let Some((obs, action, logp, value)) = self.pending.take() {
            self.buffer.push(Transition {
                obs,
                action,
                logp,
                value,
                reward,
                done,
            });
        }
    }

    /// Select an action for `obs`. In training mode the action is sampled
    /// and remembered; the following [`give_reward`](Self::give_reward)
    /// completes the transition.
    pub fn act(&mut self, obs: &[f64]) -> Vec<f64> {
        debug_assert_eq!(obs.len(), self.config.obs_dim, "obs dim mismatch");
        if self.eval_mode {
            return self.actor.forward(obs);
        }
        // Training rollouts go through `forward_cached` — the same libm
        // arithmetic backprop differentiates — so trained weights stay a
        // pure function of the training config, independent of the
        // fast-activation inference path (`forward`/`forward_into`).
        let mean = self.actor.forward_cached(obs).output().to_vec();
        let mut action = Vec::with_capacity(mean.len());
        for (i, &m) in mean.iter().enumerate() {
            let std = self.log_std[i].exp();
            action.push(m + std * self.rng.normal());
        }
        let (logp, _) = self.logp_and_entropy(&mean, &action);
        let value = self.critic.forward_cached(obs).output()[0];
        // An un-rewarded pending transition (e.g. ACK starvation skipped a
        // reward) is completed with zero reward rather than dropped.
        if self.pending.is_some() {
            self.give_reward(0.0, false);
        }
        self.pending = Some((obs.to_vec(), action.clone(), logp, value));
        action
    }

    /// Deterministic eval action into caller-owned buffers: the actor's
    /// mean for `obs`, computed through `&self` — no RNG draw, no pending
    /// transition, no mutation. Element-for-element bit-identical to
    /// eval-mode [`act`](Self::act) (both are exactly
    /// `actor.forward(obs)`), but allocation-free in steady state.
    pub fn act_eval(&self, obs: &[f64], out: &mut Vec<f64>, scratch: &mut Vec<f64>) {
        debug_assert_eq!(obs.len(), self.config.obs_dim, "obs dim mismatch");
        self.actor.forward_into(obs, out, scratch);
    }

    /// Batched deterministic eval: one observation per row of `obs`, one
    /// action mean per row of `out`. Each row is bit-identical to
    /// [`act_eval`](Self::act_eval) on that row (see
    /// [`libra_nn::Matrix::matmat`] for the accumulation-order contract)
    /// — the kernel behind the shared policy server.
    pub fn act_eval_batch(&self, obs: &Matrix, out: &mut Matrix, scratch: &mut BatchScratch) {
        debug_assert_eq!(obs.cols(), self.config.obs_dim, "obs dim mismatch");
        self.actor.forward_batch_into(obs, out, scratch);
    }

    /// Transitions currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Sum of buffered rewards (reward-curve logging).
    pub fn buffered_reward(&self) -> f64 {
        self.buffer.total_reward()
    }

    /// Run a PPO update over everything in the buffer, then clear it.
    /// `last_obs` bootstraps the value of a truncated rollout.
    pub fn update(&mut self, last_obs: Option<&[f64]>) -> UpdateStats {
        self.pending = None;
        if self.buffer.is_empty() {
            return UpdateStats::default();
        }
        // Guardrail: remember the pre-update weights so a corrupting
        // update (NaN rewards, exploding gradients) can be rolled back.
        if self.weights_valid(WEIGHT_NORM_BOUND) {
            self.snapshot_good();
        }
        // Bootstrap value through the training-path forward (libm
        // activations), matching `act`'s value estimates.
        let last_value = last_obs.map_or(0.0, |o| self.critic.forward_cached(o).output()[0]);
        let mut samples = self
            .buffer
            .finish(self.config.gamma, self.config.lambda, last_value);
        let n = samples.len();
        let mut stats = UpdateStats {
            samples: n,
            ..Default::default()
        };
        let mut batches = 0usize;
        for _ in 0..self.config.epochs {
            self.rng.shuffle(&mut samples);
            let mut i = 0;
            while i < n {
                let j = (i + self.config.minibatch).min(n);
                let s = self.minibatch_step(&samples[i..j]);
                stats.policy_loss += s.policy_loss;
                stats.value_loss += s.value_loss;
                stats.entropy += s.entropy;
                stats.clip_fraction += s.clip_fraction;
                batches += 1;
                i = j;
            }
        }
        if batches > 0 {
            let b = batches as f64;
            stats.policy_loss /= b;
            stats.value_loss /= b;
            stats.entropy /= b;
            stats.clip_fraction /= b;
        }
        // Post-update validation: a single poisoned minibatch must not
        // leave a NaN network deployed.
        self.validate_or_restore(WEIGHT_NORM_BOUND);
        stats
    }

    fn minibatch_step(&mut self, batch: &[Sample]) -> UpdateStats {
        let m = batch.len() as f64;
        let mut actor_grad = self.actor.zero_grad();
        let mut critic_grad = self.critic.zero_grad();
        let mut log_std_grad = vec![0.0; self.config.act_dim];
        let mut stats = UpdateStats {
            samples: batch.len(),
            ..Default::default()
        };
        for s in batch {
            // ---- policy ----
            let cache = self.actor.forward_cached(&s.obs);
            let mean = cache.output().to_vec();
            let (logp, entropy) = self.logp_and_entropy(&mean, &s.action);
            let ratio = (logp - s.logp_old).exp();
            let clipped = ratio.clamp(1.0 - self.config.clip, 1.0 + self.config.clip);
            let surr1 = ratio * s.advantage;
            let surr2 = clipped * s.advantage;
            let use_unclipped = surr1 <= surr2;
            stats.policy_loss += -surr1.min(surr2) / m;
            stats.entropy += entropy / m;
            if (ratio - clipped).abs() > 1e-12 {
                stats.clip_fraction += 1.0 / m;
            }
            // d(-min(surr))/d(logp): only flows when the unclipped branch
            // is active (or the clipped one equals it).
            let dlogp = if use_unclipped {
                -ratio * s.advantage / m
            } else {
                0.0
            };
            if dlogp != 0.0 {
                // d logp / d mean_i = (a_i − μ_i)/σ_i².
                let mut dmean = Vec::with_capacity(mean.len());
                for i in 0..mean.len() {
                    let var = (2.0 * self.log_std[i]).exp();
                    dmean.push(dlogp * (s.action[i] - mean[i]) / var);
                    // d logp / d logσ_i = z² − 1.
                    let z2 = (s.action[i] - mean[i]).powi(2) / var;
                    log_std_grad[i] += dlogp * (z2 - 1.0);
                }
                self.actor.backward(&cache, &dmean, &mut actor_grad);
            }
            // Entropy bonus: d(−c·H)/d logσ = −c (mean-field, per sample).
            for g in log_std_grad.iter_mut() {
                *g += -self.config.ent_coef / m;
            }
            // ---- value ----
            let vcache = self.critic.forward_cached(&s.obs);
            let v = vcache.output()[0];
            let err = v - s.ret;
            stats.value_loss += err * err / m;
            self.critic.backward(
                &vcache,
                &[2.0 * self.config.vf_coef * err / m],
                &mut critic_grad,
            );
        }
        // Gradient clipping (actor and critic separately).
        for (net_grad, limit) in [
            (&mut actor_grad, self.config.max_grad_norm),
            (&mut critic_grad, self.config.max_grad_norm),
        ] {
            let norm = net_grad.l2_norm();
            if norm > limit {
                net_grad.scale(limit / norm);
            }
        }
        self.actor_opt.step(&mut self.actor, &actor_grad);
        self.critic_opt.step(&mut self.critic, &critic_grad);
        // Adam for the log_std vector (hand-rolled; 1-2 scalars).
        self.log_std_t += 1;
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1f(b1, self.log_std_t);
        let bc2 = 1.0 - b1f(b2, self.log_std_t);
        for (i, &g) in log_std_grad.iter().enumerate() {
            self.log_std_m[i] = b1 * self.log_std_m[i] + (1.0 - b1) * g;
            self.log_std_v[i] = b2 * self.log_std_v[i] + (1.0 - b2) * g.powi(2);
            let mhat = self.log_std_m[i] / bc1;
            let vhat = self.log_std_v[i] / bc2;
            self.log_std[i] -= self.config.lr * mhat / (vhat.sqrt() + eps);
            // Keep exploration noise sane.
            self.log_std[i] = self.log_std[i].clamp(-1.8, 1.0);
        }
        stats
    }

    /// Snapshot the learnable state.
    pub fn weights(&self) -> PpoWeights {
        PpoWeights {
            config: self.config.clone(),
            actor: self.actor.clone(),
            critic: self.critic.clone(),
            log_std: self.log_std.clone(),
        }
    }

    /// Restore an agent from a snapshot (optimizer state starts fresh).
    pub fn from_weights(w: PpoWeights, rng: &mut DetRng) -> Self {
        let actor_opt = Adam::new(&w.actor, w.config.lr);
        let critic_opt = Adam::new(&w.critic, w.config.lr);
        let act_dim = w.config.act_dim;
        PpoAgent {
            actor: w.actor,
            critic: w.critic,
            log_std: w.log_std,
            actor_opt,
            critic_opt,
            log_std_m: vec![0.0; act_dim],
            log_std_v: vec![0.0; act_dim],
            log_std_t: 0,
            buffer: RolloutBuffer::new(),
            rng: rng.fork("ppo-explore"),
            eval_mode: false,
            pending: None,
            last_good: None,
            weight_restores: 0,
            config: w.config,
        }
    }

    /// Restore an agent from a snapshot, rejecting corrupt weights
    /// (non-finite parameters or L2 norm above
    /// [`WEIGHT_NORM_BOUND`]) instead of silently deploying them.
    pub fn try_from_weights(w: PpoWeights, rng: &mut DetRng) -> Result<Self, String> {
        if !w.is_valid(WEIGHT_NORM_BOUND) {
            return Err(format!(
                "rejecting PPO weights: non-finite parameters or L2 norm {:.3e} > {:.1e}",
                w.l2_norm(),
                WEIGHT_NORM_BOUND
            ));
        }
        let mut agent = PpoAgent::from_weights(w, rng);
        agent.snapshot_good();
        Ok(agent)
    }

    /// Are the current learnable parameters finite with an L2 norm under
    /// `norm_bound`?
    pub fn weights_valid(&self, norm_bound: f64) -> bool {
        self.actor.params_finite()
            && self.critic.params_finite()
            && self.log_std.iter().all(|x| x.is_finite())
            && {
                let a = self.actor.param_l2_norm();
                let c = self.critic.param_l2_norm();
                let s: f64 = self.log_std.iter().map(|x| x * x).sum();
                (a * a + c * c + s).sqrt() <= norm_bound
            }
    }

    /// Record the current weights as the last-known-good snapshot.
    pub fn snapshot_good(&mut self) {
        self.last_good = Some(self.weights());
    }

    /// Validate the current weights against `norm_bound`; on corruption
    /// restore the last-known-good snapshot (if any). Returns `true` when
    /// the weights were already healthy.
    pub fn validate_or_restore(&mut self, norm_bound: f64) -> bool {
        if self.weights_valid(norm_bound) {
            return true;
        }
        if let Some(w) = self.last_good.clone() {
            self.actor = w.actor;
            self.critic = w.critic;
            self.log_std = w.log_std;
            // Optimizer moments may carry the same corruption; restart
            // them along with the weights.
            self.actor_opt = Adam::new(&self.actor, self.config.lr);
            self.critic_opt = Adam::new(&self.critic, self.config.lr);
            self.log_std_m = vec![0.0; self.config.act_dim];
            self.log_std_v = vec![0.0; self.config.act_dim];
            self.log_std_t = 0;
            self.weight_restores += 1;
        }
        false
    }

    /// Times a corrupt weight set was rolled back to the last snapshot.
    pub fn weight_restores(&self) -> u64 {
        self.weight_restores
    }

    /// Corrupt/transform every actor parameter in place — the
    /// fault-injection hook robustness tests use to poison a policy.
    pub fn map_actor_params(&mut self, f: impl FnMut(f64) -> f64) {
        self.actor.map_params(f);
    }
}

fn b1f(beta: f64, t: u64) -> f64 {
    beta.powi(t as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D bandit-like control problem: state is a target in [-1, 1],
    /// reward is −(action − target)². PPO should learn action ≈ target.
    fn train_target_tracking(episodes: usize, seed: u64) -> f64 {
        let mut rng = DetRng::new(seed);
        let config = PpoConfig {
            hidden: vec![16, 16],
            lr: 3e-3,
            minibatch: 32,
            ..PpoConfig::new(1, 1)
        };
        let mut agent = PpoAgent::new(config, &mut rng);
        let mut env_rng = DetRng::new(seed + 1);
        for _ in 0..episodes {
            for _ in 0..32 {
                let target = env_rng.uniform_range(-1.0, 1.0);
                let a = agent.act(&[target]);
                let reward = -(a[0] - target).powi(2);
                agent.give_reward(reward, true);
            }
            agent.update(None);
        }
        // Evaluate deterministically.
        agent.set_eval(true);
        let mut err = 0.0;
        for k in 0..20 {
            let target = -1.0 + k as f64 / 10.0;
            let a = agent.act(&[target]);
            err += (a[0] - target).abs();
        }
        err / 20.0
    }

    #[test]
    fn ppo_learns_target_tracking() {
        let err = train_target_tracking(120, 3);
        assert!(err < 0.25, "mean |action − target| = {err}");
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut rng = DetRng::new(5);
        let mut agent = PpoAgent::new(PpoConfig::new(2, 1), &mut rng);
        agent.set_eval(true);
        let a = agent.act(&[0.1, 0.2]);
        let b = agent.act(&[0.1, 0.2]);
        assert_eq!(a, b);
        assert_eq!(agent.buffered(), 0); // eval mode records nothing
    }

    #[test]
    fn training_mode_explores() {
        let mut rng = DetRng::new(6);
        let mut agent = PpoAgent::new(PpoConfig::new(2, 1), &mut rng);
        let a = agent.act(&[0.1, 0.2]);
        agent.give_reward(0.0, false);
        let b = agent.act(&[0.1, 0.2]);
        agent.give_reward(0.0, true);
        assert_ne!(a, b, "sampled actions should differ");
        assert_eq!(agent.buffered(), 2);
    }

    #[test]
    fn unrewarded_pending_gets_zero_reward() {
        let mut rng = DetRng::new(7);
        let mut agent = PpoAgent::new(PpoConfig::new(1, 1), &mut rng);
        agent.act(&[0.0]);
        agent.act(&[0.0]); // no give_reward in between
        assert_eq!(agent.buffered(), 1);
        assert_eq!(agent.buffered_reward(), 0.0);
    }

    #[test]
    fn update_clears_buffer_and_reports() {
        let mut rng = DetRng::new(8);
        let mut agent = PpoAgent::new(PpoConfig::new(1, 1), &mut rng);
        for _ in 0..10 {
            agent.act(&[0.5]);
            agent.give_reward(1.0, false);
        }
        let stats = agent.update(Some(&[0.5]));
        assert_eq!(stats.samples, 10);
        assert_eq!(agent.buffered(), 0);
        assert!(stats.entropy.is_finite());
        // Empty update is a no-op.
        let empty = agent.update(None);
        assert_eq!(empty.samples, 0);
    }

    #[test]
    fn weights_round_trip_preserves_policy() {
        let mut rng = DetRng::new(9);
        let mut agent = PpoAgent::new(PpoConfig::new(2, 1), &mut rng);
        agent.set_eval(true);
        let before = agent.act(&[0.3, -0.3]);
        let json = serde_json::to_string(&agent.weights()).unwrap();
        let w: PpoWeights = serde_json::from_str(&json).unwrap();
        let mut rng2 = DetRng::new(1);
        let mut restored = PpoAgent::from_weights(w, &mut rng2);
        restored.set_eval(true);
        let after = restored.act(&[0.3, -0.3]);
        // serde_json may round the last ULP of an f64.
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn corrupt_weights_are_rejected_on_load() {
        let mut rng = DetRng::new(11);
        let mut agent = PpoAgent::new(PpoConfig::new(2, 1), &mut rng);
        let good = agent.weights();
        assert!(good.is_valid(WEIGHT_NORM_BOUND));
        agent.map_actor_params(|_| f64::NAN);
        let bad = agent.weights();
        assert!(!bad.is_valid(WEIGHT_NORM_BOUND));
        let mut rng2 = DetRng::new(12);
        assert!(PpoAgent::try_from_weights(good, &mut rng2).is_ok());
        assert!(PpoAgent::try_from_weights(bad, &mut rng2).is_err());
    }

    #[test]
    fn poisoned_agent_restores_last_good_snapshot() {
        let mut rng = DetRng::new(13);
        let mut agent = PpoAgent::new(PpoConfig::new(2, 1), &mut rng);
        agent.set_eval(true);
        let before = agent.act(&[0.2, -0.4]);
        agent.snapshot_good();
        agent.map_actor_params(|_| f64::INFINITY);
        assert!(!agent.weights_valid(WEIGHT_NORM_BOUND));
        assert!(!agent.validate_or_restore(WEIGHT_NORM_BOUND));
        assert_eq!(agent.weight_restores(), 1);
        assert!(agent.weights_valid(WEIGHT_NORM_BOUND));
        assert_eq!(agent.act(&[0.2, -0.4]), before);
    }

    #[test]
    fn poisoning_without_snapshot_stays_poisoned() {
        let mut rng = DetRng::new(14);
        let mut agent = PpoAgent::new(PpoConfig::new(1, 1), &mut rng);
        agent.set_eval(true);
        agent.map_actor_params(|_| f64::NAN);
        assert!(!agent.validate_or_restore(WEIGHT_NORM_BOUND));
        assert_eq!(agent.weight_restores(), 0, "nothing to restore from");
        assert!(agent.act(&[0.0])[0].is_nan());
    }

    #[test]
    fn update_rolls_back_corrupting_training_batch() {
        let mut rng = DetRng::new(15);
        let mut agent = PpoAgent::new(PpoConfig::new(1, 1), &mut rng);
        for _ in 0..8 {
            agent.act(&[0.5]);
            // A NaN reward poisons advantages and, through them, every
            // parameter the minibatch touches.
            agent.give_reward(f64::NAN, false);
        }
        agent.update(None);
        assert!(agent.weights_valid(WEIGHT_NORM_BOUND), "rolled back");
        assert_eq!(agent.weight_restores(), 1);
        agent.set_eval(true);
        assert!(agent.act(&[0.5])[0].is_finite());
    }

    #[test]
    fn param_count_includes_everything() {
        let mut rng = DetRng::new(10);
        let agent = PpoAgent::new(
            PpoConfig {
                hidden: vec![8],
                ..PpoConfig::new(4, 2)
            },
            &mut rng,
        );
        // actor: 4·8+8 + 8·2+2 = 58; critic: 4·8+8 + 8·1+1 = 49; log_std: 2.
        assert_eq!(agent.param_count(), 58 + 49 + 2);
    }
}
