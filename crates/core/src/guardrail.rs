//! Runtime guardrails for the learned arm.
//!
//! Libra's three-stage cycle assumes the RL component produces *sane*
//! decisions — an assumption that breaks when a policy network is
//! corrupted (NaN weights, exploding updates) or simply loses to the
//! classic arm cycle after cycle. This module tracks those symptoms and
//! trips **degraded mode**: decisions pin to the classic CCA while the
//! RL arm is benched, with an exponentially backed-off re-probe schedule
//! deciding when to let it act again.
//!
//! ```text
//!            consecutive invalid actions ≥ N
//!            or consecutive utility regressions ≥ M
//!   HEALTHY ────────────────────────────────────────▶ DEGRADED
//!      ▲                                                │ backoff MIs
//!      │            re-probe (validate + restore        │ elapse
//!      └──────────── PPO weights, resume cycle) ◀───────┘
//! ```
//!
//! Each failed re-probe doubles the next backoff up to a ceiling; a few
//! fully healthy cycles reset it.

use libra_types::{Duration, Instant};

/// Tunables of the guardrail state machine. All durations are counted in
/// monitor intervals (MIs) so behaviour scales with the path RTT exactly
/// like the control cycle itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardrailParams {
    /// Consecutive rejected (non-finite) RL actions that trip degraded
    /// mode.
    pub max_invalid_actions: u32,
    /// Consecutive cycles with the learned arm's measured utility below
    /// the classic arm's that trip degraded mode.
    pub max_utility_regressions: u32,
    /// Length of the first degraded period, in MIs.
    pub backoff_initial_mis: u32,
    /// Multiplier applied to the backoff after every trip.
    pub backoff_factor: u32,
    /// Ceiling on the backoff, in MIs.
    pub backoff_max_mis: u32,
    /// Fully healthy cycles after a re-probe before the backoff resets
    /// to its initial value.
    pub recovery_cycles: u32,
    /// L2-norm bound above which PPO weights count as corrupt (checked
    /// at every re-probe).
    pub weight_norm_bound: f64,
}

impl Default for GuardrailParams {
    fn default() -> Self {
        GuardrailParams {
            max_invalid_actions: 3,
            max_utility_regressions: 8,
            backoff_initial_mis: 8,
            backoff_factor: 2,
            backoff_max_mis: 256,
            recovery_cycles: 4,
            weight_norm_bound: libra_rl::WEIGHT_NORM_BOUND,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Healthy,
    Degraded { mis_left: u32 },
}

/// The guardrail state machine; owned by [`crate::Libra`], one per flow.
#[derive(Debug)]
pub struct Guardrail {
    params: GuardrailParams,
    state: State,
    consecutive_invalid: u32,
    consecutive_regressions: u32,
    next_backoff_mis: u32,
    healthy_cycles: u32,
    trips: u64,
    reprobes: u64,
    degraded_since: Option<Instant>,
    degraded_total: Duration,
}

impl Guardrail {
    /// A healthy guardrail with the given tunables.
    pub fn new(params: GuardrailParams) -> Self {
        Guardrail {
            params,
            state: State::Healthy,
            consecutive_invalid: 0,
            consecutive_regressions: 0,
            next_backoff_mis: params.backoff_initial_mis.max(1),
            healthy_cycles: 0,
            trips: 0,
            reprobes: 0,
            degraded_since: None,
            degraded_total: Duration::ZERO,
        }
    }

    /// The configured tunables.
    pub fn params(&self) -> &GuardrailParams {
        &self.params
    }

    /// Is the RL arm currently benched?
    pub fn is_degraded(&self) -> bool {
        matches!(self.state, State::Degraded { .. })
    }

    /// Times degraded mode was entered.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times the RL arm was re-probed after a degraded period.
    pub fn reprobes(&self) -> u64 {
        self.reprobes
    }

    /// Total time spent degraded, including a still-open episode up to
    /// `now`.
    pub fn degraded_time(&self, now: Instant) -> Duration {
        match self.degraded_since {
            Some(since) => self.degraded_total + now.saturating_since(since),
            None => self.degraded_total,
        }
    }

    /// Record `delta` rejected RL actions observed since the last call
    /// (from [`libra_learned::RlCca::invalid_actions`]); a clean interval
    /// resets the streak. May trip degraded mode.
    pub fn on_invalid_actions(&mut self, now: Instant, delta: u64) {
        if self.is_degraded() {
            return;
        }
        if delta == 0 {
            self.consecutive_invalid = 0;
            return;
        }
        self.consecutive_invalid = self
            .consecutive_invalid
            .saturating_add(delta.min(u32::MAX as u64) as u32);
        if self.consecutive_invalid >= self.params.max_invalid_actions {
            self.trip(now);
        }
    }

    /// Record one completed control cycle's measured utilities. A cycle
    /// where the learned arm measurably loses to the classic arm counts
    /// toward the regression streak; a cycle where it holds its own
    /// resets the streak. May trip degraded mode.
    pub fn on_cycle(&mut self, now: Instant, u_learned: Option<f64>, u_classic: Option<f64>) {
        if self.is_degraded() {
            return;
        }
        match (u_learned, u_classic) {
            (Some(l), Some(c)) if l < c => {
                self.consecutive_regressions += 1;
                if self.consecutive_regressions >= self.params.max_utility_regressions {
                    self.trip(now);
                    return;
                }
            }
            (Some(_), Some(_)) => self.consecutive_regressions = 0,
            // Missing feedback is evidence of nothing.
            _ => {}
        }
        self.healthy_cycles += 1;
        if self.healthy_cycles >= self.params.recovery_cycles {
            self.next_backoff_mis = self.params.backoff_initial_mis.max(1);
        }
    }

    /// Tick once per monitor interval while degraded. Returns `true`
    /// exactly when the backoff has elapsed and the RL arm should be
    /// re-probed.
    pub fn tick_degraded(&mut self, now: Instant) -> bool {
        let State::Degraded { mis_left } = &mut self.state else {
            return false;
        };
        if *mis_left > 1 {
            *mis_left -= 1;
            return false;
        }
        self.reprobes += 1;
        if let Some(since) = self.degraded_since.take() {
            self.degraded_total += now.saturating_since(since);
        }
        self.state = State::Healthy;
        self.consecutive_invalid = 0;
        self.consecutive_regressions = 0;
        self.healthy_cycles = 0;
        true
    }

    fn trip(&mut self, now: Instant) {
        self.trips += 1;
        self.state = State::Degraded {
            mis_left: self.next_backoff_mis,
        };
        self.next_backoff_mis = self
            .next_backoff_mis
            .saturating_mul(self.params.backoff_factor.max(1))
            .min(self.params.backoff_max_mis.max(1));
        self.degraded_since = Some(now);
        self.consecutive_invalid = 0;
        self.consecutive_regressions = 0;
        self.healthy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn invalid_action_streak_trips() {
        let mut g = Guardrail::new(GuardrailParams::default());
        g.on_invalid_actions(at(10), 1);
        g.on_invalid_actions(at(20), 1);
        assert!(!g.is_degraded());
        g.on_invalid_actions(at(30), 1);
        assert!(g.is_degraded());
        assert_eq!(g.trips(), 1);
    }

    #[test]
    fn clean_interval_resets_invalid_streak() {
        let mut g = Guardrail::new(GuardrailParams::default());
        g.on_invalid_actions(at(10), 2);
        g.on_invalid_actions(at(20), 0); // healthy MI
        g.on_invalid_actions(at(30), 2);
        assert!(!g.is_degraded(), "streak must reset on a clean interval");
    }

    #[test]
    fn regression_streak_trips_and_healthy_cycle_resets() {
        let params = GuardrailParams {
            max_utility_regressions: 3,
            ..GuardrailParams::default()
        };
        let mut g = Guardrail::new(params);
        g.on_cycle(at(10), Some(1.0), Some(2.0));
        g.on_cycle(at(20), Some(1.0), Some(2.0));
        g.on_cycle(at(30), Some(3.0), Some(2.0)); // learned wins: reset
        g.on_cycle(at(40), Some(1.0), Some(2.0));
        g.on_cycle(at(50), Some(1.0), Some(2.0));
        assert!(!g.is_degraded());
        g.on_cycle(at(60), Some(1.0), Some(2.0));
        assert!(g.is_degraded());
    }

    #[test]
    fn missing_feedback_is_neutral() {
        let params = GuardrailParams {
            max_utility_regressions: 2,
            ..GuardrailParams::default()
        };
        let mut g = Guardrail::new(params);
        g.on_cycle(at(10), Some(1.0), Some(2.0));
        g.on_cycle(at(20), None, Some(2.0));
        g.on_cycle(at(30), Some(1.0), None);
        assert!(!g.is_degraded(), "streak holds but does not grow");
        g.on_cycle(at(40), Some(1.0), Some(2.0));
        assert!(g.is_degraded());
    }

    #[test]
    fn backoff_doubles_per_trip_and_caps() {
        let params = GuardrailParams {
            max_invalid_actions: 1,
            backoff_initial_mis: 2,
            backoff_factor: 2,
            backoff_max_mis: 4,
            ..GuardrailParams::default()
        };
        let mut g = Guardrail::new(params);
        let mut now = 0;
        let mut degraded_lengths = Vec::new();
        for _ in 0..3 {
            now += 10;
            g.on_invalid_actions(at(now), 1);
            assert!(g.is_degraded());
            let mut ticks = 0;
            loop {
                now += 10;
                ticks += 1;
                if g.tick_degraded(at(now)) {
                    break;
                }
            }
            degraded_lengths.push(ticks);
        }
        assert_eq!(degraded_lengths, vec![2, 4, 4], "2 → 4 → capped at 4");
        assert_eq!(g.trips(), 3);
        assert_eq!(g.reprobes(), 3);
    }

    #[test]
    fn recovery_cycles_reset_the_backoff() {
        let params = GuardrailParams {
            max_invalid_actions: 1,
            backoff_initial_mis: 2,
            backoff_factor: 2,
            backoff_max_mis: 64,
            recovery_cycles: 2,
            ..GuardrailParams::default()
        };
        let mut g = Guardrail::new(params);
        g.on_invalid_actions(at(10), 1);
        while !g.tick_degraded(at(20)) {}
        // Two healthy cycles: backoff back to initial.
        g.on_cycle(at(30), Some(2.0), Some(1.0));
        g.on_cycle(at(40), Some(2.0), Some(1.0));
        g.on_invalid_actions(at(50), 1);
        let mut ticks = 0;
        while !g.tick_degraded(at(60)) {
            ticks += 1;
        }
        assert_eq!(ticks + 1, 2, "second episode back at the initial backoff");
    }

    #[test]
    fn degraded_time_accumulates_across_episodes() {
        let params = GuardrailParams {
            max_invalid_actions: 1,
            backoff_initial_mis: 1,
            ..GuardrailParams::default()
        };
        let mut g = Guardrail::new(params);
        assert_eq!(g.degraded_time(at(5)), Duration::ZERO);
        g.on_invalid_actions(at(10), 1);
        // Open episode counts up to `now`.
        assert_eq!(g.degraded_time(at(15)), Duration::from_millis(5));
        assert!(g.tick_degraded(at(20)));
        assert_eq!(g.degraded_time(at(100)), Duration::from_millis(10));
        // The second episode's backoff has doubled to two MIs.
        g.on_invalid_actions(at(110), 1);
        assert!(!g.tick_degraded(at(115)));
        assert!(g.tick_degraded(at(120)));
        assert_eq!(g.degraded_time(at(200)), Duration::from_millis(20));
    }

    #[test]
    fn observations_while_degraded_are_ignored() {
        let params = GuardrailParams {
            max_invalid_actions: 1,
            backoff_initial_mis: 4,
            ..GuardrailParams::default()
        };
        let mut g = Guardrail::new(params);
        g.on_invalid_actions(at(10), 1);
        assert_eq!(g.trips(), 1);
        g.on_invalid_actions(at(20), 5);
        g.on_cycle(at(30), Some(0.0), Some(9.0));
        assert_eq!(g.trips(), 1, "no double-tripping while already degraded");
    }
}
