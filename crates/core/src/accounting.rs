//! Per-cycle telemetry: which candidate won, the utilities measured, and
//! the decision-fraction accounting behind Fig. 17 and Fig. 18.

use libra_types::Instant;

/// The three candidate rates of a control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// The previous cycle's base rate `x_prev`.
    Prev,
    /// The classic CCA's decision `x_cl`.
    Classic,
    /// The learning-based CCA's decision `x_rl`.
    Learned,
}

impl Candidate {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Candidate::Prev => "x_prev",
            Candidate::Classic => "x_cl",
            Candidate::Learned => "x_rl",
        }
    }
}

/// One completed control cycle.
#[derive(Debug, Clone, Copy)]
pub struct CycleRecord {
    /// When the cycle's decision was taken.
    pub at: Instant,
    /// Utility measured for `x_prev` during exploration (`None` when the
    /// exploration stage was ACK-starved and produced no feedback — an
    /// ACK-starved stage must not masquerade as a −∞ measurement).
    pub u_prev: Option<f64>,
    /// Utility measured for `x_cl` (`None` if feedback was missing or no
    /// classic CCA is configured — Clean-Slate Libra).
    pub u_classic: Option<f64>,
    /// Utility measured for `x_rl` (`None` if feedback was missing).
    pub u_learned: Option<f64>,
    /// The winning candidate applied as the next base rate.
    pub winner: Candidate,
    /// The winning rate in Mbps.
    pub rate_mbps: f64,
    /// Whether the cycle left exploration early (threshold trip).
    pub early_exit: bool,
}

impl CycleRecord {
    /// The best *finite* utility observed in this cycle (for Fig. 18's
    /// series). `None` when every candidate's measurement is missing or
    /// non-finite — a fully starved cycle has no best utility, rather
    /// than a −∞ one that would poison downstream normalization.
    pub fn best_utility(&self) -> Option<f64> {
        [self.u_prev, self.u_classic, self.u_learned]
            .into_iter()
            .flatten()
            .filter(|u| u.is_finite())
            .fold(None, |best: Option<f64>, u| {
                Some(best.map_or(u, |b| b.max(u)))
            })
    }
}

/// Accumulated cycle log.
#[derive(Debug, Clone, Default)]
pub struct CycleLog {
    records: Vec<CycleRecord>,
}

impl CycleLog {
    /// Empty log.
    pub fn new() -> Self {
        CycleLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: CycleRecord) {
        self.check_record(&r);
        self.records.push(r);
    }

    /// MI-accounting consistency (`checked-invariants` feature): cycle
    /// timestamps must be monotone nondecreasing, the applied rate must
    /// be finite and positive, and any utility that *is* reported must
    /// not be NaN (a starved stage reports `None`, never NaN).
    #[cfg(feature = "checked-invariants")]
    fn check_record(&self, r: &CycleRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                r.at >= last.at,
                "cycle log time went backwards: {} < {}",
                r.at.as_secs_f64(),
                last.at.as_secs_f64()
            );
        }
        assert!(
            r.rate_mbps.is_finite() && r.rate_mbps > 0.0,
            "cycle record carries non-finite or non-positive rate: {}",
            r.rate_mbps
        );
        for (label, u) in [
            ("u_prev", r.u_prev),
            ("u_classic", r.u_classic),
            ("u_learned", r.u_learned),
        ] {
            if let Some(u) = u {
                assert!(!u.is_nan(), "cycle record {label} is NaN");
            }
        }
    }

    #[cfg(not(feature = "checked-invariants"))]
    #[inline(always)]
    fn check_record(&self, _r: &CycleRecord) {}

    /// All records.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Cycles recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of cycles won by each candidate:
    /// `(x_prev, x_rl, x_cl)` — Fig. 17's bars.
    pub fn fractions(&self) -> (f64, f64, f64) {
        if self.records.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = self.records.len() as f64;
        let count = |c: Candidate| self.records.iter().filter(|r| r.winner == c).count() as f64 / n;
        (
            count(Candidate::Prev),
            count(Candidate::Learned),
            count(Candidate::Classic),
        )
    }

    /// `(seconds, best utility)` series, normalized to `[0, 1]` over the
    /// log — Fig. 18's y-axis. Cycles with no finite utility measurement
    /// (e.g. every stage ACK-starved during a link blackout) are skipped,
    /// so the series is always finite: an all-starved log yields an empty
    /// series instead of NaN points.
    pub fn normalized_utility_series(&self) -> Vec<(f64, f64)> {
        let pts: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter_map(|r| r.best_utility().map(|u| (r.at.as_secs_f64(), u)))
            .collect();
        let (Some(lo), Some(hi)) = (
            pts.iter()
                .map(|&(_, u)| u)
                .fold(None, |m: Option<f64>, u| Some(m.map_or(u, |v| v.min(u)))),
            pts.iter()
                .map(|&(_, u)| u)
                .fold(None, |m: Option<f64>, u| Some(m.map_or(u, |v| v.max(u)))),
        ) else {
            return Vec::new();
        };
        debug_assert!(lo.is_finite() && hi.is_finite());
        let span = (hi - lo).max(1e-9);
        pts.into_iter().map(|(t, u)| (t, (u - lo) / span)).collect()
    }

    /// How often exploration exited early via the divergence threshold.
    pub fn early_exit_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.early_exit).count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(winner: Candidate, at_s: u64) -> CycleRecord {
        CycleRecord {
            at: Instant::from_secs(at_s),
            u_prev: Some(1.0),
            u_classic: Some(2.0),
            u_learned: Some(0.5),
            winner,
            rate_mbps: 10.0,
            early_exit: false,
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut log = CycleLog::new();
        log.push(rec(Candidate::Prev, 1));
        log.push(rec(Candidate::Classic, 2));
        log.push(rec(Candidate::Classic, 3));
        log.push(rec(Candidate::Learned, 4));
        let (p, r, c) = log.fractions();
        assert!((p - 0.25).abs() < 1e-12);
        assert!((r - 0.25).abs() < 1e-12);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_utility_takes_max() {
        let r = rec(Candidate::Classic, 1);
        assert_eq!(r.best_utility(), Some(2.0));
        let r2 = CycleRecord {
            u_classic: None,
            u_learned: None,
            ..r
        };
        assert_eq!(r2.best_utility(), Some(1.0));
    }

    #[test]
    fn best_utility_ignores_missing_and_non_finite() {
        // A fully starved cycle has no best utility at all.
        let starved = CycleRecord {
            u_prev: None,
            u_classic: None,
            u_learned: None,
            ..rec(Candidate::Prev, 1)
        };
        assert_eq!(starved.best_utility(), None);
        // Non-finite measurements never win (or poison) the max.
        let poisoned = CycleRecord {
            u_prev: Some(f64::NEG_INFINITY),
            u_classic: Some(0.25),
            u_learned: Some(f64::NAN),
            ..rec(Candidate::Classic, 2)
        };
        assert_eq!(poisoned.best_utility(), Some(0.25));
    }

    #[test]
    fn normalized_series_in_unit_range() {
        let mut log = CycleLog::new();
        for (i, w) in [Candidate::Prev, Candidate::Classic, Candidate::Learned]
            .iter()
            .enumerate()
        {
            let mut r = rec(*w, i as u64);
            r.u_prev = Some(i as f64 * 3.0);
            log.push(r);
        }
        let s = log.normalized_utility_series();
        assert_eq!(s.len(), 3);
        for (_, u) in &s {
            assert!((0.0..=1.0).contains(u));
        }
    }

    #[test]
    fn all_starved_log_yields_finite_empty_series() {
        // Regression: a log where every cycle was ACK-starved used to
        // normalize −∞ against −∞ and emit NaN points.
        let mut log = CycleLog::new();
        for i in 0..4 {
            log.push(CycleRecord {
                u_prev: None,
                u_classic: None,
                u_learned: None,
                ..rec(Candidate::Prev, i)
            });
        }
        assert!(log.normalized_utility_series().is_empty());
        // A single starved cycle between measured ones is skipped, not NaN.
        log.push(rec(Candidate::Classic, 5));
        let s = log.normalized_utility_series();
        assert_eq!(s.len(), 1);
        assert!(s.iter().all(|&(t, u)| t.is_finite() && u.is_finite()));
    }

    #[cfg(feature = "checked-invariants")]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn checked_mode_rejects_nan_rate() {
        let mut log = CycleLog::new();
        let mut r = rec(Candidate::Prev, 1);
        r.rate_mbps = f64::NAN;
        log.push(r);
    }

    #[cfg(feature = "checked-invariants")]
    #[test]
    #[should_panic(expected = "time went backwards")]
    fn checked_mode_rejects_time_reversal() {
        let mut log = CycleLog::new();
        log.push(rec(Candidate::Prev, 5));
        log.push(rec(Candidate::Prev, 3));
    }

    #[test]
    fn empty_log_is_safe() {
        let log = CycleLog::new();
        assert_eq!(log.fractions(), (0.0, 0.0, 0.0));
        assert!(log.normalized_utility_series().is_empty());
        assert_eq!(log.early_exit_fraction(), 0.0);
    }
}
