//! Per-cycle telemetry: which candidate won, the utilities measured, and
//! the decision-fraction accounting behind Fig. 17 and Fig. 18.

use libra_types::Instant;

/// The three candidate rates of a control cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// The previous cycle's base rate `x_prev`.
    Prev,
    /// The classic CCA's decision `x_cl`.
    Classic,
    /// The learning-based CCA's decision `x_rl`.
    Learned,
}

impl Candidate {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Candidate::Prev => "x_prev",
            Candidate::Classic => "x_cl",
            Candidate::Learned => "x_rl",
        }
    }
}

/// One completed control cycle.
#[derive(Debug, Clone, Copy)]
pub struct CycleRecord {
    /// When the cycle's decision was taken.
    pub at: Instant,
    /// Utility measured for `x_prev` (exploration-stage behaviour).
    pub u_prev: f64,
    /// Utility measured for `x_cl` (`None` if feedback was missing or no
    /// classic CCA is configured — Clean-Slate Libra).
    pub u_classic: Option<f64>,
    /// Utility measured for `x_rl` (`None` if feedback was missing).
    pub u_learned: Option<f64>,
    /// The winning candidate applied as the next base rate.
    pub winner: Candidate,
    /// The winning rate in Mbps.
    pub rate_mbps: f64,
    /// Whether the cycle left exploration early (threshold trip).
    pub early_exit: bool,
}

impl CycleRecord {
    /// The best utility observed in this cycle (for Fig. 18's series).
    pub fn best_utility(&self) -> f64 {
        let mut best = self.u_prev;
        if let Some(u) = self.u_classic {
            best = best.max(u);
        }
        if let Some(u) = self.u_learned {
            best = best.max(u);
        }
        best
    }
}

/// Accumulated cycle log.
#[derive(Debug, Clone, Default)]
pub struct CycleLog {
    records: Vec<CycleRecord>,
}

impl CycleLog {
    /// Empty log.
    pub fn new() -> Self {
        CycleLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: CycleRecord) {
        self.records.push(r);
    }

    /// All records.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Cycles recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fraction of cycles won by each candidate:
    /// `(x_prev, x_rl, x_cl)` — Fig. 17's bars.
    pub fn fractions(&self) -> (f64, f64, f64) {
        if self.records.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = self.records.len() as f64;
        let count = |c: Candidate| self.records.iter().filter(|r| r.winner == c).count() as f64 / n;
        (
            count(Candidate::Prev),
            count(Candidate::Learned),
            count(Candidate::Classic),
        )
    }

    /// `(seconds, best utility)` series, normalized to `[0, 1]` over the
    /// log — Fig. 18's y-axis.
    pub fn normalized_utility_series(&self) -> Vec<(f64, f64)> {
        if self.records.is_empty() {
            return Vec::new();
        }
        let lo = self
            .records
            .iter()
            .map(|r| r.best_utility())
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .records
            .iter()
            .map(|r| r.best_utility())
            .fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-9);
        self.records
            .iter()
            .map(|r| (r.at.as_secs_f64(), (r.best_utility() - lo) / span))
            .collect()
    }

    /// How often exploration exited early via the divergence threshold.
    pub fn early_exit_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.early_exit).count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(winner: Candidate, at_s: u64) -> CycleRecord {
        CycleRecord {
            at: Instant::from_secs(at_s),
            u_prev: 1.0,
            u_classic: Some(2.0),
            u_learned: Some(0.5),
            winner,
            rate_mbps: 10.0,
            early_exit: false,
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut log = CycleLog::new();
        log.push(rec(Candidate::Prev, 1));
        log.push(rec(Candidate::Classic, 2));
        log.push(rec(Candidate::Classic, 3));
        log.push(rec(Candidate::Learned, 4));
        let (p, r, c) = log.fractions();
        assert!((p - 0.25).abs() < 1e-12);
        assert!((r - 0.25).abs() < 1e-12);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_utility_takes_max() {
        let r = rec(Candidate::Classic, 1);
        assert_eq!(r.best_utility(), 2.0);
        let r2 = CycleRecord {
            u_classic: None,
            u_learned: None,
            ..r
        };
        assert_eq!(r2.best_utility(), 1.0);
    }

    #[test]
    fn normalized_series_in_unit_range() {
        let mut log = CycleLog::new();
        for (i, w) in [Candidate::Prev, Candidate::Classic, Candidate::Learned]
            .iter()
            .enumerate()
        {
            let mut r = rec(*w, i as u64);
            r.u_prev = i as f64 * 3.0;
            log.push(r);
        }
        let s = log.normalized_utility_series();
        assert_eq!(s.len(), 3);
        for (_, u) in &s {
            assert!((0.0..=1.0).contains(u));
        }
    }

    #[test]
    fn empty_log_is_safe() {
        let log = CycleLog::new();
        assert_eq!(log.fractions(), (0.0, 0.0, 0.0));
        assert!(log.normalized_utility_series().is_empty());
        assert_eq!(log.early_exit_fraction(), 0.0);
    }
}
