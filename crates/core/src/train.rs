//! Training Libra's RL component *inside* the framework.
//!
//! The paper trains the DRL agent with the sender running the full Libra
//! control loop over randomized emulated networks (Sec. 5
//! "Implementation"). Training inside the framework matters: the agent's
//! experience must include the cycle's rate resets (`x_prev` re-basing)
//! or its policy would assume unbroken control of the rate.

use crate::libra::Libra;
use crate::params::LibraParams;
use libra_classic::{Bbr, Cubic};
use libra_learned::trainer::{EnvRanges, EpisodeLog, TrainConfig};
use libra_rl::{PpoAgent, PpoWeights};
use libra_types::{CongestionControl, DetRng, Instant};
use std::cell::RefCell;
use std::rc::Rc;

/// Which classic CCA Libra wraps during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibraVariant {
    /// C-Libra (CUBIC inside).
    Cubic,
    /// B-Libra (BBR inside).
    Bbr,
    /// Clean-Slate Libra (no classic CCA).
    CleanSlate,
}

impl LibraVariant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LibraVariant::Cubic => "C-Libra",
            LibraVariant::Bbr => "B-Libra",
            LibraVariant::CleanSlate => "CL-Libra",
        }
    }

    /// Build a Libra instance of this variant over a shared agent.
    pub fn build(self, agent: Rc<RefCell<PpoAgent>>) -> Libra {
        match self {
            LibraVariant::Cubic => Libra::c_libra(agent),
            LibraVariant::Bbr => Libra::b_libra(agent),
            LibraVariant::CleanSlate => Libra::clean_slate(agent),
        }
    }

    /// Default cycle parameters for this variant.
    pub fn params(self) -> LibraParams {
        match self {
            LibraVariant::Bbr => LibraParams::for_bbr(),
            _ => LibraParams::for_cubic(),
        }
    }

    /// Build with explicit parameters (sensitivity sweeps).
    pub fn build_with_params(self, params: LibraParams, agent: Rc<RefCell<PpoAgent>>) -> Libra {
        match self {
            LibraVariant::Cubic => {
                Libra::with_classic("C-Libra", Box::new(Cubic::new(1500)), params, agent)
            }
            LibraVariant::Bbr => {
                Libra::with_classic("B-Libra", Box::new(Bbr::new(1500)), params, agent)
            }
            LibraVariant::CleanSlate => Libra::clean_slate(agent).with_params(params),
        }
    }
}

/// Result of training a Libra agent.
pub struct LibraTrainResult {
    /// Trained weights for the RL component.
    pub weights: PpoWeights,
    /// Per-episode curve.
    pub curve: Vec<EpisodeLog>,
}

/// Train Libra's RL component inside the full framework over randomized
/// networks.
pub fn train_libra(variant: LibraVariant, cfg: &TrainConfig) -> LibraTrainResult {
    let mut rng = DetRng::new(cfg.seed ^ 0x11B7A);
    let agent = Rc::new(RefCell::new(PpoAgent::new(Libra::ppo_config(), &mut rng)));
    let mut env_rng = rng.fork("libra-train-env");
    let mut curve = Vec::with_capacity(cfg.episodes);
    for episode in 0..cfg.episodes {
        let link = cfg.env.sample(&mut env_rng);
        let until = Instant::from_secs(cfg.episode_secs);
        let mut sim = libra_netsim::Simulation::new(link, rng.next_u64());
        let libra: Box<dyn CongestionControl> = Box::new(variant.build(Rc::clone(&agent)));
        let mut fc = libra_netsim::FlowConfig::whole_run(libra, until);
        fc.measure_compute = false;
        sim.add_flow(fc);
        let report = sim.run(until);
        let reward = agent.borrow().buffered_reward();
        curve.push(EpisodeLog {
            episode,
            reward,
            utilization: report.link.utilization,
            rtt_ms: report.flows[0].rtt_ms.mean(),
            loss: report.flows[0].loss_fraction,
        });
        if (episode + 1) % cfg.update_every == 0 {
            agent.borrow_mut().update(None);
        }
    }
    agent.borrow_mut().update(None);
    let weights = agent.borrow().weights();
    LibraTrainResult { weights, curve }
}

/// A quick training configuration for tests and cold-cache benches.
pub fn quick_train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        episodes: 60,
        episode_secs: 6,
        env: EnvRanges::quick(),
        seed,
        update_every: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libra_trains_inside_framework() {
        let cfg = TrainConfig {
            episodes: 3,
            episode_secs: 3,
            env: EnvRanges::quick(),
            seed: 5,
            update_every: 2,
        };
        let r = train_libra(LibraVariant::Cubic, &cfg);
        assert_eq!(r.curve.len(), 3);
        assert!(r.curve.iter().all(|e| e.reward.is_finite()));
        // The framework must actually move data.
        assert!(r.curve.iter().any(|e| e.utilization > 0.05));
    }

    #[test]
    fn clean_slate_trains_too() {
        let cfg = TrainConfig {
            episodes: 2,
            episode_secs: 3,
            env: EnvRanges::quick(),
            seed: 6,
            update_every: 1,
        };
        let r = train_libra(LibraVariant::CleanSlate, &cfg);
        assert_eq!(r.curve.len(), 2);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(LibraVariant::Cubic.label(), "C-Libra");
        assert_eq!(LibraVariant::Bbr.label(), "B-Libra");
        assert_eq!(LibraVariant::CleanSlate.label(), "CL-Libra");
    }
}
