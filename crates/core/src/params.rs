//! Libra's tunable parameters and their paper defaults (Sec. 5 "Setup"
//! and Sec. 7 "How to choose Libra's parameters?").

use crate::guardrail::GuardrailParams;
use libra_types::{Preference, UtilityParams};

/// Which candidate goes first in the evaluation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalOrder {
    /// The paper's design: lower rate first, minimizing the
    /// self-inflicted side effect of Fig. 4.
    LowerFirst,
    /// Ablation: higher rate first (suffers the Fig. 4 side effect).
    HigherFirst,
}

/// Configuration of a Libra controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraParams {
    /// Exploration-stage length in estimated RTTs (`k`): 1 for CUBIC-like
    /// CCAs, 3 for BBR (inheriting the first three gain-cycle RTTs).
    pub explore_rtts: f64,
    /// Evaluation-interval length in estimated RTTs (0.5 by default).
    pub ei_rtts: f64,
    /// Exploitation-stage length in estimated RTTs (matches `k`).
    pub exploit_rtts: f64,
    /// Early-exit threshold: leave exploration when
    /// `|x_cl − x_rl| ≥ switch_frac × x_prev` (0.3 by default, sized to
    /// cover BBR's ±0.25× probing).
    pub switch_frac: f64,
    /// The utility function of Eq. 1 used by the evaluation stage.
    pub utility: UtilityParams,
    /// Candidate evaluation order (ablation hook; the paper's design is
    /// lower-rate-first).
    pub eval_order: EvalOrder,
    /// Guardrail tunables: when to bench a misbehaving RL arm and how to
    /// re-probe it.
    pub guardrail: GuardrailParams,
}

impl LibraParams {
    /// Defaults for a CUBIC-like underlying classic CCA: 1 RTT stages.
    pub fn for_cubic() -> Self {
        LibraParams {
            explore_rtts: 1.0,
            ei_rtts: 0.5,
            exploit_rtts: 1.0,
            switch_frac: 0.3,
            utility: UtilityParams::default(),
            eval_order: EvalOrder::LowerFirst,
            guardrail: GuardrailParams::default(),
        }
    }

    /// Defaults for BBR: 3-RTT exploration/exploitation (the first three
    /// RTTs of BBR's probing cycle carry the bandwidth search).
    pub fn for_bbr() -> Self {
        LibraParams {
            explore_rtts: 3.0,
            exploit_rtts: 3.0,
            ..LibraParams::for_cubic()
        }
    }

    /// Apply an application preference profile (Fig. 11's Th-1/…/La-2).
    pub fn with_preference(mut self, pref: Preference) -> Self {
        self.utility = pref.params();
        self
    }

    /// Exploration length in ticks (one tick = one EI).
    pub fn explore_ticks(&self) -> u32 {
        (self.explore_rtts / self.ei_rtts).round().max(1.0) as u32
    }

    /// Exploitation length in ticks.
    pub fn exploit_ticks(&self) -> u32 {
        (self.exploit_rtts / self.ei_rtts).round().max(2.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_defaults_match_paper() {
        let p = LibraParams::for_cubic();
        assert_eq!(p.explore_rtts, 1.0);
        assert_eq!(p.ei_rtts, 0.5);
        assert_eq!(p.exploit_rtts, 1.0);
        assert_eq!(p.switch_frac, 0.3);
        assert_eq!(p.explore_ticks(), 2);
        assert_eq!(p.exploit_ticks(), 2);
    }

    #[test]
    fn bbr_defaults() {
        let p = LibraParams::for_bbr();
        assert_eq!(p.explore_rtts, 3.0);
        assert_eq!(p.explore_ticks(), 6);
        assert_eq!(p.exploit_ticks(), 6);
    }

    #[test]
    fn exploitation_always_covers_eval_feedback() {
        // The first two exploitation ticks absorb the candidates' ACKs, so
        // exploit_ticks ≥ 2 must hold for any sane configuration.
        for (e, ei) in [(1.0, 0.5), (0.5, 0.5), (1.0, 1.0), (3.0, 0.5)] {
            let p = LibraParams {
                exploit_rtts: e,
                ei_rtts: ei,
                ..LibraParams::for_cubic()
            };
            assert!(p.exploit_ticks() >= 2, "{e}/{ei}");
        }
    }

    #[test]
    fn preference_changes_utility() {
        let p = LibraParams::for_cubic().with_preference(Preference::Latency2);
        assert_eq!(p.utility.beta, 2700.0);
    }
}
