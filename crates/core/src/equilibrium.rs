//! Numeric verification of Theorem 4.1 (Appendix A): under a droptail
//! queue, `n` Libra senders with the Eq. 1 utility have a unique, fair
//! Nash equilibrium.
//!
//! Appendix A's analytic model: with total rate `S = Σxᵢ` on a bottleneck
//! of capacity `C`,
//!
//! ```text
//! loss L        = max(0, 1 − C/S)
//! d(RTT)/dt     = max(0, (S − C)/C)
//! u(xᵢ)         = α·xᵢ^t − β·xᵢ·max(0,(S−C)/C) − γ·xᵢ·(1 − C/S)
//! ```
//!
//! This module exposes the game's utility, best responses (golden-section
//! search) and best-response dynamics, which the property tests and the
//! `appendix_equilibrium` bench use to check existence, uniqueness,
//! fairness and convergence numerically.

use libra_types::UtilityParams;

/// The analytic droptail game of Appendix A.
#[derive(Debug, Clone, Copy)]
pub struct DroptailGame {
    /// Bottleneck capacity in Mbps.
    pub capacity_mbps: f64,
    /// Utility parameters.
    pub utility: UtilityParams,
}

impl DroptailGame {
    /// A game over `capacity_mbps` with default utility parameters.
    pub fn new(capacity_mbps: f64) -> Self {
        DroptailGame {
            capacity_mbps,
            utility: UtilityParams::default(),
        }
    }

    /// Sender `i`'s utility when sending `x_i` while the *others* send
    /// `x_rest` in total.
    pub fn utility_of(&self, x_i: f64, x_rest: f64) -> f64 {
        let s = x_i + x_rest;
        let c = self.capacity_mbps;
        let (gradient, loss) = if s > c && s > 0.0 {
            ((s - c) / c, 1.0 - c / s)
        } else {
            (0.0, 0.0)
        };
        self.utility.evaluate(x_i, gradient, loss)
    }

    /// Best response of a sender against the others' total rate, by
    /// golden-section search over `[0, hi]`.
    pub fn best_response(&self, x_rest: f64, hi: f64) -> f64 {
        let f = |x: f64| self.utility_of(x, x_rest);
        golden_max(f, 0.0, hi, 1e-7)
    }

    /// Run best-response dynamics from the given starting rates; returns
    /// the final rates after `iters` sweeps.
    pub fn best_response_dynamics(&self, start: &[f64], iters: usize) -> Vec<f64> {
        let mut rates = start.to_vec();
        let hi = 4.0 * self.capacity_mbps;
        for _ in 0..iters {
            for i in 0..rates.len() {
                let rest: f64 = rates
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &x)| x)
                    .sum();
                rates[i] = self.best_response(rest, hi);
            }
        }
        rates
    }

    /// The symmetric equilibrium rate for `n` senders, found by solving
    /// the fixed point `x* = BR((n−1)·x*)` by bisection on the
    /// best-response displacement.
    pub fn symmetric_equilibrium(&self, n: usize) -> f64 {
        assert!(n >= 1);
        let rates = self.best_response_dynamics(&vec![self.capacity_mbps / n as f64; n], 60);
        rates.iter().sum::<f64>() / n as f64
    }

    /// Largest one-sided utility gain available to any sender at `rates`
    /// (≈0 at a Nash equilibrium).
    pub fn max_deviation_gain(&self, rates: &[f64]) -> f64 {
        let hi = 4.0 * self.capacity_mbps;
        let mut worst: f64 = 0.0;
        for i in 0..rates.len() {
            let rest: f64 = rates
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &x)| x)
                .sum();
            let here = self.utility_of(rates[i], rest);
            let br = self.best_response(rest, hi);
            let there = self.utility_of(br, rest);
            worst = worst.max(there - here);
        }
        worst
    }
}

/// Lemma A.4's rate-control dynamics: all Libra senders evaluate the
/// same candidate adjustments (classic multiplicative decrease `η`,
/// RL MIMD factor `θ`, or keep) against the utility function, and the
/// choice with the highest utility is consistent across senders. Under
/// `S < C` the classic probe raises every rate; under `S > C` the chosen
/// multiplicative factor contracts rate differences — which is exactly
/// how the proof of Lemma A.4 argues convergence to the fair share.
#[derive(Debug, Clone, Copy)]
pub struct LibraDynamics {
    /// The underlying analytic game.
    pub game: DroptailGame,
    /// Classic CCA multiplicative decrease (CUBIC's β = 0.7).
    pub eta: f64,
    /// Classic additive probe in Mbps per cycle. Additive growth is what
    /// CUBIC-style window laws provide (growth independent of the current
    /// rate) and is the half of the AIMD pair that makes differences
    /// vanish relative to the mean.
    pub probe_mbps: f64,
    /// RL MIMD candidate factor (a milder decrease).
    pub theta: f64,
}

impl LibraDynamics {
    /// Defaults mirroring C-Libra (CUBIC η = 0.7).
    pub fn new(capacity_mbps: f64) -> Self {
        LibraDynamics {
            game: DroptailGame::new(capacity_mbps),
            eta: 0.7,
            probe_mbps: 0.5,
            theta: 0.9,
        }
    }

    /// One control cycle: under-utilized senders probe additively (the
    /// classic decision wins on utility, Lemma A.4 case i); congested
    /// senders all evaluate the same multiplicative candidates and apply
    /// the winner (cases ii/iii) — the consistent-decision property the
    /// Lemma A.4 proof relies on.
    pub fn step(&self, rates: &mut [f64]) {
        let s: f64 = rates.iter().sum();
        let c = self.game.capacity_mbps;
        // Probe while S ≤ C: at exactly S = C a sender can still gain by
        // increasing (Lemma A.4 case iii), so the classic keeps probing
        // until the droptail penalty appears.
        if s <= c {
            for r in rates.iter_mut() {
                *r += self.probe_mbps;
            }
            return;
        }
        // Congestion: all senders compare the same factors; the utility
        // of the post-adjustment operating point decides.
        if rates.is_empty() {
            return;
        }
        let candidates = [self.eta, self.theta, 1.0];
        let mut best = 1.0;
        let mut best_u = f64::NEG_INFINITY;
        for &f in &candidates {
            let s_new = s * f;
            let mean = s_new / rates.len() as f64;
            let u = self.game.utility_of(mean, s_new - mean);
            if u > best_u {
                best_u = u;
                best = f;
            }
        }
        for r in rates.iter_mut() {
            *r *= best;
        }
    }

    /// Run `iters` cycles; returns the final rates.
    pub fn run(&self, start: &[f64], iters: usize) -> Vec<f64> {
        let mut rates = start.to_vec();
        for _ in 0..iters {
            self.step(&mut rates);
        }
        rates
    }

    /// Relative spread `(max − min) / mean` of a rate vector.
    pub fn spread(rates: &[f64]) -> f64 {
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            Self::abs_diff(rates) / mean
        }
    }

    /// Absolute spread `max − min`.
    pub fn abs_diff(rates: &[f64]) -> f64 {
        let mx = rates.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mn = rates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        mx - mn
    }
}

/// Golden-section maximization of a unimodal function on `[a, b]`.
fn golden_max(f: impl Fn(f64) -> f64, mut a: f64, mut b: f64, tol: f64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = f(d);
        }
    }
    (a + b) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_peak() {
        let x = golden_max(|x| -(x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-9);
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fair_split_is_nash_equilibrium() {
        // Lemma A.2/A.3: the fair split at capacity admits no profitable
        // unilateral deviation.
        let game = DroptailGame::new(48.0);
        for n in [2usize, 3, 5] {
            let fair = vec![48.0 / n as f64; n];
            let gain = game.max_deviation_gain(&fair);
            assert!(gain < 1e-3, "n={n}: deviation gain {gain}");
        }
    }

    #[test]
    fn best_response_dynamics_reach_capacity() {
        // Best responses alone reach an efficient point (S ≈ C); fairness
        // additionally needs the rate-control dynamics of Lemma A.4 —
        // see `libra_dynamics_converge_to_fair_share`.
        let game = DroptailGame::new(48.0);
        let a = game.best_response_dynamics(&[0.5, 40.0], 100);
        let s: f64 = a.iter().sum();
        assert!((s - 48.0).abs() < 0.5, "S = {s}");
        assert!(game.max_deviation_gain(&a) < 1e-3);
    }

    #[test]
    fn libra_dynamics_converge_to_fair_share() {
        // Lemma A.4: consistent multiplicative adjustments contract rate
        // differences, so even wildly unfair starts converge to the fair
        // share at capacity.
        let dyn_ = LibraDynamics::new(48.0);
        for start in [vec![0.5, 40.0], vec![30.0, 1.0, 5.0], vec![2.0; 4]] {
            let rates = dyn_.run(&start, 400);
            let spread = LibraDynamics::spread(&rates);
            assert!(
                spread < 0.05,
                "start {start:?} → {rates:?} (spread {spread})"
            );
            let s: f64 = rates.iter().sum();
            assert!((0.7 * 48.0..=1.3 * 48.0).contains(&s), "S = {s}");
        }
    }

    #[test]
    fn libra_dynamics_contract_differences_monotonically() {
        // The Lemma A.4 invariant: |x_i − x_j| never grows — constant
        // through additive probes, shrunk by multiplicative decreases.
        let dyn_ = LibraDynamics::new(24.0);
        let mut rates = vec![1.0, 20.0];
        let mut prev = LibraDynamics::abs_diff(&rates);
        for _ in 0..300 {
            dyn_.step(&mut rates);
            let d = LibraDynamics::abs_diff(&rates);
            assert!(d <= prev + 1e-9, "difference grew: {d} > {prev}");
            prev = d;
        }
        assert!(prev < 0.5, "difference should shrink substantially: {prev}");
    }

    #[test]
    fn total_rate_at_least_capacity() {
        // Lemma A.1: any equilibrium has S ≥ C.
        let game = DroptailGame::new(24.0);
        for n in [2usize, 4] {
            let rates = game.best_response_dynamics(&vec![1.0; n], 80);
            let s: f64 = rates.iter().sum();
            assert!(s >= 24.0 * 0.999, "S = {s}");
        }
    }

    #[test]
    fn equilibrium_overshoot_is_moderate() {
        // The concave utility keeps the operating point near capacity
        // (bounded standing queue), rather than far above it.
        let game = DroptailGame::new(48.0);
        let rates = game.best_response_dynamics(&[1.0; 2], 80);
        let s: f64 = rates.iter().sum();
        assert!(s < 1.5 * 48.0, "S = {s}");
    }

    #[test]
    fn symmetric_equilibrium_matches_dynamics() {
        let game = DroptailGame::new(96.0);
        let x = game.symmetric_equilibrium(3);
        let rates = game.best_response_dynamics(&[1.0, 10.0, 30.0], 100);
        let mean = rates.iter().sum::<f64>() / 3.0;
        assert!((x - mean).abs() < 0.05 * mean, "{x} vs {mean}");
    }

    #[test]
    fn below_capacity_increase_always_pays() {
        // Lemma A.1's driver: while S < C utility strictly grows in x_i.
        let game = DroptailGame::new(48.0);
        let u1 = game.utility_of(10.0, 20.0);
        let u2 = game.utility_of(15.0, 20.0);
        assert!(u2 > u1);
    }
}
