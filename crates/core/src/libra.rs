//! The Libra controller: the three-stage control cycle of Alg. 1.
//!
//! ```text
//!        ┌────────────── one control cycle ──────────────────┐
//!        │ EXPLORE (k RTT)   EVAL (2 EIs)    EXPLOIT (k RTT) │
//! rate:  │ classic from      x_lo then x_hi  x_prev          │
//!        │ base x_prev       (lower first)                   │
//!        │ RL acts per MI                                    │
//!        └───────────────────────────────────────────────────┘
//! ```
//!
//! * **Exploration** — the applied rate follows the classic CCA's per-ACK
//!   updates starting from the base rate `x_prev`; the RL component makes
//!   per-MI decisions as a backup. Exploration exits early when the two
//!   candidates diverge by more than `switch_frac × x_prev`.
//! * **Evaluation** — the two candidate rates are each applied for one
//!   evaluation interval, *lower rate first* to avoid the self-inflicted
//!   side effect of Fig. 4; the exploration stage's statistics are folded
//!   into `u(x_prev)`.
//! * **Exploitation** — the sender returns to `x_prev` while the
//!   candidates' ACKs arrive; the first two exploitation MIs carry the
//!   feedback of the two evaluation intervals (one RTT late), and at the
//!   end of the stage the candidate with the highest utility becomes the
//!   next cycle's base rate.
//!
//! The DRL agent only runs during exploration — the source of Libra's
//! overhead reduction (Remark 5).

use crate::accounting::{Candidate, CycleLog, CycleRecord};
use crate::guardrail::Guardrail;
use crate::params::LibraParams;
use libra_classic::{Bbr, Cubic};
use libra_learned::{RlCca, RlCcaConfig};
use libra_rl::{PpoAgent, PpoConfig};
use libra_types::trace::{CandidateKind, CandidateSample, GuardrailStep, TraceEvent, TraceStage};
use libra_types::{
    cca::rate_based_cwnd, AckEvent, CongestionControl, Duration, Instant, LossEvent, MiStats, Rate,
    SendEvent, Tracer,
};
use std::cell::RefCell;
use std::rc::Rc;

/// RTT-gradient noise floor for the evaluation stage's utility inputs.
///
/// With β = 900, a measurement-noise gradient of ±0.002 already swings
/// the utility by more than the whole throughput term, turning candidate
/// selection into a coin flip (and, because the RL candidate can propose
/// ×½ while the classic proposes at most ×1.25, a coin flip is an
/// exponentially *collapsing* random walk). The kernel implementation
/// reads its gradient from the smoothed RTT, which denoises implicitly;
/// here small measured slopes are clamped to zero before Eq. 1. Real
/// congestion produces gradients of ≈(S−C)/C ≈ 0.1–0.3, far above the
/// floor.
const GRAD_NOISE_FLOOR: f64 = 0.01;

fn denoise_gradient(g: f64) -> f64 {
    if g.abs() < GRAD_NOISE_FLOOR {
        0.0
    } else {
        g
    }
}

/// The trace-level mirror of [`Candidate`].
fn trace_kind(c: Candidate) -> CandidateKind {
    match c {
        Candidate::Prev => CandidateKind::Prev,
        Candidate::Classic => CandidateKind::Classic,
        Candidate::Learned => CandidateKind::Learned,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    /// Follow the classic CCA's startup (slow start / BBR STARTUP).
    Startup,
    /// Exploration stage; counts remaining EI-sized ticks.
    Explore { ticks_left: u32, early_exit: bool },
    /// Evaluation stage; `index` selects which ordered candidate is being
    /// applied.
    Eval { index: usize, early_exit: bool },
    /// Exploitation stage; `tick` counts from 0.
    Exploit { tick: u32, early_exit: bool },
}

/// Aggregate several exploration MIs into the statistics behind
/// `u(x_prev)`.
#[derive(Debug, Clone, Default)]
struct ExploreAgg {
    sent_bytes: u64,
    lost_bytes: u64,
    acked_bytes: u64,
    secs: f64,
    grad_weighted: f64,
    grad_weight: f64,
}

impl ExploreAgg {
    fn clear(&mut self) {
        *self = ExploreAgg::default();
    }

    fn add(&mut self, mi: &MiStats) {
        let d = mi.duration().as_secs_f64();
        self.sent_bytes += mi.sent_bytes;
        self.lost_bytes += mi.lost_bytes;
        self.acked_bytes += mi.acked_bytes;
        self.secs += d;
        self.grad_weighted += mi.rtt_gradient * d;
        self.grad_weight += d;
    }

    fn utility(&self, params: &libra_types::UtilityParams) -> Option<f64> {
        if self.acked_bytes == 0 || self.secs <= 0.0 {
            return None;
        }
        let rate_mbps = self.sent_bytes as f64 * 8.0 / self.secs / 1e6;
        let grad = if self.grad_weight > 0.0 {
            denoise_gradient(self.grad_weighted / self.grad_weight)
        } else {
            0.0
        };
        let denom = self.acked_bytes + self.lost_bytes;
        let loss = if denom > 0 {
            self.lost_bytes as f64 / denom as f64
        } else {
            0.0
        };
        Some(params.evaluate(rate_mbps, grad, loss))
    }
}

/// The Libra congestion controller (the paper's primary contribution).
pub struct Libra {
    name: &'static str,
    params: LibraParams,
    /// The inner classic CCA; `None` for Clean-Slate Libra.
    classic: Option<Box<dyn CongestionControl>>,
    /// The inner RL component (Sec. 4.2 formulation).
    rl: RlCca,
    stage: Stage,
    x_prev: Rate,
    /// Candidates in evaluation order (lower rate first).
    ordered: Vec<(Candidate, Rate)>,
    /// Utilities measured for `ordered` candidates via exploitation-stage
    /// feedback.
    measured: Vec<Option<f64>>,
    /// Whether each candidate's evaluation MI actually put data on the
    /// wire. Exploitation feedback for a candidate whose EI sent nothing
    /// (blackout, pacer stall) describes *other* traffic and is rejected,
    /// keeping the tick→index mapping honest.
    eval_sent: Vec<bool>,
    u_prev: Option<f64>,
    explore_agg: ExploreAgg,
    log: CycleLog,
    srtt: Duration,
    now: Instant,
    cycles: u64,
    guardrail: Guardrail,
    /// `rl.invalid_actions()` as of the previous observation, so each MI
    /// feeds only the delta to the guardrail.
    rl_invalid_seen: u64,
    /// `rl.fallback_ticks()` as of the previous observation; deltas are
    /// emitted as [`TraceEvent::Fallback`] witnesses of the ladder's
    /// stale-action rung.
    rl_fallback_seen: u64,
    /// Structured decision tracing; disabled (one branch per emit site)
    /// unless the host attaches a sink.
    tracer: Tracer,
}

impl Libra {
    /// PPO geometry Libra's RL component needs.
    pub fn ppo_config() -> PpoConfig {
        RlCcaConfig::libra_rl().ppo_config()
    }

    /// C-Libra: CUBIC underneath, 1-RTT stages.
    pub fn c_libra(agent: Rc<RefCell<PpoAgent>>) -> Self {
        Libra::with_classic(
            "C-Libra",
            Box::new(Cubic::new(1500)),
            LibraParams::for_cubic(),
            agent,
        )
    }

    /// B-Libra: BBR underneath, 3-RTT exploration/exploitation.
    pub fn b_libra(agent: Rc<RefCell<PpoAgent>>) -> Self {
        Libra::with_classic(
            "B-Libra",
            Box::new(Bbr::new(1500)),
            LibraParams::for_bbr(),
            agent,
        )
    }

    /// Clean-Slate Libra: the framework without a classic CCA (the CL
    /// benchmark that motivates the combination).
    pub fn clean_slate(agent: Rc<RefCell<PpoAgent>>) -> Self {
        let rl = RlCca::new(RlCcaConfig::libra_rl(), agent);
        let params = LibraParams::for_cubic();
        Libra {
            name: "CL-Libra",
            params,
            classic: None,
            rl,
            stage: Stage::Startup,
            x_prev: Rate::from_mbps(2.0),
            ordered: Vec::new(),
            measured: Vec::new(),
            eval_sent: Vec::new(),
            u_prev: None,
            explore_agg: ExploreAgg::default(),
            log: CycleLog::new(),
            srtt: Duration::ZERO,
            now: Instant::ZERO,
            cycles: 0,
            guardrail: Guardrail::new(params.guardrail),
            rl_invalid_seen: 0,
            rl_fallback_seen: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Libra over an arbitrary classic CCA (Sec. 7's Westwood/Illinois
    /// extension).
    pub fn with_classic(
        name: &'static str,
        classic: Box<dyn CongestionControl>,
        params: LibraParams,
        agent: Rc<RefCell<PpoAgent>>,
    ) -> Self {
        let rl = RlCca::new(RlCcaConfig::libra_rl(), agent);
        Libra {
            name,
            params,
            classic: Some(classic),
            rl,
            stage: Stage::Startup,
            x_prev: Rate::from_mbps(2.0),
            ordered: Vec::new(),
            measured: Vec::new(),
            eval_sent: Vec::new(),
            u_prev: None,
            explore_agg: ExploreAgg::default(),
            log: CycleLog::new(),
            srtt: Duration::ZERO,
            now: Instant::ZERO,
            cycles: 0,
            guardrail: Guardrail::new(params.guardrail),
            rl_invalid_seen: 0,
            rl_fallback_seen: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Swap in an application-preference utility profile (Fig. 11).
    pub fn with_preference(mut self, pref: libra_types::Preference) -> Self {
        self.params = self.params.with_preference(pref);
        self
    }

    /// Override the cycle parameters (the Fig. 19 / Tab. 7 sensitivity
    /// sweeps).
    pub fn with_params(mut self, params: LibraParams) -> Self {
        self.params = params;
        self.guardrail = Guardrail::new(params.guardrail);
        self
    }

    /// Cycle telemetry.
    pub fn log(&self) -> &CycleLog {
        &self.log
    }

    /// Completed control cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// RL inference count (overhead telemetry).
    pub fn rl_decisions(&self) -> u64 {
        self.rl.decisions()
    }

    /// Current base sending rate.
    pub fn base_rate(&self) -> Rate {
        self.x_prev
    }

    /// Times the guardrail tripped into degraded mode.
    pub fn guardrail_trips(&self) -> u64 {
        self.guardrail.trips()
    }

    /// Total time spent in degraded mode (decisions pinned to the
    /// classic arm), including a still-open episode.
    pub fn degraded_time(&self) -> Duration {
        self.guardrail.degraded_time(self.now)
    }

    /// Times the RL arm was re-probed after a degraded period.
    pub fn rl_reprobes(&self) -> u64 {
        self.guardrail.reprobes()
    }

    /// Is the RL arm currently benched by the guardrail?
    pub fn is_degraded(&self) -> bool {
        self.guardrail.is_degraded()
    }

    /// RL actions rejected as non-finite (delegated telemetry).
    pub fn rl_invalid_actions(&self) -> u64 {
        self.rl.invalid_actions()
    }

    /// Missing/invalid RL responses bridged by the degradation ladder's
    /// last-good action replay (delegated telemetry).
    pub fn rl_fallback_ticks(&self) -> u64 {
        self.rl.fallback_ticks()
    }

    fn effective_srtt(&self) -> Duration {
        self.srtt.max(Duration::from_millis(10))
    }

    fn classic_rate(&self) -> Rate {
        match &self.classic {
            Some(c) => c.rate_estimate(self.effective_srtt()),
            None => self.x_prev,
        }
    }

    /// The rate Libra is applying right now, per stage.
    fn applied_rate(&self) -> Rate {
        match self.stage {
            // During exploration the classic's *pacing* behaviour applies
            // (BBR's probing gains included — Sec. 4.3 inherits the first
            // three RTTs of its gain cycle); `x_cl` as a candidate remains
            // the gain-stripped estimate.
            Stage::Startup | Stage::Explore { .. } => match &self.classic {
                Some(c) => c.pacing_rate().unwrap_or_else(|| self.classic_rate()),
                None => self.x_prev,
            },
            Stage::Eval { index, .. } => self
                .ordered
                .get(index)
                .map(|&(_, r)| r)
                .unwrap_or(self.x_prev),
            Stage::Exploit { .. } => self.x_prev,
        }
    }

    /// Rate-finiteness invariant (`checked-invariants` feature): after
    /// every ACK both the base rate and the stage-applied rate must be
    /// finite and positive. A NaN or infinite rate here would silently
    /// poison utility comparisons for the rest of the cycle.
    #[cfg(feature = "checked-invariants")]
    fn check_rate_sanity(&self) {
        let base = self.x_prev.mbps();
        assert!(
            base.is_finite() && base > 0.0,
            "libra base rate x_prev non-finite or non-positive after ACK: {base}"
        );
        let applied = self.applied_rate().mbps();
        assert!(
            applied.is_finite() && applied >= 0.0,
            "libra applied rate non-finite or negative after ACK: {applied}"
        );
    }

    #[cfg(not(feature = "checked-invariants"))]
    #[inline(always)]
    fn check_rate_sanity(&self) {}

    fn begin_cycle(&mut self) {
        self.explore_agg.clear();
        self.ordered.clear();
        self.measured.clear();
        self.eval_sent.clear();
        self.u_prev = None;
        let srtt = self.effective_srtt();
        if let Some(c) = &mut self.classic {
            c.set_rate(self.x_prev, srtt);
        }
        self.rl.set_rate(self.x_prev, srtt);
        self.stage = Stage::Explore {
            ticks_left: self.params.explore_ticks(),
            early_exit: false,
        };
        // While degraded the cycle machinery idles (the classic arm has
        // control), so the stage timeline stays in `Degraded` even though
        // the stage field is reset for the eventual re-probe.
        if !self.guardrail.is_degraded() {
            self.emit_stage(TraceStage::Explore);
        }
    }

    fn emit_stage(&self, stage: TraceStage) {
        self.tracer.emit_with(|| TraceEvent::StageEnter {
            flow: self.tracer.flow(),
            at_ns: self.now.nanos(),
            stage,
        });
    }

    fn emit_guardrail(&self, step: GuardrailStep) {
        self.tracer.emit_with(|| TraceEvent::Guardrail {
            flow: self.tracer.flow(),
            at_ns: self.now.nanos(),
            step,
        });
    }

    fn enter_eval(&mut self, early_exit: bool) {
        // A non-finite aggregate (degenerate inputs) is treated as
        // missing feedback, never stored: a starved or broken exploration
        // must not masquerade as a −∞ measurement.
        self.u_prev = self
            .explore_agg
            .utility(&self.params.utility)
            .filter(|u| u.is_finite());
        let x_rl = self.rl.current_rate();
        let mut cands = vec![(Candidate::Learned, x_rl)];
        if self.classic.is_some() {
            cands.push((Candidate::Classic, self.classic_rate()));
        }
        // Lower rate first (Sec. 4.1's evaluation-order principle);
        // the reverse order exists only as an ablation. `total_cmp` keeps
        // the sort well-defined even if a candidate rate were ever NaN.
        cands.sort_by(|a, b| a.1.mbps().total_cmp(&b.1.mbps()));
        if self.params.eval_order == crate::params::EvalOrder::HigherFirst {
            cands.reverse();
        }
        self.measured = vec![None; cands.len()];
        self.eval_sent = vec![false; cands.len()];
        self.ordered = cands;
        self.stage = Stage::Eval {
            index: 0,
            early_exit,
        };
        self.emit_stage(TraceStage::Eval);
    }

    fn decide(&mut self, early_exit: bool) {
        let mut u_classic = None;
        let mut u_learned = None;
        for (i, &(cand, _)) in self.ordered.iter().enumerate() {
            match cand {
                Candidate::Classic => u_classic = self.measured[i],
                Candidate::Learned => u_learned = self.measured[i],
                Candidate::Prev => {}
            }
        }
        // Highest utility wins; missing feedback falls back to x_prev
        // (the Sec. 3 no-ACK rule). Ties favour x_prev (stability).
        // A NaN utility can never win: `u > best` is false for NaN.
        let mut winner = Candidate::Prev;
        let mut best = self.u_prev.unwrap_or(f64::NEG_INFINITY);
        let mut rate = self.x_prev;
        for (i, &(cand, r)) in self.ordered.iter().enumerate() {
            if let Some(u) = self.measured[i] {
                if u > best {
                    best = u;
                    winner = cand;
                    rate = r;
                }
            }
        }
        self.log.push(CycleRecord {
            at: self.now,
            u_prev: self.u_prev,
            u_classic,
            u_learned,
            winner,
            rate_mbps: rate.mbps(),
            early_exit,
        });
        self.tracer.emit_with(|| TraceEvent::CycleDecision {
            flow: self.tracer.flow(),
            at_ns: self.now.nanos(),
            candidates: self
                .ordered
                .iter()
                .zip(&self.measured)
                .map(|(&(cand, r), &utility)| CandidateSample {
                    kind: trace_kind(cand),
                    rate_mbps: r.mbps(),
                    utility,
                })
                .collect(),
            u_prev: self.u_prev,
            winner: trace_kind(winner),
            rate_mbps: rate.mbps(),
            early_exit,
        });
        let trips_before = self.guardrail.trips();
        self.guardrail.on_cycle(self.now, u_learned, u_classic);
        if self.guardrail.trips() > trips_before {
            self.emit_guardrail(GuardrailStep::Trip);
            self.emit_stage(TraceStage::Degraded);
        }
        self.x_prev = rate.max(Rate::from_kbps(80.0));
        self.cycles += 1;
        // When the cycle just tripped the guardrail, degraded mode takes
        // over on the next MI; begin_cycle still resets the machinery so
        // the re-probe resumes cleanly.
        self.begin_cycle();
    }

    fn divergence_trips(&self) -> bool {
        if self.classic.is_none() {
            return false;
        }
        let th = self.x_prev.scale(self.params.switch_frac);
        self.classic_rate().abs_diff(self.rl.current_rate()) >= th && !th.is_zero()
    }

    /// The Explore-stage bookkeeping that follows the RL decision
    /// (inline or resolved): fold the MI into `u(x_prev)`'s aggregate and
    /// feed rejected-action deltas to the guardrail. Returns `true` when
    /// the guardrail just benched the RL arm — the tick must stop there.
    fn explore_post_rl(&mut self, mi: &MiStats) -> bool {
        self.explore_agg.add(mi);
        // Feed rejected-action deltas to the guardrail; a streak of
        // non-finite actions benches the RL arm.
        let invalid = self.rl.invalid_actions();
        let delta = invalid - self.rl_invalid_seen;
        self.rl_invalid_seen = invalid;
        if delta > 0 {
            self.tracer.emit_with(|| TraceEvent::RlInvalidActions {
                flow: self.tracer.flow(),
                at_ns: self.now.nanos(),
                count: delta,
            });
        }
        // Witness the ladder's stale-action rung: missing/invalid
        // responses the RL member bridged with its last-good action.
        let fallback = self.rl.fallback_ticks();
        let fallback_delta = fallback - self.rl_fallback_seen;
        self.rl_fallback_seen = fallback;
        if fallback_delta > 0 {
            self.tracer.emit_with(|| TraceEvent::Fallback {
                flow: self.tracer.flow(),
                at_ns: self.now.nanos(),
                ticks: fallback_delta,
            });
        }
        let trips_before = self.guardrail.trips();
        self.guardrail.on_invalid_actions(self.now, delta);
        if self.guardrail.is_degraded() {
            if self.guardrail.trips() > trips_before {
                self.emit_guardrail(GuardrailStep::Trip);
                self.emit_stage(TraceStage::Degraded);
            }
            return true;
        }
        false
    }

    /// Advance the Explore stage by one tick: divergence early-exit,
    /// countdown, or transition into Eval.
    fn explore_advance(&mut self, ticks_left: u32, early_exit: bool) {
        let left = ticks_left.saturating_sub(1);
        if self.divergence_trips() {
            self.enter_eval(true);
        } else if left == 0 {
            self.enter_eval(early_exit);
        } else {
            self.stage = Stage::Explore {
                ticks_left: left,
                early_exit,
            };
        }
    }

    /// The per-MI stage machine, shared by the inline path
    /// ([`CongestionControl::on_mi`], `out = None`) and the two-phase
    /// submit/resolve boundary (`out = Some(buf)`).
    ///
    /// In two-phase mode an Explore tick with a pending RL decision
    /// writes the RL state vector into `buf` and returns `true`; the tick
    /// then completes in [`CongestionControl::mi_resolve`] with the
    /// policy server's action. Every other stage (and every tick the RL
    /// component skips) runs to completion here and returns `false`.
    /// Both modes execute the identical operation sequence — the
    /// bit-identity contract of the batched policy server.
    fn mi_step(&mut self, mi: &MiStats, out: Option<&mut Vec<f64>>) -> bool {
        self.now = mi.end;
        // Degraded mode: the classic arm has full control (see
        // `cwnd_bytes`/`pacing_rate`); the cycle machinery idles while
        // the guardrail counts down its backoff. On re-probe the PPO
        // weights are validated (and restored from the last good
        // snapshot if corrupt) before the cycle resumes.
        if self.guardrail.is_degraded() {
            if self.classic.is_some() {
                // Track the classic arm so the next cycle resumes from a
                // sane base rate.
                self.x_prev = self.classic_rate();
            }
            if self.guardrail.tick_degraded(self.now) {
                self.emit_guardrail(GuardrailStep::Reprobe);
                let bound = self.params.guardrail.weight_norm_bound;
                let restores_before = self.rl.agent().borrow().weight_restores();
                self.rl.agent().borrow_mut().validate_or_restore(bound);
                if self.rl.agent().borrow().weight_restores() > restores_before {
                    self.emit_guardrail(GuardrailStep::Restore);
                }
                // Discard rejections accrued before the bench.
                self.rl_invalid_seen = self.rl.invalid_actions();
                self.rl_fallback_seen = self.rl.fallback_ticks();
                self.begin_cycle();
            } else {
                self.emit_guardrail(GuardrailStep::DegradedTick);
            }
            return false;
        }
        match self.stage {
            Stage::Startup => {
                let done = match &self.classic {
                    Some(c) => !c.in_startup(),
                    None => !mi.is_ack_starved(),
                };
                if done {
                    self.x_prev = match &self.classic {
                        Some(_) => self.classic_rate(),
                        None => mi.delivery_rate.max(Rate::from_mbps(1.0)),
                    };
                    self.begin_cycle();
                }
                false
            }
            Stage::Explore {
                ticks_left,
                early_exit,
            } => {
                if !mi.is_ack_starved() {
                    // RL acts (this is where Libra pays for inference).
                    match out {
                        Some(buf) => {
                            if self.rl.mi_submit(mi, buf) {
                                // Decision pending at the policy server;
                                // the tick completes in `mi_resolve`.
                                return true;
                            }
                            // RL skipped inference (its own startup);
                            // the tick completes inline.
                        }
                        None => self.rl.on_mi(mi),
                    }
                    if self.explore_post_rl(mi) {
                        return false;
                    }
                } // else: skip the RL action, keep x_rl (Sec. 3).
                self.explore_advance(ticks_left, early_exit);
                false
            }
            Stage::Eval { index, early_exit } => {
                // This MI applied `ordered[index]`; its feedback arrives
                // during the exploitation stage. The index advances
                // exactly once per evaluation MI — also for a starved
                // one, to keep the positional tick→index mapping — but a
                // candidate whose EI put nothing on the wire is flagged
                // so the late feedback slot is rejected rather than
                // credited with another interval's traffic.
                if index < self.eval_sent.len() {
                    self.eval_sent[index] = mi.sent_bytes > 0;
                }
                if index + 1 < self.ordered.len() {
                    self.stage = Stage::Eval {
                        index: index + 1,
                        early_exit,
                    };
                } else {
                    self.stage = Stage::Exploit {
                        tick: 0,
                        early_exit,
                    };
                    self.emit_stage(TraceStage::Exploit);
                }
                false
            }
            Stage::Exploit { tick, early_exit } => {
                // Exploitation MIs 0..n carry the candidates' feedback
                // (their ACKs arrive one RTT after the EIs). Feedback is
                // accepted only when the candidate's own EI sent data;
                // a non-finite utility is missing feedback, not a value.
                let idx = tick as usize;
                if idx < self.ordered.len() && self.eval_sent[idx] && !mi.is_ack_starved() {
                    let x = self.ordered[idx].1.mbps();
                    let u = self.params.utility.evaluate(
                        x,
                        denoise_gradient(mi.rtt_gradient),
                        mi.loss_rate,
                    );
                    if u.is_finite() {
                        self.measured[idx] = Some(u);
                    }
                }
                let next = tick + 1;
                if next >= self.params.exploit_ticks().max(self.ordered.len() as u32) {
                    self.decide(early_exit);
                } else {
                    self.stage = Stage::Exploit {
                        tick: next,
                        early_exit,
                    };
                }
                false
            }
        }
    }
}

impl CongestionControl for Libra {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_send(&mut self, ev: &SendEvent) {
        if let Some(c) = &mut self.classic {
            c.on_send(ev);
        }
        self.rl.on_send(ev);
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
        self.now = ev.now;
        if let Some(c) = &mut self.classic {
            c.on_ack(ev);
        }
        // The RL component's per-ACK bookkeeping is cheap (EWMAs only);
        // its expensive inference runs per-MI during exploration.
        self.rl.on_ack(ev);
        self.check_rate_sanity();
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        self.now = ev.now;
        if let Some(c) = &mut self.classic {
            c.on_loss(ev);
        }
        self.rl.on_loss(ev);
    }

    fn on_mi(&mut self, mi: &MiStats) {
        self.mi_step(mi, None);
    }

    fn mi_submit(&mut self, stats: &MiStats, policy_state: &mut Vec<f64>) -> bool {
        self.mi_step(stats, Some(policy_state))
    }

    fn mi_resolve(&mut self, stats: &MiStats, action: &[f64]) {
        // Complete the Explore tick suspended in `mi_submit`: apply the
        // policy server's action, then run exactly the bookkeeping the
        // inline path would have run after `rl.on_mi`.
        self.rl.mi_resolve(stats, action);
        if let Stage::Explore {
            ticks_left,
            early_exit,
        } = self.stage
        {
            if self.explore_post_rl(stats) {
                return;
            }
            self.explore_advance(ticks_left, early_exit);
        }
    }

    fn mi_duration(&self, srtt: Duration) -> Duration {
        let base = match self.stage {
            Stage::Startup => srtt,
            _ => srtt.mul_f64(self.params.ei_rtts),
        };
        base.max(Duration::from_millis(5))
    }

    fn cwnd_bytes(&self) -> u64 {
        if self.guardrail.is_degraded() {
            return match &self.classic {
                Some(c) => c.cwnd_bytes(),
                None => rate_based_cwnd(self.x_prev, self.effective_srtt(), 1500),
            };
        }
        match (&self.stage, &self.classic) {
            (Stage::Startup, Some(c)) => c.cwnd_bytes(),
            _ => rate_based_cwnd(self.applied_rate(), self.effective_srtt(), 1500),
        }
    }

    fn pacing_rate(&self) -> Option<Rate> {
        if self.guardrail.is_degraded() {
            return match &self.classic {
                Some(c) => c.pacing_rate().or(Some(self.classic_rate())),
                None => Some(self.x_prev),
            };
        }
        match (&self.stage, &self.classic) {
            (Stage::Startup, Some(c)) => c.pacing_rate().or(Some(self.classic_rate())),
            _ => Some(self.applied_rate()),
        }
    }

    fn rate_estimate(&self, _srtt: Duration) -> Rate {
        self.x_prev
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.x_prev = rate;
        if let Some(c) = &mut self.classic {
            c.set_rate(rate, srtt);
        }
        self.rl.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.stage == Stage::Startup
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        // Anchor the stage timeline: the controller starts in startup.
        self.emit_stage(TraceStage::Startup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::DetRng;

    fn agent(seed: u64) -> Rc<RefCell<PpoAgent>> {
        let mut rng = DetRng::new(seed);
        let mut a = PpoAgent::new(Libra::ppo_config(), &mut rng);
        a.set_eval(true);
        Rc::new(RefCell::new(a))
    }

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    fn mi(start_ms: u64, end_ms: u64, rate_mbps: f64, rtt_ms: u64, loss: f64) -> MiStats {
        let dur_s = (end_ms - start_ms) as f64 / 1e3;
        let sent = (rate_mbps * 1e6 / 8.0 * dur_s) as u64;
        MiStats {
            start: Instant::from_millis(start_ms),
            end: Instant::from_millis(end_ms),
            sent_bytes: sent,
            acked_bytes: (sent as f64 * (1.0 - loss)) as u64,
            lost_bytes: (sent as f64 * loss) as u64,
            acks: 10,
            sending_rate: Rate::from_mbps(rate_mbps),
            delivery_rate: Rate::from_mbps(rate_mbps * (1.0 - loss)),
            avg_rtt: Duration::from_millis(rtt_ms),
            mi_min_rtt: Duration::from_millis(rtt_ms),
            mi_max_rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(50),
            rtt_gradient: 0.0,
            loss_rate: loss,
        }
    }

    /// Push a Libra instance out of startup into its cycle.
    fn into_cycle(l: &mut Libra) {
        // Feed ACKs + a loss so CUBIC leaves slow start.
        for k in 0..20 {
            l.on_ack(&ack(k, 50));
        }
        if l.classic.is_some() {
            l.on_loss(&LossEvent {
                now: Instant::from_millis(30),
                seq: 0,
                bytes: 1500,
                in_flight: 0,
                kind: libra_types::LossKind::FastRetransmit,
            });
        }
        l.on_mi(&mi(0, 50, 5.0, 50, 0.0));
        assert!(!l.in_startup(), "should have entered the cycle");
    }

    #[test]
    fn startup_delegates_to_classic() {
        let mut l = Libra::c_libra(agent(1));
        assert!(l.in_startup());
        l.on_ack(&ack(10, 50));
        // cwnd comes from CUBIC's slow start.
        assert!(l.cwnd_bytes() >= 10 * 1500);
    }

    #[test]
    fn full_cycle_produces_record() {
        let mut l = Libra::c_libra(agent(2));
        into_cycle(&mut l);
        // k=1, EI=0.5: explore 2 ticks, eval 2 ticks, exploit 2 ticks.
        let mut t = 100;
        for _ in 0..6 {
            l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
            t += 25;
        }
        assert_eq!(l.cycles(), 1, "one full cycle");
        assert_eq!(l.log().len(), 1);
        let rec = l.log().records()[0];
        assert!(rec.u_classic.is_some());
        assert!(rec.u_learned.is_some());
    }

    #[test]
    fn lower_rate_evaluated_first() {
        let mut l = Libra::c_libra(agent(3));
        into_cycle(&mut l);
        // Run exploration (2 ticks).
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        match l.stage {
            Stage::Eval { index: 0, .. } => {}
            s => panic!("expected eval, got {s:?}"),
        }
        assert!(l.ordered.len() == 2);
        assert!(l.ordered[0].1 <= l.ordered[1].1, "lower rate first");
        // Applied rate during the first EI is the lower candidate.
        assert_eq!(l.pacing_rate().unwrap(), l.ordered[0].1);
    }

    #[test]
    fn winner_with_loss_free_feedback_beats_lossy() {
        let mut l = Libra::c_libra(agent(4));
        into_cycle(&mut l);
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        let lo = l.ordered[0].1;
        // Eval ticks.
        l.on_mi(&mi(150, 175, lo.mbps(), 50, 0.0));
        l.on_mi(&mi(175, 200, l.ordered[1].1.mbps(), 50, 0.0));
        // Exploit tick 0: clean feedback for the low candidate; tick 1:
        // heavy loss for the high one.
        l.on_mi(&mi(200, 225, 5.0, 50, 0.0));
        l.on_mi(&mi(225, 250, 5.0, 50, 0.5));
        assert_eq!(l.cycles(), 1);
        let rec = l.log().records()[0];
        // The high candidate's measured utility must be the lossy one —
        // and the winner must not be the high candidate.
        let hi_cand = l.ordered.last();
        let _ = hi_cand;
        assert!(
            rec.winner == Candidate::Prev
                || rec.rate_mbps <= lo.mbps() + 1e-9
                || rec.best_utility().is_some_and(|u| u > 0.0)
        );
        // best_utility is a real measurement here, never a −∞ fabrication.
        assert!(rec.best_utility().expect("measured cycle").is_finite());
        // The lossy candidate cannot have won with utility below x_prev's.
        if let (Some(ucl), Some(url)) = (rec.u_classic, rec.u_learned) {
            let u_prev = rec.u_prev.expect("exploration had feedback");
            let max_u = ucl.max(url).max(u_prev);
            let won_u = match rec.winner {
                Candidate::Prev => u_prev,
                Candidate::Classic => ucl,
                Candidate::Learned => url,
            };
            assert!((won_u - max_u).abs() < 1e-9, "winner has max utility");
        }
    }

    #[test]
    fn ack_starved_feedback_falls_back_to_prev() {
        let mut l = Libra::c_libra(agent(5));
        into_cycle(&mut l);
        let x_prev = l.base_rate();
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        // Eval ticks happen...
        l.on_mi(&mi(150, 175, 5.0, 50, 0.0));
        l.on_mi(&mi(175, 200, 5.0, 50, 0.0));
        // ...but all exploitation feedback is ACK-starved.
        l.on_mi(&MiStats::empty(Instant::from_millis(225)));
        l.on_mi(&MiStats::empty(Instant::from_millis(250)));
        assert_eq!(l.cycles(), 1);
        let rec = l.log().records()[0];
        assert_eq!(rec.winner, Candidate::Prev);
        assert!(l.base_rate().abs_diff(x_prev) < Rate::from_kbps(1.0));
    }

    #[test]
    fn starved_eval_mi_rejects_misattributed_feedback() {
        let mut l = Libra::c_libra(agent(30));
        into_cycle(&mut l);
        // Explore (2 ticks).
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        let first = l.ordered[0].0;
        let second = l.ordered[1].0;
        // Candidate 0's evaluation MI puts nothing on the wire (blackout
        // or pacer stall); candidate 1's is normal. The index still
        // advances, keeping the positional mapping.
        l.on_mi(&MiStats::empty(Instant::from_millis(175)));
        l.on_mi(&mi(175, 200, l.ordered[1].1.mbps(), 50, 0.0));
        // Both exploitation MIs carry ACKs (from other in-flight data).
        // Tick 0 must NOT be credited to the candidate that never sent.
        l.on_mi(&mi(200, 225, 5.0, 50, 0.0));
        l.on_mi(&mi(225, 250, 5.0, 50, 0.0));
        assert_eq!(l.cycles(), 1);
        let rec = l.log().records()[0];
        let u_of = |c: Candidate| match c {
            Candidate::Classic => rec.u_classic,
            Candidate::Learned => rec.u_learned,
            Candidate::Prev => rec.u_prev,
        };
        assert_eq!(u_of(first), None, "dead EI must yield no feedback");
        assert!(u_of(second).is_some(), "live EI keeps its feedback slot");
    }

    #[test]
    fn guardrail_sequence_traced_in_exact_order() {
        // Same scenario as `reprobe_restores_snapshot_and_recovers`, but
        // asserted through the trace: the exact event order must be
        // trip → degraded ticks → re-probe → restore.
        let a = agent(31);
        a.borrow_mut().snapshot_good();
        a.borrow_mut().map_actor_params(|_| f64::NAN);
        let mut l = Libra::c_libra(Rc::clone(&a));
        let (tracer, recorder) = Tracer::ring(4096, 0);
        l.attach_tracer(tracer);
        into_cycle(&mut l);
        let mut t = 100;
        for _ in 0..40 {
            l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
            t += 25;
        }
        assert_eq!(l.guardrail_trips(), 1);
        assert!(!l.is_degraded(), "restored weights keep the arm healthy");
        let steps: Vec<GuardrailStep> = recorder
            .borrow()
            .events()
            .filter_map(|e| match e {
                TraceEvent::Guardrail { step, .. } => Some(*step),
                _ => None,
            })
            .collect();
        let ticks = steps
            .iter()
            .filter(|&&s| s == GuardrailStep::DegradedTick)
            .count();
        assert!(ticks >= 1, "backoff must be observable tick by tick");
        let mut expected = vec![GuardrailStep::Trip];
        expected.extend(std::iter::repeat_n(GuardrailStep::DegradedTick, ticks));
        expected.push(GuardrailStep::Reprobe);
        expected.push(GuardrailStep::Restore);
        assert_eq!(steps, expected, "exact transition order");
        // The stage timeline mirrors it: Degraded entered at the trip,
        // Explore re-entered after the restore.
        let stages: Vec<TraceStage> = recorder
            .borrow()
            .events()
            .filter_map(|e| match e {
                TraceEvent::StageEnter { stage, .. } => Some(*stage),
                _ => None,
            })
            .collect();
        let deg = stages
            .iter()
            .position(|&s| s == TraceStage::Degraded)
            .expect("degraded stage traced");
        assert!(
            stages[deg + 1..].contains(&TraceStage::Explore),
            "cycle resumes after restore: {stages:?}"
        );
        // The NaN policy's rejections are themselves on the timeline.
        assert!(recorder
            .borrow()
            .events()
            .any(|e| matches!(e, TraceEvent::RlInvalidActions { count, .. } if *count > 0)));
    }

    #[test]
    fn divergence_threshold_exits_early() {
        let mut l = Libra::b_libra(agent(6));
        // BBR exploration is 6 ticks; force divergence after entering.
        // Drive BBR out of startup organically is slow; use set_rate vía
        // the Startup bypass: feed acks then bypass via clean check.
        for k in 0..200 {
            l.on_ack(&ack(k, 50));
        }
        // Force cycle start regardless of BBR's internal state.
        l.x_prev = Rate::from_mbps(10.0);
        l.begin_cycle();
        // Make the RL rate diverge hard from the classic.
        l.rl.set_rate(Rate::from_mbps(40.0), Duration::from_millis(50));
        l.on_mi(&mi(100, 125, 10.0, 50, 0.0));
        match l.stage {
            Stage::Eval { early_exit, .. } => assert!(early_exit),
            s => panic!("expected early eval, got {s:?}"),
        }
    }

    #[test]
    fn clean_slate_has_single_candidate() {
        let mut l = Libra::clean_slate(agent(7));
        assert!(l.in_startup());
        l.on_ack(&ack(10, 50));
        l.on_mi(&mi(0, 50, 5.0, 50, 0.0)); // leaves startup
        assert!(!l.in_startup());
        // Explore 2 ticks.
        l.on_mi(&mi(50, 75, 5.0, 50, 0.0));
        l.on_mi(&mi(75, 100, 5.0, 50, 0.0));
        assert_eq!(l.ordered.len(), 1);
        // One eval tick, then exploit.
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        l.on_mi(&mi(150, 175, 5.0, 50, 0.0));
        assert_eq!(l.cycles(), 1);
        let rec = l.log().records()[0];
        assert!(rec.u_classic.is_none());
    }

    #[test]
    fn rl_only_acts_during_exploration() {
        let mut l = Libra::c_libra(agent(8));
        into_cycle(&mut l);
        let d0 = l.rl_decisions();
        // Exploration ticks: RL acts.
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        let d1 = l.rl_decisions();
        assert!(d1 > d0);
        // Eval + exploit ticks: RL idle.
        l.on_mi(&mi(150, 175, 5.0, 50, 0.0));
        l.on_mi(&mi(175, 200, 5.0, 50, 0.0));
        l.on_mi(&mi(200, 225, 5.0, 50, 0.0));
        l.on_mi(&mi(225, 250, 5.0, 50, 0.0));
        // Next cycle began: at most the new exploration ticks could add.
        assert_eq!(l.rl_decisions(), d1, "no RL inference outside exploration");
    }

    #[test]
    fn submit_resolve_cycle_matches_inline_bitwise() {
        // Two identical Libras: one driven inline, one through the
        // two-phase boundary with a stand-in policy server (eval
        // inference on the submitted state). Cycle decisions and base
        // rates must stay bit-identical.
        let a = agent(40);
        let b = agent(40);
        let mut inline = Libra::c_libra(Rc::clone(&a));
        let mut split = Libra::c_libra(Rc::clone(&b));
        into_cycle(&mut inline);
        into_cycle(&mut split);
        let mut state = Vec::new();
        let mut submitted = 0;
        let mut t = 100;
        for _ in 0..24 {
            let stats = mi(t, t + 25, 5.0, 50, 0.0);
            inline.on_mi(&stats);
            if split.mi_submit(&stats, &mut state) {
                submitted += 1;
                let action = b.borrow_mut().act(&state);
                split.mi_resolve(&stats, &action);
            }
            t += 25;
        }
        assert!(submitted > 0, "exploration ticks must submit");
        assert_eq!(inline.cycles(), split.cycles());
        assert!(inline.cycles() >= 3, "several full cycles compared");
        assert_eq!(inline.rl_decisions(), split.rl_decisions());
        assert_eq!(
            inline.base_rate().mbps().to_bits(),
            split.base_rate().mbps().to_bits(),
            "split path must be bit-identical to inline"
        );
    }

    #[test]
    fn nan_policy_trips_guardrail_and_pins_to_classic() {
        let a = agent(20);
        a.borrow_mut().map_actor_params(|_| f64::NAN);
        let mut l = Libra::c_libra(Rc::clone(&a));
        into_cycle(&mut l);
        let mut t = 100;
        // Every exploration MI draws a NaN action; three rejections in a
        // row bench the RL arm.
        for _ in 0..8 {
            l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
            t += 25;
        }
        assert_eq!(l.guardrail_trips(), 1);
        assert!(l.is_degraded());
        assert!(l.rl_invalid_actions() >= 3);
        // Decisions are pinned to the classic arm while degraded.
        let classic_cwnd = l.classic.as_ref().map(|c| c.cwnd_bytes());
        assert_eq!(Some(l.cwnd_bytes()), classic_cwnd);
        // Time spent degraded is observable.
        l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
        assert!(l.degraded_time() > Duration::ZERO);
    }

    #[test]
    fn reprobe_restores_snapshot_and_recovers() {
        let a = agent(21);
        a.borrow_mut().snapshot_good();
        a.borrow_mut().map_actor_params(|_| f64::NAN);
        let mut l = Libra::c_libra(Rc::clone(&a));
        into_cycle(&mut l);
        let mut t = 100;
        for _ in 0..40 {
            l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
            t += 25;
        }
        assert_eq!(l.guardrail_trips(), 1);
        assert!(l.rl_reprobes() >= 1, "backoff elapsed and re-probed");
        assert!(!l.is_degraded(), "restored weights keep the arm healthy");
        assert_eq!(a.borrow().weight_restores(), 1);
        // No further rejections after the restore.
        let invalid = l.rl_invalid_actions();
        for _ in 0..12 {
            l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
            t += 25;
        }
        assert_eq!(l.rl_invalid_actions(), invalid);
        assert_eq!(l.guardrail_trips(), 1, "no re-trip");
    }

    #[test]
    fn unrecoverable_policy_retrips_with_longer_backoff() {
        // No snapshot: every re-probe meets the same NaN network, so the
        // guardrail must re-trip and back off exponentially.
        let a = agent(22);
        a.borrow_mut().map_actor_params(|_| f64::NAN);
        let mut l = Libra::c_libra(Rc::clone(&a));
        into_cycle(&mut l);
        let mut t = 100;
        for _ in 0..120 {
            l.on_mi(&mi(t, t + 25, 5.0, 50, 0.0));
            t += 25;
        }
        assert!(l.guardrail_trips() >= 2, "trips: {}", l.guardrail_trips());
        assert!(l.rl_reprobes() >= 1);
        assert!(l.degraded_time() > Duration::ZERO);
        assert_eq!(a.borrow().weight_restores(), 0, "nothing to restore");
    }

    #[test]
    fn utility_regression_trips_degraded_mode() {
        let params = LibraParams {
            guardrail: crate::guardrail::GuardrailParams {
                max_utility_regressions: 1,
                ..Default::default()
            },
            ..LibraParams::for_cubic()
        };
        let mut l = Libra::c_libra(agent(23)).with_params(params);
        into_cycle(&mut l);
        // Explore.
        l.on_mi(&mi(100, 125, 5.0, 50, 0.0));
        l.on_mi(&mi(125, 150, 5.0, 50, 0.0));
        let learned_idx = l
            .ordered
            .iter()
            .position(|&(c, _)| c == Candidate::Learned)
            .unwrap();
        // Eval ticks.
        l.on_mi(&mi(150, 175, 5.0, 50, 0.0));
        l.on_mi(&mi(175, 200, 5.0, 50, 0.0));
        // Exploit: heavy loss lands on the learned candidate's feedback.
        let mut t = 200;
        for tick in 0..2 {
            let loss = if tick == learned_idx { 0.5 } else { 0.0 };
            l.on_mi(&mi(t, t + 25, 5.0, 50, loss));
            t += 25;
        }
        assert_eq!(l.cycles(), 1);
        assert_eq!(l.guardrail_trips(), 1, "one measured regression trips");
        assert!(l.is_degraded());
    }

    #[test]
    fn preference_profile_is_applied() {
        let l = Libra::c_libra(agent(9)).with_preference(libra_types::Preference::Throughput2);
        assert_eq!(l.params.utility.alpha, 3.0);
    }

    #[test]
    fn mi_duration_is_half_srtt_in_cycle() {
        let mut l = Libra::c_libra(agent(10));
        into_cycle(&mut l);
        assert_eq!(
            l.mi_duration(Duration::from_millis(100)),
            Duration::from_millis(50)
        );
    }
}
