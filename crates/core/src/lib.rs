// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-core`: the paper's primary contribution — the Libra unified
//! congestion-control framework (CoNEXT'21).
//!
//! Libra combines a classic CCA (CUBIC or BBR) with a PPO-based learned
//! CCA through a three-stage control cycle — **explore**, **evaluate**,
//! **exploit** — arbitrated by the utility function of Eq. 1:
//!
//! ```text
//! u(x) = α·x^t − β·x·max(0, dRTT/dt) − γ·x·L
//! ```
//!
//! * [`Libra`] — the controller (C-Libra, B-Libra, Clean-Slate, or any
//!   classic CCA via [`Libra::with_classic`]).
//! * [`LibraParams`] — stage durations, EI length, switch threshold, and
//!   application-preference profiles.
//! * [`guardrail`] — runtime health tracking for the learned arm:
//!   degraded mode, exponential-backoff re-probing, weight validation.
//! * [`accounting`] — per-cycle telemetry (decision fractions, utilities).
//! * [`equilibrium`] — numeric verification of Theorem 4.1's unique fair
//!   Nash equilibrium.
//! * [`train`] — in-framework PPO training over randomized networks.
//!
//! # Quick example
//!
//! ```
//! use libra_core::{Libra, train::LibraVariant};
//! use libra_rl::PpoAgent;
//! use libra_types::DetRng;
//! use std::{cell::RefCell, rc::Rc};
//!
//! let mut rng = DetRng::new(42);
//! let agent = Rc::new(RefCell::new(PpoAgent::new(Libra::ppo_config(), &mut rng)));
//! let libra = Libra::c_libra(agent);
//! assert_eq!(libra_types::CongestionControl::name(&libra), "C-Libra");
//! ```

pub mod accounting;
pub mod equilibrium;
pub mod guardrail;
pub mod libra;
pub mod params;
pub mod train;

pub use accounting::{Candidate, CycleLog, CycleRecord};
pub use equilibrium::DroptailGame;
pub use guardrail::{Guardrail, GuardrailParams};
pub use libra::Libra;
pub use params::{EvalOrder, LibraParams};
pub use train::{quick_train_config, train_libra, LibraTrainResult, LibraVariant};
