//! TCP NewReno: the canonical AIMD loss-based controller (RFC 6582
//! congestion behaviour, without the retransmission machinery — the
//! simulator handles detection).

use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};

/// Shared AIMD bookkeeping used by Reno-family controllers (Reno,
/// Westwood, Illinois, Vegas's loss reaction). Tracks slow start,
/// once-per-round loss reaction and window/ssthresh state in MSS-sized
/// floating-point units.
#[derive(Debug, Clone)]
pub(crate) struct AimdState {
    /// Congestion window in packets (fractional).
    pub cwnd: f64,
    /// Slow-start threshold in packets.
    pub ssthresh: f64,
    /// Segment size in bytes.
    pub mss: u64,
    /// Smoothed RTT from the last ACK.
    pub srtt: Duration,
    /// End of the current loss-recovery round: further losses until this
    /// time cause no additional reduction.
    pub recovery_until: Instant,
    /// Floor for the window.
    pub min_cwnd: f64,
}

impl AimdState {
    pub fn new(mss: u64) -> Self {
        AimdState {
            cwnd: 10.0, // RFC 6928 initial window
            ssthresh: f64::INFINITY,
            mss,
            srtt: Duration::ZERO,
            recovery_until: Instant::ZERO,
            min_cwnd: 2.0,
        }
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    pub fn note_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
    }

    /// True if this loss should trigger a reduction (first loss in the
    /// round); arms the round guard when it fires.
    pub fn should_reduce(&mut self, now: Instant) -> bool {
        if now < self.recovery_until {
            return false;
        }
        self.recovery_until = now + self.srtt.max(Duration::from_millis(1));
        true
    }

    pub fn cwnd_bytes(&self) -> u64 {
        (self.cwnd.max(self.min_cwnd) * self.mss as f64) as u64
    }

    pub fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        let bytes = rate.bytes_in(srtt).max(self.min_cwnd as u64 * self.mss);
        self.cwnd = bytes as f64 / self.mss as f64;
        if self.ssthresh < self.cwnd {
            self.ssthresh = self.cwnd;
        }
    }
}

/// TCP NewReno.
#[derive(Debug, Clone)]
pub struct NewReno {
    state: AimdState,
}

impl NewReno {
    /// Standard configuration with the given MSS.
    pub fn new(mss: u64) -> Self {
        NewReno {
            state: AimdState::new(mss),
        }
    }

    /// Current window in packets (for tests and telemetry).
    pub fn cwnd_packets(&self) -> f64 {
        self.state.cwnd
    }
}

impl Default for NewReno {
    fn default() -> Self {
        NewReno::new(1500)
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "NewReno"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.state.note_ack(ev);
        let s = &mut self.state;
        if s.in_slow_start() {
            s.cwnd += ev.bytes as f64 / s.mss as f64;
        } else {
            // 1 packet per cwnd of ACKed data.
            s.cwnd += (ev.bytes as f64 / s.mss as f64) / s.cwnd;
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        let s = &mut self.state;
        match ev.kind {
            LossKind::FastRetransmit => {
                if s.should_reduce(ev.now) {
                    s.ssthresh = (s.cwnd / 2.0).max(s.min_cwnd);
                    s.cwnd = s.ssthresh;
                }
            }
            LossKind::Timeout => {
                s.ssthresh = (s.cwnd / 2.0).max(s.min_cwnd);
                s.cwnd = s.min_cwnd;
                s.recovery_until = ev.now + s.srtt.max(Duration::from_millis(1));
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        self.state.cwnd_bytes()
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.state.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.state.in_slow_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::{ack, loss};

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = NewReno::new(1500);
        let w0 = r.cwnd_packets();
        // One window of ACKs.
        for i in 0..10 {
            r.on_ack(&ack(i, 1500, 50));
        }
        assert!((r.cwnd_packets() - 2.0 * w0).abs() < 1e-9);
        assert!(r.in_startup());
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut r = NewReno::new(1500);
        // Exit slow start via a loss.
        r.on_ack(&ack(0, 1500, 50));
        r.on_loss(&loss(1, LossKind::FastRetransmit));
        let w = r.cwnd_packets();
        assert!(!r.in_startup());
        let acks = w.round() as u64;
        for i in 0..acks {
            r.on_ack(&ack(100 + i, 1500, 50));
        }
        assert!(
            (r.cwnd_packets() - (w + 1.0)).abs() < 0.1,
            "{} vs {}",
            r.cwnd_packets(),
            w + 1.0
        );
    }

    #[test]
    fn loss_halves_once_per_round() {
        let mut r = NewReno::new(1500);
        for i in 0..20 {
            r.on_ack(&ack(i, 1500, 50));
        }
        let w = r.cwnd_packets();
        r.on_loss(&loss(25, LossKind::FastRetransmit));
        assert!((r.cwnd_packets() - w / 2.0).abs() < 1e-9);
        // Second loss in the same round: no further reduction.
        r.on_loss(&loss(30, LossKind::FastRetransmit));
        assert!((r.cwnd_packets() - w / 2.0).abs() < 1e-9);
        // After the round guard expires, reductions resume.
        r.on_loss(&loss(100, LossKind::FastRetransmit));
        assert!((r.cwnd_packets() - w / 4.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut r = NewReno::new(1500);
        for i in 0..30 {
            r.on_ack(&ack(i, 1500, 50));
        }
        r.on_loss(&loss(40, LossKind::Timeout));
        assert!((r.cwnd_packets() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_rate_rebases_window() {
        let mut r = NewReno::new(1500);
        r.on_ack(&ack(0, 1500, 100));
        // 12 Mbps × 100 ms = 150 kB = 100 packets.
        r.set_rate(Rate::from_mbps(12.0), Duration::from_millis(100));
        assert!((r.cwnd_packets() - 100.0).abs() < 0.01);
        assert_eq!(r.cwnd_bytes(), 150_000);
        // ssthresh was raised so we do not slow-start wildly from there.
        assert!(!r.in_startup() || r.cwnd_packets() <= 100.0);
    }

    #[test]
    fn cwnd_never_below_floor() {
        let mut r = NewReno::new(1500);
        for k in 0..50 {
            r.on_loss(&loss(k * 1000, LossKind::Timeout));
        }
        assert!(r.cwnd_bytes() >= 2 * 1500);
    }
}
