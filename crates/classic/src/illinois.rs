//! TCP Illinois (Liu et al., 2006): loss-based AIMD whose additive
//! increase α and multiplicative decrease β are functions of the average
//! queueing delay — large α / small β when the queue is empty, the
//! reverse near saturation. Another Sec. 7 "pluggable classic".

use crate::reno::AimdState;
use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};

const ALPHA_MAX: f64 = 10.0;
const ALPHA_MIN: f64 = 0.3;
const BETA_MIN: f64 = 0.125;
const BETA_MAX: f64 = 0.5;
/// Fraction of the maximum queueing delay below which α = α_max.
const D1_FRAC: f64 = 0.01;

/// TCP Illinois.
#[derive(Debug, Clone)]
pub struct Illinois {
    state: AimdState,
    min_rtt: Duration,
    max_rtt: Duration,
    // Per-round RTT averaging.
    rtt_sum_ns: u128,
    rtt_count: u32,
    round_end: Instant,
    alpha: f64,
    beta: f64,
}

impl Illinois {
    /// Standard Illinois with the given MSS.
    pub fn new(mss: u64) -> Self {
        Illinois {
            state: AimdState::new(mss),
            min_rtt: Duration::MAX,
            max_rtt: Duration::ZERO,
            rtt_sum_ns: 0,
            rtt_count: 0,
            round_end: Instant::ZERO,
            alpha: 1.0,
            beta: BETA_MAX,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.state.cwnd
    }

    /// Current additive-increase parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current multiplicative-decrease parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    fn update_params(&mut self) {
        if self.rtt_count == 0 || self.min_rtt == Duration::MAX {
            return;
        }
        let avg = Duration::from_nanos((self.rtt_sum_ns / self.rtt_count as u128) as u64);
        let da = avg.saturating_sub(self.min_rtt).as_secs_f64(); // current queueing delay
        let dm = self.max_rtt.saturating_sub(self.min_rtt).as_secs_f64(); // max observed
        if dm <= 0.0 {
            self.alpha = ALPHA_MAX;
            self.beta = BETA_MIN;
            return;
        }
        let d1 = D1_FRAC * dm;
        // α: α_max at low delay, decaying as κ1/(κ2 + da) beyond d1.
        self.alpha = if da <= d1 {
            ALPHA_MAX
        } else {
            // κ1, κ2 chosen so the curve is continuous at d1 and equals
            // α_min at dm (standard Illinois construction).
            let k1 = (dm - d1) * ALPHA_MAX * ALPHA_MIN / (ALPHA_MAX - ALPHA_MIN);
            let k2 = k1 / ALPHA_MAX - d1;
            (k1 / (k2 + da)).clamp(ALPHA_MIN, ALPHA_MAX)
        };
        // β: linear from β_min at 10 % of dm to β_max at 80 %.
        let lo = 0.1 * dm;
        let hi = 0.8 * dm;
        self.beta = if da <= lo {
            BETA_MIN
        } else if da >= hi {
            BETA_MAX
        } else {
            BETA_MIN + (BETA_MAX - BETA_MIN) * (da - lo) / (hi - lo)
        };
    }
}

impl Default for Illinois {
    fn default() -> Self {
        Illinois::new(1500)
    }
}

impl CongestionControl for Illinois {
    fn name(&self) -> &'static str {
        "Illinois"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.state.note_ack(ev);
        self.min_rtt = self.min_rtt.min(ev.rtt);
        self.max_rtt = self.max_rtt.max(ev.rtt);
        self.rtt_sum_ns += ev.rtt.nanos() as u128;
        self.rtt_count += 1;
        if ev.now >= self.round_end {
            self.update_params();
            self.rtt_sum_ns = 0;
            self.rtt_count = 0;
            self.round_end = ev.now + ev.srtt.max(Duration::from_millis(1));
        }
        let pkts = ev.bytes as f64 / self.state.mss as f64;
        if self.state.in_slow_start() {
            self.state.cwnd += pkts;
        } else {
            self.state.cwnd += self.alpha * pkts / self.state.cwnd;
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                if self.state.should_reduce(ev.now) {
                    self.state.cwnd =
                        (self.state.cwnd * (1.0 - self.beta)).max(self.state.min_cwnd);
                    self.state.ssthresh = self.state.cwnd;
                }
            }
            LossKind::Timeout => {
                self.state.ssthresh = (self.state.cwnd / 2.0).max(self.state.min_cwnd);
                self.state.cwnd = self.state.min_cwnd;
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        self.state.cwnd_bytes()
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.state.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.state.in_slow_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    fn prime(ill: &mut Illinois) {
        // Establish min = 50 ms, max = 150 ms, then leave slow start.
        for k in 0..10 {
            ill.on_ack(&ack(k * 60, 50));
        }
        for k in 10..20 {
            ill.on_ack(&ack(k * 60, 150));
        }
        ill.on_loss(&LossEvent {
            now: Instant::from_secs(2),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        assert!(!ill.in_startup());
    }

    #[test]
    fn alpha_high_when_delay_low() {
        let mut ill = Illinois::new(1500);
        prime(&mut ill);
        // Two rounds at base RTT → α should rise to α_max.
        for k in 0..20 {
            ill.on_ack(&ack(3000 + k * 60, 50));
        }
        assert!(
            (ill.alpha() - ALPHA_MAX).abs() < 1e-9,
            "alpha {}",
            ill.alpha()
        );
        assert!((ill.beta() - BETA_MIN).abs() < 1e-9, "beta {}", ill.beta());
    }

    #[test]
    fn alpha_low_when_delay_high() {
        let mut ill = Illinois::new(1500);
        prime(&mut ill);
        for k in 0..20 {
            ill.on_ack(&ack(3000 + k * 160, 150));
        }
        assert!(ill.alpha() < 1.0, "alpha {}", ill.alpha());
        assert!((ill.beta() - BETA_MAX).abs() < 1e-9, "beta {}", ill.beta());
    }

    #[test]
    fn growth_faster_at_low_delay() {
        let mut a = Illinois::new(1500);
        let mut b = Illinois::new(1500);
        prime(&mut a);
        prime(&mut b);
        let (wa0, wb0) = (a.cwnd_packets(), b.cwnd_packets());
        for k in 0..50 {
            a.on_ack(&ack(3000 + k * 60, 50)); // empty queue
            b.on_ack(&ack(3000 + k * 160, 150)); // full queue
        }
        assert!(
            a.cwnd_packets() - wa0 > 2.0 * (b.cwnd_packets() - wb0),
            "low-delay growth {} vs high-delay {}",
            a.cwnd_packets() - wa0,
            b.cwnd_packets() - wb0
        );
    }

    #[test]
    fn decrease_scales_with_beta() {
        let mut ill = Illinois::new(1500);
        prime(&mut ill);
        for k in 0..20 {
            ill.on_ack(&ack(3000 + k * 160, 150));
        }
        let w = ill.cwnd_packets();
        ill.on_loss(&LossEvent {
            now: Instant::from_secs(30),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        assert!(
            (ill.cwnd_packets() - w * 0.5).abs() < 1e-6,
            "{} vs {}",
            ill.cwnd_packets(),
            w * 0.5
        );
    }
}
