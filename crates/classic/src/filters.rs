//! Windowed min/max filters — the estimators behind BBR's max-bandwidth
//! and min-RTT tracking.

use libra_types::{Duration, Instant};
use std::collections::VecDeque;

/// Tracks the maximum of a signal over a sliding time window.
#[derive(Debug, Clone)]
pub struct WindowedMax {
    window: Duration,
    // (time, value), values strictly decreasing front → back.
    samples: VecDeque<(Instant, f64)>,
}

impl WindowedMax {
    /// Max over the trailing `window`.
    pub fn new(window: Duration) -> Self {
        WindowedMax {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Change the window length (BBR scales it with the RTT).
    pub fn set_window(&mut self, window: Duration) {
        self.window = window;
    }

    /// Insert a sample at `now`.
    pub fn update(&mut self, now: Instant, value: f64) {
        while self.samples.back().is_some_and(|&(_, v)| v <= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, value));
        self.expire(now);
    }

    fn expire(&mut self, now: Instant) {
        let cutoff = now - self.window;
        while self.samples.front().is_some_and(|&(t, _)| t < cutoff) {
            self.samples.pop_front();
        }
    }

    /// Current windowed maximum (`None` before any sample).
    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// Drop all state (used when Libra re-bases BBR).
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Tracks the minimum of a signal over a sliding time window.
#[derive(Debug, Clone)]
pub struct WindowedMin {
    window: Duration,
    samples: VecDeque<(Instant, f64)>,
}

impl WindowedMin {
    /// Min over the trailing `window`.
    pub fn new(window: Duration) -> Self {
        WindowedMin {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Insert a sample at `now`.
    pub fn update(&mut self, now: Instant, value: f64) {
        while self.samples.back().is_some_and(|&(_, v)| v >= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, value));
        let cutoff = now - self.window;
        while self.samples.front().is_some_and(|&(t, _)| t < cutoff) {
            self.samples.pop_front();
        }
    }

    /// Current windowed minimum (`None` before any sample).
    pub fn get(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// Time of the current minimum sample (for probe-RTT expiry checks).
    pub fn time_of_min(&self) -> Option<Instant> {
        self.samples.front().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn max_tracks_and_expires() {
        let mut f = WindowedMax::new(Duration::from_millis(100));
        f.update(t(0), 5.0);
        f.update(t(10), 3.0);
        assert_eq!(f.get(), Some(5.0));
        f.update(t(50), 7.0);
        assert_eq!(f.get(), Some(7.0));
        // The 7.0 sample expires at 150+; a later smaller sample survives.
        f.update(t(160), 2.0);
        assert_eq!(f.get(), Some(2.0));
    }

    #[test]
    fn max_keeps_later_smaller_values() {
        let mut f = WindowedMax::new(Duration::from_millis(100));
        f.update(t(0), 10.0);
        f.update(t(20), 6.0);
        f.update(t(40), 8.0);
        // 6.0 was dominated by 8.0 and discarded; when 10.0 expires the
        // max falls to 8.0.
        f.update(t(110), 1.0);
        assert_eq!(f.get(), Some(8.0));
    }

    #[test]
    fn min_tracks_and_expires() {
        let mut f = WindowedMin::new(Duration::from_millis(100));
        f.update(t(0), 5.0);
        f.update(t(10), 8.0);
        assert_eq!(f.get(), Some(5.0));
        assert_eq!(f.time_of_min(), Some(t(0)));
        f.update(t(150), 9.0);
        assert_eq!(f.get(), Some(9.0));
    }

    #[test]
    fn reset_clears() {
        let mut f = WindowedMax::new(Duration::from_millis(100));
        f.update(t(0), 5.0);
        f.reset();
        assert_eq!(f.get(), None);
    }
}
