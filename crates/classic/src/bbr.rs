//! BBR v1 (Cardwell et al., CACM 2017): model-based congestion control
//! driven by windowed max-bandwidth and min-RTT estimates, with the
//! STARTUP → DRAIN → PROBE_BW (8-phase gain cycle) → PROBE_RTT state
//! machine. This is the classic CCA behind the paper's B-Libra.

use crate::filters::{WindowedMax, WindowedMin};
use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, Rate};

const STARTUP_GAIN: f64 = 2.885; // 2/ln(2)
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const CWND_GAIN: f64 = 2.0;
/// The PROBE_BW pacing-gain cycle; each phase lasts about one min-RTT.
pub const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
const BW_WINDOW_RTTS: u64 = 10;
const MIN_RTT_WINDOW: Duration = Duration::from_secs(10);
const PROBE_RTT_DURATION: Duration = Duration::from_millis(200);
const STARTUP_GROWTH_TARGET: f64 = 1.25;
const STARTUP_FULL_BW_ROUNDS: u32 = 3;

/// BBR state-machine phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrMode {
    /// Exponential bandwidth search (gain 2.885).
    Startup,
    /// Drain the startup queue (gain 1/2.885).
    Drain,
    /// Steady-state probing around the bandwidth estimate.
    ProbeBw,
    /// Periodic window collapse to refresh the min-RTT estimate.
    ProbeRtt,
}

/// BBR v1.
pub struct Bbr {
    mss: u64,
    mode: BbrMode,
    max_bw: WindowedMax,  // bytes/sec
    min_rtt: WindowedMin, // seconds
    /// Externally injected base bandwidth (Libra's `set_rate`); acts as a
    /// fresh bandwidth estimate until organic samples replace it.
    forced_bw: Option<f64>,
    cycle_index: usize,
    cycle_start: Instant,
    full_bw: f64,
    full_bw_count: u32,
    probe_rtt_done: Option<Instant>,
    /// When the min-RTT estimate last decreased (ProbeRTT staleness clock).
    min_rtt_stamp: Instant,
    prior_cwnd: u64,
    srtt: Duration,
    last_now: Instant,
}

impl Bbr {
    /// Standard BBR with the given MSS.
    pub fn new(mss: u64) -> Self {
        Bbr {
            mss,
            mode: BbrMode::Startup,
            max_bw: WindowedMax::new(Duration::from_secs(1)),
            min_rtt: WindowedMin::new(MIN_RTT_WINDOW),
            forced_bw: None,
            cycle_index: 0,
            cycle_start: Instant::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            probe_rtt_done: None,
            min_rtt_stamp: Instant::ZERO,
            prior_cwnd: 0,
            srtt: Duration::ZERO,
            last_now: Instant::ZERO,
        }
    }

    /// Current mode (for tests/telemetry).
    pub fn mode(&self) -> BbrMode {
        self.mode
    }

    /// Bandwidth estimate in bytes/sec.
    fn bw(&self) -> f64 {
        match (self.max_bw.get(), self.forced_bw) {
            (Some(organic), Some(forced)) => organic.max(forced),
            (Some(organic), None) => organic,
            (None, Some(forced)) => forced,
            // Nothing known yet: pace one initial window per assumed RTT.
            (None, None) => 10.0 * self.mss as f64 / 0.1,
        }
    }

    /// Min-RTT estimate.
    fn rtt(&self) -> Duration {
        self.min_rtt
            .get()
            .map(Duration::from_secs_f64)
            .unwrap_or(Duration::from_millis(100))
    }

    /// Bandwidth-delay product in bytes.
    fn bdp(&self) -> f64 {
        self.bw() * self.rtt().as_secs_f64()
    }

    fn pacing_gain(&self) -> f64 {
        match self.mode {
            BbrMode::Startup => STARTUP_GAIN,
            BbrMode::Drain => DRAIN_GAIN,
            BbrMode::ProbeBw => PROBE_BW_GAINS[self.cycle_index],
            BbrMode::ProbeRtt => 1.0,
        }
    }

    fn check_full_bw(&mut self) {
        let bw = self.bw();
        if bw >= self.full_bw * STARTUP_GROWTH_TARGET {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }

    fn advance_cycle(&mut self, now: Instant, in_flight: u64) {
        let phase_len = self.rtt();
        let elapsed = now.saturating_since(self.cycle_start);
        let gain = PROBE_BW_GAINS[self.cycle_index];
        // Leave 1.25 only after a full phase; leave 0.75 as soon as the
        // excess queue is drained.
        let advance = if gain == 0.75 {
            elapsed >= phase_len || (in_flight as f64) <= self.bdp()
        } else {
            elapsed >= phase_len
        };
        if advance {
            self.cycle_index = (self.cycle_index + 1) % PROBE_BW_GAINS.len();
            self.cycle_start = now;
        }
    }

    fn maybe_enter_probe_rtt(&mut self, now: Instant) {
        if self.mode == BbrMode::ProbeRtt {
            return;
        }
        // Stale means no *new or equal* minimum arrived for a full window —
        // newer-but-larger samples keep the filter fresh without keeping
        // the estimate fresh, so track the stamp separately.
        let stale = now.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW;
        if stale {
            self.prior_cwnd = self.cwnd_bytes();
            self.mode = BbrMode::ProbeRtt;
            self.probe_rtt_done = Some(now + PROBE_RTT_DURATION);
        }
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "BBR"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
        self.last_now = ev.now;
        // Update the model.
        let prior_min = self.min_rtt.get();
        self.min_rtt.update(ev.now, ev.rtt.as_secs_f64());
        if prior_min.is_none_or(|m| ev.rtt.as_secs_f64() <= m) {
            self.min_rtt_stamp = ev.now;
        }
        let sample = ev.delivery_rate_sample().bytes_per_sec();
        if sample > 0.0 && !ev.app_limited {
            self.max_bw.set_window(self.rtt() * BW_WINDOW_RTTS);
            self.max_bw.update(ev.now, sample);
            // Organic samples retire a forced base once they exceed it.
            if let Some(forced) = self.forced_bw {
                if sample >= forced {
                    self.forced_bw = None;
                }
            }
        }
        // State machine.
        match self.mode {
            BbrMode::Startup => {
                self.check_full_bw();
                if self.full_bw_count >= STARTUP_FULL_BW_ROUNDS {
                    self.mode = BbrMode::Drain;
                }
            }
            BbrMode::Drain => {
                if (ev.in_flight as f64) <= self.bdp() {
                    self.mode = BbrMode::ProbeBw;
                    self.cycle_index = 2; // start in a cruise phase
                    self.cycle_start = ev.now;
                }
            }
            BbrMode::ProbeBw => {
                self.advance_cycle(ev.now, ev.in_flight);
            }
            BbrMode::ProbeRtt => {
                if self.probe_rtt_done.is_some_and(|t| ev.now >= t) {
                    self.probe_rtt_done = None;
                    self.mode = if self.full_bw_count >= STARTUP_FULL_BW_ROUNDS {
                        BbrMode::ProbeBw
                    } else {
                        BbrMode::Startup
                    };
                    self.cycle_start = ev.now;
                }
            }
        }
        self.maybe_enter_probe_rtt(ev.now);
    }

    fn on_loss(&mut self, _ev: &LossEvent) {
        // BBR v1 does not treat loss as a congestion signal.
    }

    fn cwnd_bytes(&self) -> u64 {
        match self.mode {
            BbrMode::ProbeRtt => 4 * self.mss,
            _ => {
                let w = (CWND_GAIN * self.bdp()) as u64;
                w.max(4 * self.mss)
            }
        }
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(Rate::from_bps(self.pacing_gain() * self.bw() * 8.0))
    }

    fn rate_estimate(&self, _srtt: Duration) -> Rate {
        // Libra evaluates BBR's *estimated fair rate*, not the transient
        // probing gain: use the bandwidth estimate itself.
        Rate::from_bps(self.bw() * 8.0)
    }

    fn set_rate(&mut self, rate: Rate, _srtt: Duration) {
        // Libra re-bases BBR: the injected rate becomes a fresh bandwidth
        // estimate (organic samples will replace it as they arrive).
        self.max_bw.reset();
        self.forced_bw = Some(rate.bytes_per_sec());
        if self.mode == BbrMode::Startup {
            // A re-base implies the search phase is over.
            self.mode = BbrMode::ProbeBw;
            self.full_bw_count = STARTUP_FULL_BW_ROUNDS;
            self.full_bw = rate.bytes_per_sec();
        }
        // Restart the gain cycle at the probing phase: the paper's B-Libra
        // inherits the *first three RTTs* of BBR's control loop (1.25×,
        // 0.75×, 1×) into Libra's exploration stage — they "embody the
        // main function of the bandwidth probing procedure" (Sec. 4.3).
        // Without this, exploration cruises at gain 1 and the classic
        // candidate can never discover bandwidth above x_prev.
        if self.mode == BbrMode::ProbeBw {
            self.cycle_index = 0;
            self.cycle_start = self.last_now;
        }
    }

    fn in_startup(&self) -> bool {
        self.mode == BbrMode::Startup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(
        now_ms: u64,
        rtt_ms: u64,
        delivered_at_send: u64,
        delivered: u64,
        in_flight: u64,
    ) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms - rtt_ms),
            delivered_at_send,
            delivered,
            in_flight,
            app_limited: false,
        }
    }

    /// Feed ACKs implying a steady `mbps` delivery rate.
    fn feed_steady(bbr: &mut Bbr, mbps: f64, rtt_ms: u64, from_ms: u64, count: u64) -> u64 {
        let bytes_per_ms = mbps * 1e6 / 8.0 / 1e3;
        let mut delivered = (from_ms as f64 * bytes_per_ms) as u64;
        for k in 0..count {
            let now = from_ms + k;
            let at_send = ((now - rtt_ms) as f64 * bytes_per_ms) as u64;
            delivered = (now as f64 * bytes_per_ms) as u64;
            bbr.on_ack(&ack(now, rtt_ms, at_send, delivered, 50_000));
        }
        delivered
    }

    #[test]
    fn startup_exits_when_bw_plateaus() {
        let mut b = Bbr::new(1500);
        assert_eq!(b.mode(), BbrMode::Startup);
        feed_steady(&mut b, 10.0, 40, 50, 200);
        // Bandwidth stopped growing → Drain, then ProbeBW once inflight
        // is at/below BDP (we feed a large in_flight, so force it).
        assert_ne!(b.mode(), BbrMode::Startup, "should have left startup");
    }

    #[test]
    fn pacing_tracks_bandwidth_estimate() {
        let mut b = Bbr::new(1500);
        feed_steady(&mut b, 10.0, 40, 50, 300);
        // Reach ProbeBW by reporting small in_flight.
        b.on_ack(&ack(400, 40, 480_000, 500_000, 1500));
        let pr = b.pacing_rate().unwrap().mbps();
        // In ProbeBW, pacing gain ∈ [0.75, 1.25] around ~10 Mbps.
        assert!(pr > 6.0 && pr < 14.0, "pacing {pr}");
        // rate_estimate strips the gain.
        let est = b.rate_estimate(Duration::from_millis(40)).mbps();
        assert!((est - 10.0).abs() < 1.5, "estimate {est}");
    }

    #[test]
    fn cwnd_is_two_bdp() {
        let mut b = Bbr::new(1500);
        feed_steady(&mut b, 10.0, 40, 50, 300);
        b.on_ack(&ack(400, 40, 480_000, 500_000, 1500));
        // BDP = 10 Mbps × 40 ms = 50 kB → cwnd ≈ 100 kB.
        let w = b.cwnd_bytes() as f64;
        assert!((w - 100_000.0).abs() < 20_000.0, "cwnd {w}");
    }

    #[test]
    fn probe_bw_cycles_gains() {
        let mut b = Bbr::new(1500);
        feed_steady(&mut b, 10.0, 40, 50, 300);
        b.on_ack(&ack(400, 40, 480_000, 500_000, 1500));
        assert_eq!(b.mode(), BbrMode::ProbeBw);
        let mut seen = std::collections::HashSet::new();
        let mut delivered = 500_000u64;
        for k in 0..2000u64 {
            let now = 401 + k;
            delivered += 1250;
            b.on_ack(&ack(now, 40, delivered - 50_000, delivered, 40_000));
            let gain = b.pacing_gain();
            seen.insert((gain * 100.0) as i64);
        }
        assert!(seen.contains(&125), "never probed up: {seen:?}");
        assert!(seen.contains(&75), "never drained: {seen:?}");
        assert!(seen.contains(&100), "never cruised: {seen:?}");
    }

    #[test]
    fn loss_is_ignored() {
        let mut b = Bbr::new(1500);
        feed_steady(&mut b, 10.0, 40, 50, 200);
        let before = b.pacing_rate().unwrap();
        b.on_loss(&LossEvent {
            now: Instant::from_millis(300),
            seq: 0,
            bytes: 1500,
            in_flight: 10_000,
            kind: libra_types::LossKind::FastRetransmit,
        });
        assert_eq!(b.pacing_rate().unwrap(), before);
    }

    #[test]
    fn probe_rtt_collapses_cwnd() {
        let mut b = Bbr::new(1500);
        feed_steady(&mut b, 10.0, 40, 50, 300);
        // Push time past the 10 s min-RTT window without a new minimum
        // (RTT inflated to 60 ms so the old 40 ms min expires).
        let mut delivered = 500_000u64;
        for k in 0..220u64 {
            let now = 400 + k * 50;
            delivered += 1250 * 50;
            b.on_ack(&ack(now, 60, delivered - 75_000, delivered, 40_000));
            if b.mode() == BbrMode::ProbeRtt {
                break;
            }
        }
        assert_eq!(b.mode(), BbrMode::ProbeRtt);
        assert_eq!(b.cwnd_bytes(), 4 * 1500);
    }

    #[test]
    fn set_rate_rebases_estimate() {
        let mut b = Bbr::new(1500);
        feed_steady(&mut b, 10.0, 40, 50, 300);
        b.set_rate(Rate::from_mbps(4.0), Duration::from_millis(40));
        let est = b.rate_estimate(Duration::from_millis(40)).mbps();
        assert!((est - 4.0).abs() < 0.01, "est {est}");
        assert!(!b.in_startup());
        // Organic faster samples take over again.
        feed_steady(&mut b, 12.0, 40, 400, 300);
        let est2 = b.rate_estimate(Duration::from_millis(40)).mbps();
        assert!(est2 > 10.0, "est2 {est2}");
    }
}
