//! DCTCP (Alizadeh et al., SIGCOMM'10): ECN-proportional congestion
//! control for datacenters — one of the network-specific classic CCAs
//! Sec. 7 proposes plugging into Libra ("leverage new properties, e.g.
//! ECN marking … address more challenges, e.g. incast and extremely low
//! RTT in datacenters").
//!
//! DCTCP maintains `α`, an EWMA of the fraction of ECN-marked bytes per
//! RTT, and on a marked round reduces `cwnd ← cwnd·(1 − α/2)`: a full
//! buffer excursion behaves like Reno, a single mark barely moves the
//! window — keeping queues at the marking threshold.

use crate::reno::AimdState;
use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};

const G: f64 = 1.0 / 16.0; // α's EWMA gain (RFC 8257 default)

/// DCTCP congestion control. Requires an ECN-marking queue
/// (`LinkConfig::ecn` in the simulator); without marks it behaves like
/// Reno without multiplicative decrease triggers other than loss.
#[derive(Debug, Clone)]
pub struct Dctcp {
    state: AimdState,
    alpha: f64,
    acked_bytes_round: u64,
    marked_bytes_round: u64,
    round_end: Instant,
    reduced_this_round: bool,
}

impl Dctcp {
    /// Standard DCTCP with the given MSS.
    pub fn new(mss: u64) -> Self {
        Dctcp {
            state: AimdState::new(mss),
            alpha: 1.0, // conservative start (RFC 8257 §4.2)
            acked_bytes_round: 0,
            marked_bytes_round: 0,
            round_end: Instant::ZERO,
            reduced_this_round: false,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.state.cwnd
    }

    /// The marked-fraction estimate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn end_round(&mut self, now: Instant, srtt: Duration) {
        if self.acked_bytes_round > 0 {
            let frac = self.marked_bytes_round as f64 / self.acked_bytes_round as f64;
            self.alpha = (1.0 - G) * self.alpha + G * frac;
        }
        self.acked_bytes_round = 0;
        self.marked_bytes_round = 0;
        self.reduced_this_round = false;
        self.round_end = now + srtt.max(Duration::from_micros(100));
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Dctcp::new(1500)
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "DCTCP"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.state.note_ack(ev);
        self.acked_bytes_round += ev.bytes;
        if ev.now >= self.round_end {
            self.end_round(ev.now, ev.srtt);
        }
        // Reno-style growth between marks.
        let pkts = ev.bytes as f64 / self.state.mss as f64;
        if self.state.in_slow_start() {
            self.state.cwnd += pkts;
        } else {
            self.state.cwnd += pkts / self.state.cwnd;
        }
    }

    fn on_ecn(&mut self, ev: &AckEvent) {
        self.marked_bytes_round += ev.bytes;
        // Leave slow start on the first mark.
        if self.state.in_slow_start() {
            self.state.ssthresh = self.state.cwnd;
        }
        // One α-proportional reduction per round.
        if !self.reduced_this_round {
            self.reduced_this_round = true;
            self.state.cwnd = (self.state.cwnd * (1.0 - self.alpha / 2.0)).max(self.state.min_cwnd);
            self.state.ssthresh = self.state.cwnd;
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                if self.state.should_reduce(ev.now) {
                    self.state.ssthresh = (self.state.cwnd / 2.0).max(self.state.min_cwnd);
                    self.state.cwnd = self.state.ssthresh;
                }
            }
            LossKind::Timeout => {
                self.state.ssthresh = (self.state.cwnd / 2.0).max(self.state.min_cwnd);
                self.state.cwnd = self.state.min_cwnd;
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        self.state.cwnd_bytes()
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.state.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.state.in_slow_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ack;

    fn ecn_ack(now_ms: u64, bytes: u64, srtt_ms: u64) -> AckEvent {
        ack(now_ms, bytes, srtt_ms)
    }

    #[test]
    fn grows_like_reno_without_marks() {
        let mut d = Dctcp::new(1500);
        let w0 = d.cwnd_packets();
        for k in 0..10 {
            d.on_ack(&ack(k, 1500, 10));
        }
        assert!((d.cwnd_packets() - (w0 + 10.0)).abs() < 1e-9);
        assert!(d.in_startup());
    }

    #[test]
    fn alpha_tracks_mark_fraction() {
        let mut d = Dctcp::new(1500);
        // Several rounds with exactly half the bytes marked.
        let mut t = 0u64;
        for _round in 0..60 {
            for k in 0..10u64 {
                let ev = ecn_ack(t + k, 1500, 10);
                d.on_ack(&ev);
                if k % 2 == 0 {
                    d.on_ecn(&ev);
                }
            }
            t += 11;
        }
        assert!((d.alpha() - 0.5).abs() < 0.1, "alpha {}", d.alpha());
    }

    #[test]
    fn light_marking_gives_gentle_reduction() {
        let mut d = Dctcp::new(1500);
        // Drive α low: many clean rounds.
        let mut t = 0u64;
        for _ in 0..80 {
            for k in 0..10u64 {
                d.on_ack(&ack(t + k, 1500, 10));
            }
            t += 11;
        }
        let alpha = d.alpha();
        assert!(alpha < 0.02, "alpha {alpha}");
        let w = d.cwnd_packets();
        let ev = ecn_ack(t, 1500, 10);
        d.on_ecn(&ev);
        // Reduction is α/2 ≈ nothing, unlike Reno's 50 %.
        assert!(d.cwnd_packets() > 0.98 * w, "{} vs {w}", d.cwnd_packets());
    }

    #[test]
    fn heavy_marking_approaches_reno() {
        let mut d = Dctcp::new(1500); // α starts at 1.0 and decays slowly
        for k in 0..20 {
            d.on_ack(&ack(k, 1500, 10));
        }
        let w = d.cwnd_packets();
        let alpha = d.alpha();
        assert!(alpha > 0.8, "alpha should still be near 1: {alpha}");
        let ev = ecn_ack(30, 1500, 10);
        d.on_ecn(&ev);
        // Reduction is exactly cwnd·(1 − α/2) — close to Reno's halving.
        let expect = w * (1.0 - alpha / 2.0);
        assert!((d.cwnd_packets() - expect).abs() < 1e-9);
        assert!(d.cwnd_packets() < 0.65 * w);
    }

    #[test]
    fn one_reduction_per_round() {
        let mut d = Dctcp::new(1500);
        for k in 0..20 {
            d.on_ack(&ack(k, 1500, 10));
        }
        let ev = ecn_ack(30, 1500, 10);
        d.on_ecn(&ev);
        let w = d.cwnd_packets();
        d.on_ecn(&ev);
        d.on_ecn(&ev);
        assert_eq!(d.cwnd_packets(), w, "no compounding within a round");
    }

    #[test]
    fn loss_still_halves() {
        let mut d = Dctcp::new(1500);
        for k in 0..20 {
            d.on_ack(&ack(k, 1500, 10));
        }
        let w = d.cwnd_packets();
        d.on_loss(&crate::testutil::loss(30, LossKind::FastRetransmit));
        assert!((d.cwnd_packets() - w / 2.0).abs() < 1e-9);
    }
}
