//! TCP Vegas (Brakmo & Peterson, 1995): the archetypal delay-based CCA.
//! Once per RTT it compares expected vs. actual throughput and nudges the
//! window to keep a small number of packets (α..β) queued.

use crate::reno::AimdState;
use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};

const ALPHA: f64 = 2.0; // lower bound on queued packets
const BETA: f64 = 4.0; // upper bound on queued packets

/// TCP Vegas.
#[derive(Debug, Clone)]
pub struct Vegas {
    state: AimdState,
    base_rtt: Duration,
    round_end: Instant,
    rtt_sum_ns: u128,
    rtt_samples: u32,
}

impl Vegas {
    /// Standard Vegas with the given MSS.
    pub fn new(mss: u64) -> Self {
        Vegas {
            state: AimdState::new(mss),
            base_rtt: Duration::MAX,
            round_end: Instant::ZERO,
            rtt_sum_ns: 0,
            rtt_samples: 0,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.state.cwnd
    }

    fn round_decision(&mut self) {
        if self.rtt_samples == 0 || self.base_rtt == Duration::MAX {
            return;
        }
        let avg_rtt = Duration::from_nanos((self.rtt_sum_ns / self.rtt_samples as u128) as u64);
        let base = self.base_rtt.as_secs_f64();
        let actual = avg_rtt.as_secs_f64().max(base);
        // diff = cwnd·(1 − base/actual): packets sitting in the queue.
        let diff = self.state.cwnd * (1.0 - base / actual);
        if self.state.in_slow_start() {
            // Vegas slows its slow start: stop doubling once queueing shows.
            if diff > ALPHA {
                self.state.ssthresh = self.state.cwnd;
            }
            return;
        }
        if diff < ALPHA {
            self.state.cwnd += 1.0;
        } else if diff > BETA {
            self.state.cwnd = (self.state.cwnd - 1.0).max(self.state.min_cwnd);
            // Keep ssthresh at/below the window so the decrement does not
            // bounce straight back through slow-start growth.
            self.state.ssthresh = self.state.ssthresh.min(self.state.cwnd);
        }
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Vegas::new(1500)
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "Vegas"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.state.note_ack(ev);
        self.base_rtt = self.base_rtt.min(ev.rtt);
        self.rtt_sum_ns += ev.rtt.nanos() as u128;
        self.rtt_samples += 1;
        if self.state.in_slow_start() {
            self.state.cwnd += ev.bytes as f64 / self.state.mss as f64;
        }
        if ev.now >= self.round_end {
            self.round_decision();
            self.rtt_sum_ns = 0;
            self.rtt_samples = 0;
            self.round_end = ev.now + ev.srtt.max(Duration::from_millis(1));
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                if self.state.should_reduce(ev.now) {
                    self.state.ssthresh = (self.state.cwnd * 0.75).max(self.state.min_cwnd);
                    self.state.cwnd = self.state.ssthresh;
                }
            }
            LossKind::Timeout => {
                self.state.ssthresh = (self.state.cwnd / 2.0).max(self.state.min_cwnd);
                self.state.cwnd = self.state.min_cwnd;
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        self.state.cwnd_bytes()
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.state.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.state.in_slow_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    /// Drive Vegas out of slow start by showing queueing delay.
    fn leave_slow_start(v: &mut Vegas) {
        let mut t = 0;
        while v.in_startup() && t < 100_000 {
            // Inflated RTT (100 ms vs 50 ms base) signals queueing.
            v.on_ack(&ack(t, if t < 60 { 50 } else { 100 }));
            t += 10;
        }
        assert!(!v.in_startup());
    }

    #[test]
    fn grows_when_no_queueing() {
        let mut v = Vegas::new(1500);
        leave_slow_start(&mut v);
        let w = v.cwnd_packets();
        // Flat RTT at base → diff = 0 < α → +1 packet per round.
        let t0 = 200_000;
        for r in 0..5u64 {
            for k in 0..10 {
                v.on_ack(&ack(t0 + r * 50 + k, 50));
            }
        }
        assert!(
            v.cwnd_packets() > w,
            "should grow: {} vs {w}",
            v.cwnd_packets()
        );
    }

    #[test]
    fn shrinks_when_queue_builds() {
        let mut v = Vegas::new(1500);
        leave_slow_start(&mut v);
        let w = v.cwnd_packets();
        // RTT far above base → diff > β → −1 per round.
        let t0 = 200_000;
        for r in 0..5u64 {
            for k in 0..10 {
                v.on_ack(&ack(t0 + r * 200 + k, 200));
            }
        }
        assert!(
            v.cwnd_packets() < w,
            "should shrink: {} vs {w}",
            v.cwnd_packets()
        );
    }

    #[test]
    fn loss_reduces_window() {
        let mut v = Vegas::new(1500);
        leave_slow_start(&mut v);
        let w = v.cwnd_packets();
        v.on_loss(&LossEvent {
            now: Instant::from_secs(300),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        assert!((v.cwnd_packets() - 0.75 * w).abs() < 1e-9);
    }

    #[test]
    fn slow_start_caps_on_queueing() {
        let mut v = Vegas::new(1500);
        assert!(v.in_startup());
        leave_slow_start(&mut v);
        // Window stopped growing exponentially once delay appeared.
        assert!(v.cwnd_packets() < 1000.0);
    }
}
