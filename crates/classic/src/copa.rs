//! Copa (Arun & Balakrishnan, NSDI'18): delay-based control targeting the
//! rate `1/(δ·d_q)` where `d_q` is the measured queueing delay. The window
//! moves toward the target with a velocity that doubles while the
//! direction is consistent. This implementation covers the default mode
//! (no TCP-competitive switching) — the variant Pantheon runs by default.

use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};

const DELTA: f64 = 0.5; // default mode: target 2 packets of queueing

/// Copa congestion control.
#[derive(Debug, Clone)]
pub struct Copa {
    mss: u64,
    cwnd: f64, // packets
    min_rtt: Duration,
    srtt: Duration,
    /// RTT_standing: min RTT over the last srtt/2 (approximated with a
    /// short EWMA-free window over recent samples).
    standing_window: Vec<(Instant, Duration)>,
    velocity: f64,
    direction_up: bool,
    same_direction_count: u32,
    last_update: Instant,
    in_slow_start: bool,
    min_cwnd: f64,
}

impl Copa {
    /// Default-mode Copa with the given MSS.
    pub fn new(mss: u64) -> Self {
        Copa {
            mss,
            cwnd: 10.0,
            min_rtt: Duration::MAX,
            srtt: Duration::ZERO,
            standing_window: Vec::new(),
            velocity: 1.0,
            direction_up: true,
            same_direction_count: 0,
            last_update: Instant::ZERO,
            in_slow_start: true,
            min_cwnd: 2.0,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }

    fn standing_rtt(&mut self, now: Instant) -> Duration {
        let horizon = self.srtt.mul_f64(0.5).max(Duration::from_millis(10));
        let cutoff = now - horizon;
        self.standing_window.retain(|&(t, _)| t >= cutoff);
        self.standing_window
            .iter()
            .map(|&(_, r)| r)
            .min()
            .unwrap_or(self.srtt)
    }
}

impl Default for Copa {
    fn default() -> Self {
        Copa::new(1500)
    }
}

impl CongestionControl for Copa {
    fn name(&self) -> &'static str {
        "Copa"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
        self.min_rtt = self.min_rtt.min(ev.rtt);
        self.standing_window.push((ev.now, ev.rtt));
        let standing = self.standing_rtt(ev.now);
        let dq = standing.saturating_sub(self.min_rtt).as_secs_f64();

        // Slow start: double per RTT until the target rate is exceeded.
        let current_rate = self.cwnd / self.srtt.as_secs_f64().max(1e-6); // pkts/s
        let target_rate = if dq > 1e-9 {
            1.0 / (DELTA * dq)
        } else {
            f64::INFINITY
        };
        if self.in_slow_start {
            if current_rate < target_rate {
                self.cwnd += ev.bytes as f64 / self.mss as f64;
                return;
            }
            self.in_slow_start = false;
        }

        // Velocity update once per RTT.
        if ev.now.saturating_since(self.last_update) >= self.srtt {
            let up = current_rate < target_rate;
            if up == self.direction_up {
                self.same_direction_count += 1;
                if self.same_direction_count >= 3 {
                    self.velocity = (self.velocity * 2.0).min(self.cwnd);
                }
            } else {
                self.velocity = 1.0;
                self.same_direction_count = 0;
                self.direction_up = up;
            }
            self.last_update = ev.now;
        }

        let step = (self.velocity / (DELTA * self.cwnd)) * (ev.bytes as f64 / self.mss as f64);
        if current_rate < target_rate {
            self.cwnd += step;
        } else {
            self.cwnd = (self.cwnd - step).max(self.min_cwnd);
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        // Copa reacts to loss only via timeouts (its delay signal handles
        // congestion); a timeout collapses the window.
        if ev.kind == LossKind::Timeout {
            self.cwnd = self.min_cwnd;
            self.in_slow_start = true;
            self.velocity = 1.0;
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd.max(self.min_cwnd) * self.mss as f64) as u64
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.cwnd = (rate.bytes_in(srtt) as f64 / self.mss as f64).max(self.min_cwnd);
        self.in_slow_start = false;
        self.velocity = 1.0;
    }

    fn in_startup(&self) -> bool {
        self.in_slow_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    #[test]
    fn slow_start_grows() {
        let mut c = Copa::new(1500);
        let w0 = c.cwnd_packets();
        for k in 0..10 {
            c.on_ack(&ack(k * 10, 50));
        }
        assert!(c.cwnd_packets() > w0);
        assert!(c.in_startup());
    }

    #[test]
    fn exits_slow_start_on_queueing() {
        let mut c = Copa::new(1500);
        // min_rtt = 50 ms; then heavy queueing (500 ms) with a small target.
        c.on_ack(&ack(0, 50));
        for k in 1..50 {
            c.on_ack(&ack(k * 10, 500));
        }
        assert!(!c.in_startup());
    }

    #[test]
    fn shrinks_under_persistent_queueing() {
        let mut c = Copa::new(1500);
        c.on_ack(&ack(0, 50));
        for k in 1..30 {
            c.on_ack(&ack(k * 10, 400));
        }
        let w = c.cwnd_packets();
        for k in 30..120 {
            c.on_ack(&ack(k * 10, 400));
        }
        assert!(c.cwnd_packets() < w, "{} vs {w}", c.cwnd_packets());
    }

    #[test]
    fn grows_when_queue_empty() {
        let mut c = Copa::new(1500);
        c.on_ack(&ack(0, 50));
        // Exit slow start artificially.
        c.set_rate(Rate::from_mbps(1.0), Duration::from_millis(50));
        let w = c.cwnd_packets();
        for k in 1..100 {
            c.on_ack(&ack(k * 10, 50)); // dq ≈ 0 → target ∞ → grow
        }
        assert!(c.cwnd_packets() > w);
    }

    #[test]
    fn velocity_accelerates_growth() {
        let mut c = Copa::new(1500);
        c.on_ack(&ack(0, 50));
        c.set_rate(Rate::from_mbps(1.0), Duration::from_millis(50));
        // Growth over consecutive RTTs accelerates once direction holds.
        let mut deltas = Vec::new();
        let mut prev = c.cwnd_packets();
        for round in 0..8u64 {
            for k in 0..5 {
                c.on_ack(&ack(1000 + round * 50 + k * 10, 50));
            }
            deltas.push(c.cwnd_packets() - prev);
            prev = c.cwnd_packets();
        }
        assert!(deltas.last().unwrap() > deltas.first().unwrap());
    }

    #[test]
    fn timeout_resets() {
        let mut c = Copa::new(1500);
        for k in 0..20 {
            c.on_ack(&ack(k * 10, 50));
        }
        c.on_loss(&LossEvent {
            now: Instant::from_secs(1),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::Timeout,
        });
        assert!((c.cwnd_packets() - 2.0).abs() < 1e-9);
    }
}
