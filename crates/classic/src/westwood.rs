//! TCP Westwood+: Reno-style growth with bandwidth-estimate-based backoff
//! (`ssthresh = bw_est × min_rtt` instead of half the window), which makes
//! it resilient to stochastic loss — one of the "other classic CCAs"
//! Sec. 7 suggests plugging into Libra.

use crate::reno::AimdState;
use libra_types::{
    AckEvent, CongestionControl, Duration, Ewma, Instant, LossEvent, LossKind, Rate,
};

/// TCP Westwood+.
#[derive(Debug, Clone)]
pub struct Westwood {
    state: AimdState,
    bw_est: Ewma, // bytes/sec
    min_rtt: Duration,
    last_ack: Instant,
    acked_since: u64,
}

impl Westwood {
    /// Standard Westwood+ with the given MSS.
    pub fn new(mss: u64) -> Self {
        Westwood {
            state: AimdState::new(mss),
            bw_est: Ewma::new(0.1),
            min_rtt: Duration::MAX,
            last_ack: Instant::ZERO,
            acked_since: 0,
        }
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.state.cwnd
    }

    /// Bandwidth estimate in bytes/sec.
    pub fn bandwidth_estimate(&self) -> f64 {
        self.bw_est.get_or(0.0)
    }
}

impl Default for Westwood {
    fn default() -> Self {
        Westwood::new(1500)
    }
}

impl CongestionControl for Westwood {
    fn name(&self) -> &'static str {
        "Westwood"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.state.note_ack(ev);
        self.min_rtt = self.min_rtt.min(ev.rtt);
        self.acked_since += ev.bytes;
        // Sample bandwidth roughly once per RTT.
        let since = ev.now.saturating_since(self.last_ack);
        if since >= ev.srtt.max(Duration::from_millis(10)) {
            if !since.is_zero() {
                let sample = self.acked_since as f64 / since.as_secs_f64();
                self.bw_est.update(sample);
            }
            self.acked_since = 0;
            self.last_ack = ev.now;
        }
        // Reno growth.
        if self.state.in_slow_start() {
            self.state.cwnd += ev.bytes as f64 / self.state.mss as f64;
        } else {
            self.state.cwnd += (ev.bytes as f64 / self.state.mss as f64) / self.state.cwnd;
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        let bw = self.bw_est.get_or(0.0);
        let ssthresh_pkts = if bw > 0.0 && self.min_rtt != Duration::MAX {
            (bw * self.min_rtt.as_secs_f64() / self.state.mss as f64).max(self.state.min_cwnd)
        } else {
            (self.state.cwnd / 2.0).max(self.state.min_cwnd)
        };
        match ev.kind {
            LossKind::FastRetransmit => {
                if self.state.should_reduce(ev.now) {
                    self.state.ssthresh = ssthresh_pkts;
                    self.state.cwnd = self.state.cwnd.min(ssthresh_pkts);
                }
            }
            LossKind::Timeout => {
                self.state.ssthresh = ssthresh_pkts;
                self.state.cwnd = self.state.min_cwnd;
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        self.state.cwnd_bytes()
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        self.state.set_rate(rate, srtt);
    }

    fn in_startup(&self) -> bool {
        self.state.in_slow_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, bytes: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: 0,
            in_flight: 0,
            app_limited: false,
        }
    }

    fn feed(w: &mut Westwood, ms: u64, count: u64, rtt: u64) {
        for k in 0..count {
            w.on_ack(&ack(ms + k * 10, rtt, 1500));
        }
    }

    #[test]
    fn bandwidth_estimate_converges() {
        let mut w = Westwood::new(1500);
        // 1500 B per 10 ms = 150 kB/s.
        feed(&mut w, 0, 200, 50);
        let bw = w.bandwidth_estimate();
        assert!((bw - 150_000.0).abs() < 30_000.0, "bw {bw}");
    }

    #[test]
    fn loss_sets_ssthresh_to_bdp() {
        let mut w = Westwood::new(1500);
        feed(&mut w, 0, 300, 50);
        let bw = w.bandwidth_estimate();
        w.on_loss(&LossEvent {
            now: Instant::from_secs(10),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        let expect_pkts = bw * 0.05 / 1500.0;
        assert!(
            (w.cwnd_packets() - expect_pkts).abs() < 2.0 || w.cwnd_packets() < expect_pkts,
            "cwnd {} vs bdp {}",
            w.cwnd_packets(),
            expect_pkts
        );
    }

    #[test]
    fn repeated_losses_do_not_compound_below_bdp() {
        // Reno would halve on every round's loss; Westwood floors at the
        // bandwidth-estimate BDP, so back-to-back (cross-round) losses do
        // not drive the window toward zero.
        let mut w = Westwood::new(1500);
        feed(&mut w, 0, 300, 50);
        let bdp_pkts = w.bandwidth_estimate() * 0.05 / 1500.0;
        for k in 0..5u64 {
            w.on_loss(&LossEvent {
                now: Instant::from_secs(20 + k),
                seq: 0,
                bytes: 1500,
                in_flight: 0,
                kind: LossKind::FastRetransmit,
            });
        }
        assert!(
            // Floor of two packets, or within one packet of the BDP.
            w.cwnd_packets() + 1e-9 >= 2.0 || w.cwnd_packets() >= bdp_pkts - 1.0,
            "cwnd {} collapsed below bdp {}",
            w.cwnd_packets(),
            bdp_pkts
        );
    }
}
