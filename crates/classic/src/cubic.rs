//! CUBIC (RFC 8312): the Linux default and the classic CCA behind the
//! paper's C-Libra. Window growth follows a cubic function of time since
//! the last reduction, with the TCP-friendly region and fast convergence.

use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, Rate};

const C: f64 = 0.4; // cubic scaling constant (packets/sec³)
const BETA: f64 = 0.7; // multiplicative decrease factor

// HyStart++ (RFC 9406) parameters: exit slow start when a round's
// minimum RTT rises by clamp(last_min/8, 4ms, 16ms) over the previous
// round's minimum, after at least N_RTT_SAMPLE samples.
const HYSTART_MIN_SAMPLES: u32 = 8;
const HYSTART_MIN_ETA: f64 = 0.004;
const HYSTART_MAX_ETA: f64 = 0.016;

/// CUBIC congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u64,
    cwnd: f64,     // packets
    ssthresh: f64, // packets
    w_max: f64,    // window before the last reduction
    k: f64,        // time (s) for the cubic to regain w_max
    epoch_start: Option<Instant>,
    tcp_cwnd: f64, // TCP-friendly (Reno-equivalent) window estimate
    srtt: Duration,
    recovery_until: Instant,
    min_cwnd: f64,
    fast_convergence: bool,
    hystart: bool,
    hy_round_end: Instant,
    hy_last_min: Option<f64>,
    hy_cur_min: f64,
    hy_samples: u32,
}

impl Cubic {
    /// Standard CUBIC with fast convergence enabled.
    pub fn new(mss: u64) -> Self {
        Cubic {
            mss,
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            tcp_cwnd: 0.0,
            srtt: Duration::ZERO,
            recovery_until: Instant::ZERO,
            min_cwnd: 2.0,
            fast_convergence: true,
            hystart: true,
            hy_round_end: Instant::ZERO,
            hy_last_min: None,
            hy_cur_min: f64::INFINITY,
            hy_samples: 0,
        }
    }

    /// Disable fast convergence (for ablations).
    pub fn without_fast_convergence(mut self) -> Self {
        self.fast_convergence = false;
        self
    }

    /// Disable the HyStart++ delay-based slow-start exit.
    pub fn without_hystart(mut self) -> Self {
        self.hystart = false;
        self
    }

    /// HyStart++: track per-round RTT minima during slow start and exit
    /// when the minimum rises materially — congestion is building before
    /// the first loss.
    fn hystart_update(&mut self, ev: &AckEvent) {
        let rtt = ev.rtt.as_secs_f64();
        self.hy_cur_min = self.hy_cur_min.min(rtt);
        self.hy_samples += 1;
        if ev.now < self.hy_round_end {
            return;
        }
        // Round boundary.
        if self.hy_samples >= HYSTART_MIN_SAMPLES {
            if let Some(last) = self.hy_last_min {
                let eta = (last / 8.0).clamp(HYSTART_MIN_ETA, HYSTART_MAX_ETA);
                if self.hy_cur_min >= last + eta {
                    // Delay rose a full threshold: leave slow start here.
                    self.ssthresh = self.cwnd;
                }
            }
            self.hy_last_min = Some(self.hy_cur_min);
        }
        self.hy_cur_min = f64::INFINITY;
        self.hy_samples = 0;
        self.hy_round_end = ev.now + ev.srtt.max(Duration::from_millis(1));
    }

    /// Current window in packets.
    pub fn cwnd_packets(&self) -> f64 {
        self.cwnd
    }

    /// The cubic window at elapsed time `t` seconds since epoch start.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }

    fn begin_epoch(&mut self, now: Instant) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            self.k = ((self.w_max - self.cwnd) / C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
        self.tcp_cwnd = self.cwnd;
    }

    fn reduce(&mut self, now: Instant) {
        let w = self.cwnd;
        self.w_max = if self.fast_convergence && w < self.w_max {
            // Fast convergence: release bandwidth for newcomers.
            w * (2.0 - BETA) / 2.0
        } else {
            w
        };
        self.cwnd = (w * BETA).max(self.min_cwnd);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.recovery_until = now + self.srtt.max(Duration::from_millis(1));
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new(1500)
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "CUBIC"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
        let acked_pkts = ev.bytes as f64 / self.mss as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked_pkts;
            if self.hystart {
                self.hystart_update(ev);
            }
            return;
        }
        let now = ev.now;
        if self.epoch_start.is_none() {
            self.begin_epoch(now);
        }
        let t = now
            .saturating_since(self.epoch_start.expect("epoch set"))
            .as_secs_f64();
        let rtt = ev.srtt.as_secs_f64();
        // Target: where the cubic wants to be one RTT from now.
        let target = self.w_cubic(t + rtt).clamp(self.cwnd, 1.5 * self.cwnd);
        self.cwnd += (target - self.cwnd) / self.cwnd * acked_pkts;
        // TCP-friendly region (RFC 8312 §4.2): emulate Reno's AIMD average.
        self.tcp_cwnd += (3.0 * (1.0 - BETA) / (1.0 + BETA)) * acked_pkts / self.cwnd;
        if self.tcp_cwnd > self.cwnd {
            self.cwnd = self.tcp_cwnd;
        }
    }

    fn on_loss(&mut self, ev: &LossEvent) {
        match ev.kind {
            LossKind::FastRetransmit => {
                if ev.now >= self.recovery_until {
                    self.srtt = self.srtt.max(Duration::from_millis(1));
                    self.reduce(ev.now);
                }
            }
            LossKind::Timeout => {
                self.reduce(ev.now);
                self.cwnd = self.min_cwnd;
            }
        }
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd.max(self.min_cwnd) * self.mss as f64) as u64
    }

    fn set_rate(&mut self, rate: Rate, srtt: Duration) {
        let pkts = (rate.bytes_in(srtt) as f64 / self.mss as f64).max(self.min_cwnd);
        self.cwnd = pkts;
        if self.ssthresh < pkts {
            self.ssthresh = pkts;
        }
        // The cubic epoch clock keeps running (this is how the kernel
        // behaves under external cwnd clamps, and how Orca drives CUBIC):
        // the window curve re-approaches its target from the new base, so
        // repeated re-basing does not strand growth at the origin.
    }

    fn in_startup(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, loss};

    #[test]
    fn slow_start_then_cubic_growth() {
        let mut c = Cubic::new(1500);
        for i in 0..10 {
            c.on_ack(&ack(i, 1500, 50));
        }
        assert!((c.cwnd_packets() - 20.0).abs() < 1e-9);
        assert!(c.in_startup());
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = Cubic::new(1500);
        for i in 0..40 {
            c.on_ack(&ack(i, 1500, 50));
        }
        let w = c.cwnd_packets();
        c.on_loss(&loss(50, LossKind::FastRetransmit));
        assert!((c.cwnd_packets() - 0.7 * w).abs() < 1e-9);
        assert!(!c.in_startup());
    }

    #[test]
    fn cubic_concave_then_convex() {
        // After a reduction the window should grow quickly, plateau near
        // w_max, then accelerate past it.
        let mut c = Cubic::new(1500);
        for i in 0..90 {
            c.on_ack(&ack(i, 1500, 50));
        }
        c.on_loss(&loss(100, LossKind::FastRetransmit));
        let w_after_loss = c.cwnd_packets();
        let w_max = w_after_loss / 0.7;
        // Simulate 30 s of ACK clocking at ~cwnd per 50 ms RTT.
        let mut t_ms = 200u64;
        let mut crossed = None;
        while t_ms < 30_000 {
            let acks = c.cwnd_packets().round() as u64;
            for _ in 0..acks.max(1) {
                c.on_ack(&ack(t_ms, 1500, 50));
            }
            if crossed.is_none() && c.cwnd_packets() > w_max {
                crossed = Some(t_ms);
            }
            t_ms += 50;
        }
        let crossed = crossed.expect("cubic should regain w_max");
        // K = cbrt((w_max − 0.7·w_max)/0.4) = cbrt(0.75·w_max) seconds.
        let k_secs = (0.75 * w_max).cbrt();
        let crossed_secs = (crossed - 200) as f64 / 1000.0;
        assert!(
            (crossed_secs - k_secs).abs() < 0.5 * k_secs + 0.5,
            "regained w_max at {crossed_secs}s, K = {k_secs}s"
        );
        // And keeps growing (convex region).
        assert!(c.cwnd_packets() > w_max);
    }

    #[test]
    fn fast_convergence_shrinks_wmax() {
        let mut c = Cubic::new(1500);
        for i in 0..100 {
            c.on_ack(&ack(i, 1500, 50));
        }
        c.on_loss(&loss(150, LossKind::FastRetransmit));
        let w1 = c.w_max;
        // Second loss at a smaller window (before regaining w_max).
        c.on_loss(&loss(500, LossKind::FastRetransmit));
        assert!(c.w_max < w1, "fast convergence should lower w_max");
    }

    #[test]
    fn once_per_round_guard() {
        let mut c = Cubic::new(1500);
        for i in 0..40 {
            c.on_ack(&ack(i, 1500, 50));
        }
        c.on_loss(&loss(50, LossKind::FastRetransmit));
        let w = c.cwnd_packets();
        c.on_loss(&loss(55, LossKind::FastRetransmit));
        assert_eq!(c.cwnd_packets(), w);
    }

    #[test]
    fn timeout_collapses() {
        let mut c = Cubic::new(1500);
        for i in 0..40 {
            c.on_ack(&ack(i, 1500, 50));
        }
        c.on_loss(&loss(60, LossKind::Timeout));
        assert!((c.cwnd_packets() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hystart_exits_slow_start_on_delay_rise() {
        let mut c = Cubic::new(1500);
        // Round 1: flat 50 ms RTT (establish last_min).
        let mut t = 0u64;
        for _ in 0..12 {
            c.on_ack(&ack(t, 1500, 50));
            t += 5;
        }
        assert!(c.in_startup());
        // Rounds with climbing RTT: 50 → 90 ms — HyStart should fire
        // before any loss.
        for round in 0..6u64 {
            for _ in 0..12 {
                c.on_ack(&ack(t, 1500, 50 + round * 8));
                t += 5;
            }
        }
        assert!(!c.in_startup(), "HyStart should have exited slow start");
    }

    #[test]
    fn hystart_stays_in_slow_start_with_flat_rtt() {
        let mut c = Cubic::new(1500);
        let mut t = 0u64;
        for _ in 0..100 {
            c.on_ack(&ack(t, 1500, 50));
            t += 5;
        }
        assert!(c.in_startup(), "flat RTT must not trigger HyStart");
    }

    #[test]
    fn hystart_can_be_disabled() {
        let mut c = Cubic::new(1500).without_hystart();
        let mut t = 0u64;
        for round in 0..8u64 {
            for _ in 0..12 {
                c.on_ack(&ack(t, 1500, 50 + round * 10));
                t += 5;
            }
        }
        assert!(c.in_startup(), "disabled HyStart leaves slow start alone");
    }

    #[test]
    fn set_rate_rebases_and_growth_continues() {
        let mut c = Cubic::new(1500);
        for i in 0..40 {
            c.on_ack(&ack(i, 1500, 50));
        }
        c.on_loss(&loss(50, LossKind::FastRetransmit)); // leave slow start
        c.set_rate(Rate::from_mbps(24.0), Duration::from_millis(100));
        // 24 Mbps × 100 ms = 300 kB = 200 packets.
        assert!((c.cwnd_packets() - 200.0).abs() < 0.01);
        // Growth continues from the new anchor.
        let w = c.cwnd_packets();
        for i in 0..200 {
            c.on_ack(&ack(1000 + i, 1500, 100));
        }
        assert!(c.cwnd_packets() > w);
    }
}
