// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-classic`: from-scratch implementations of the classic
//! congestion-control algorithms the paper builds on and compares against.
//!
//! * [`NewReno`] — baseline AIMD (RFC 6582 behaviour).
//! * [`Cubic`] — RFC 8312, the Linux default and C-Libra's inner CCA.
//! * [`Bbr`] — BBR v1 state machine, B-Libra's inner CCA.
//! * [`Vegas`] — the archetypal delay-based scheme.
//! * [`Westwood`] — bandwidth-estimate backoff (stochastic-loss resilient).
//! * [`Illinois`] — delay-adaptive AIMD (Sec. 7's "other classic CCAs").
//! * [`Copa`] — NSDI'18 delay-target scheme (Pantheon default mode).
//! * [`Dctcp`] — ECN-proportional datacenter CCA (the Sec. 7 extension).
//!
//! All controllers implement [`libra_types::CongestionControl`] and are
//! driven per-ACK by the simulator. Each also supports Libra's
//! `set_rate` re-basing so it can serve as the framework's inner
//! "classic" subroutine.

pub mod bbr;
pub mod copa;
pub mod cubic;
pub mod dctcp;
pub mod filters;
pub mod illinois;
pub mod reno;
pub mod vegas;
pub mod westwood;

pub use bbr::{Bbr, BbrMode};
pub use copa::Copa;
pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use illinois::Illinois;
pub use reno::NewReno;
pub use vegas::Vegas;
pub use westwood::Westwood;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared event constructors for unit tests.
    use libra_types::{AckEvent, Duration, Instant, LossEvent, LossKind};

    pub fn ack(now_ms: u64, bytes: u64, srtt_ms: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes,
            rtt: Duration::from_millis(srtt_ms),
            min_rtt: Duration::from_millis(srtt_ms),
            srtt: Duration::from_millis(srtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(srtt_ms)),
            delivered_at_send: 0,
            delivered: bytes,
            in_flight: 0,
            app_limited: false,
        }
    }

    pub fn loss(now_ms: u64, kind: LossKind) -> LossEvent {
        LossEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes: 1500,
            in_flight: 0,
            kind,
        }
    }
}
