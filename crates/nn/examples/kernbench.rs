//! Hand-run wall-clock microbenchmark for the batched forward kernels.
//! This binary *is* a timing harness: it prints host durations and
//! never feeds an artifact or digest, so its clock reads are audited
//! waivers rather than routed through `netsim::host_clock`.

use libra_nn::{Activation, BatchScratch, Matrix, Mlp};
use libra_types::DetRng;
// lint: allow(host_clock) — wall-clock measurement is this example's purpose
use std::time::Instant;

fn bench(act: Activation, label: &str) {
    let mut rng = DetRng::new(7);
    let mlp = Mlp::new(&[30, 64, 64, 1], act, &mut rng);
    let batch = 128usize;
    let input = Matrix::from_fn(batch, 30, |_, _| rng.uniform_range(-1.0, 1.0));
    let mut scratch = BatchScratch::new();
    let mut out = Matrix::zeros(0, 0);
    mlp.forward_batch_into(&input, &mut out, &mut scratch);
    let iters = 20000;
    // lint: allow(host_clock) — timing the batched path is the point
    let t0 = Instant::now();
    for _ in 0..iters {
        mlp.forward_batch_into(&input, &mut out, &mut scratch);
    }
    let batched = t0.elapsed();
    let mut o = Vec::new();
    let mut s = Vec::new();
    let rows: Vec<Vec<f64>> = (0..batch)
        .map(|r| (0..30).map(|c| input.get(r, c)).collect())
        .collect();
    // lint: allow(host_clock) — timing the sequential path is the point
    let t1 = Instant::now();
    for _ in 0..iters {
        for r in &rows {
            mlp.forward_into(r, &mut o, &mut s);
        }
    }
    let seq = t1.elapsed();
    println!(
        "{label}: batched {:?}  seq {:?}  ratio {:.2}",
        batched,
        seq,
        seq.as_secs_f64() / batched.as_secs_f64()
    );
}

fn main() {
    bench(Activation::Tanh, "tanh");
    bench(Activation::Relu, "relu");
}
