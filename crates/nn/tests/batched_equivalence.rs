//! Property tests: the batched forward pass (`Mlp::forward_batch`) and
//! the cache-free eval pass (`Mlp::forward_into`) are *bit-identical* —
//! not merely close — to the sequential `forward`/`forward_cached`
//! paths, across randomly drawn network shapes, weights and batches.
//!
//! Exact `f64` equality is the whole point: the policy server fans a
//! batch of per-flow state vectors through one matrix-matrix product per
//! layer, and the simulator's byte-for-byte report reproducibility only
//! survives if each flow receives exactly the action it would have
//! computed alone.

use libra_nn::{Activation, BatchScratch, Matrix, Mlp};
use libra_types::DetRng;
use proptest::prelude::*;

/// A random but structurally valid MLP shape: 1–3 hidden layers of 1–24
/// units over small input/output dims.
fn arb_sizes() -> impl Strategy<Value = Vec<usize>> {
    (
        1usize..=8,
        prop::collection::vec(1usize..=24, 1..=3),
        1usize..=6,
    )
        .prop_map(|(i, hidden, o)| {
            let mut sizes = vec![i];
            sizes.extend(hidden);
            sizes.push(o);
            sizes
        })
}

fn build(sizes: &[usize], act: Activation, seed: u64) -> Mlp {
    let mut rng = DetRng::new(seed);
    Mlp::new(sizes, act, &mut rng)
}

fn arb_activation() -> impl Strategy<Value = Activation> {
    (0usize..2).prop_map(|i| {
        if i == 0 {
            Activation::Tanh
        } else {
            Activation::Relu
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_batch_rows_equal_forward_bitwise(
        sizes in arb_sizes(),
        act in arb_activation(),
        seed in 0u64..1_000_000,
        rows in 1usize..=17,
    ) {
        let net = build(&sizes, act, seed);
        let mut data_rng = DetRng::new(seed ^ 0xBA7C4);
        let batch = Matrix::from_fn(rows, sizes[0], |_, _| data_rng.uniform_range(-3.0, 3.0));
        let out = net.forward_batch(&batch);
        prop_assert_eq!((out.rows(), out.cols()), (rows, *sizes.last().unwrap()));
        for s in 0..rows {
            let row: Vec<f64> = (0..sizes[0]).map(|c| batch.get(s, c)).collect();
            let seq = net.forward(&row);
            for (c, v) in seq.iter().enumerate() {
                prop_assert_eq!(
                    out.get(s, c).to_bits(),
                    v.to_bits(),
                    "row {} col {} differs: batched {} vs sequential {}",
                    s, c, out.get(s, c), v
                );
            }
        }
    }

    /// Eval (`forward_into`, fast deterministic tanh) vs training
    /// (`forward_cached`, libm tanh): bit-identical for ReLU nets, and
    /// within the documented ~1e-12 train/serve skew budget for tanh
    /// nets (see `Activation::apply_eval`).
    #[test]
    fn forward_into_tracks_cached_forward(
        sizes in arb_sizes(),
        act in arb_activation(),
        seed in 0u64..1_000_000,
    ) {
        let net = build(&sizes, act, seed);
        let mut data_rng = DetRng::new(seed ^ 0x1D_EA7);
        let input: Vec<f64> = (0..sizes[0]).map(|_| data_rng.uniform_range(-3.0, 3.0)).collect();
        let cached = net.forward_cached(&input);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        net.forward_into(&input, &mut out, &mut scratch);
        prop_assert_eq!(out.len(), cached.output().len());
        for (a, b) in out.iter().zip(cached.output()) {
            match act {
                Activation::Relu => prop_assert_eq!(a.to_bits(), b.to_bits()),
                Activation::Tanh => prop_assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                    "eval {} vs cached {}", a, b
                ),
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_does_not_change_results(
        sizes in arb_sizes(),
        seed in 0u64..1_000_000,
        rows in 1usize..=9,
    ) {
        let net = build(&sizes, Activation::Tanh, seed);
        let mut data_rng = DetRng::new(seed ^ 0x5C_A7C4);
        let b1 = Matrix::from_fn(rows, sizes[0], |_, _| data_rng.uniform_range(-2.0, 2.0));
        let b2 = Matrix::from_fn(rows + 3, sizes[0], |_, _| data_rng.uniform_range(-2.0, 2.0));
        let mut scratch = BatchScratch::new();
        let mut out = Matrix::zeros(0, 0);
        net.forward_batch_into(&b1, &mut out, &mut scratch);
        // Reuse dirtied scratch for a different batch size.
        net.forward_batch_into(&b2, &mut out, &mut scratch);
        let fresh = net.forward_batch(&b2);
        prop_assert_eq!(out.as_slice(), fresh.as_slice());
    }
}
