//! A minimal dense-matrix type — just enough linear algebra for small
//! fully-connected networks. Row-major `f64` storage, no BLAS. The one
//! hot kernel — the batched policy forward [`Matrix::matmat_t`] — gets
//! register blocking and a runtime-detected AVX path, but every variant
//! keeps the same per-element multiply/add sequence (ascending shared
//! index, no FMA) so batched results stay bit-identical to the scalar
//! matrix-vector path. Everything else stays naive: clarity wins.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix (a reusable scratch buffer's seed).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self · x` for a column vector `x` (len == cols). Output len == rows.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Like [`Matrix::matvec`], but writing into a caller-owned buffer so
    /// steady-state callers (the eval hot path) never allocate. The
    /// accumulation kernel is byte-for-byte the same as `matvec`'s, so the
    /// two produce bit-identical `f64` outputs.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        out.clear();
        out.resize(self.rows, 0.0);
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// Resize in place to `rows × cols`, reusing the allocation when it is
    /// large enough. Contents are unspecified afterwards — this exists for
    /// scratch matrices that are fully overwritten next.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Batched matvec: `out = batch · selfᵀ`, i.e. row `s` of `out` is
    /// `self.matvec(batch.row(s))`. `out` is reshaped to
    /// `batch.rows × self.rows` (allocation reused).
    ///
    /// Bit-identity contract: every output element is an independent dot
    /// product accumulated over the shared dimension in index order with
    /// the *same* `acc += a * b` kernel as [`Matrix::matvec`], so for any
    /// row `s`, `matmat` and a per-row `matvec` produce bit-identical
    /// `f64` results — the property the policy server's batched forward
    /// pass relies on.
    pub fn matmat(&self, batch: &Matrix, out: &mut Matrix) {
        assert_eq!(batch.cols, self.cols, "matmat shape mismatch");
        out.reshape(batch.rows, self.rows);
        let n = self.cols;
        for r in 0..self.rows {
            let row = &self.data[r * n..(r + 1) * n];
            // Four batch rows per pass: distinct output elements are
            // independent dot products, so running four accumulators in
            // parallel breaks the serial FMA latency chain (the reason a
            // batch of matvecs is slow) while each element still sums
            // over the shared dimension in matvec's exact index order —
            // bit identity is untouched.
            let mut s = 0;
            while s + 4 <= batch.rows {
                let x0 = &batch.data[s * n..(s + 1) * n];
                let x1 = &batch.data[(s + 1) * n..(s + 2) * n];
                let x2 = &batch.data[(s + 2) * n..(s + 3) * n];
                let x3 = &batch.data[(s + 3) * n..(s + 4) * n];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                for (c, &w) in row.iter().enumerate() {
                    a0 += w * x0[c];
                    a1 += w * x1[c];
                    a2 += w * x2[c];
                    a3 += w * x3[c];
                }
                out.data[s * self.rows + r] = a0;
                out.data[(s + 1) * self.rows + r] = a1;
                out.data[(s + 2) * self.rows + r] = a2;
                out.data[(s + 3) * self.rows + r] = a3;
                s += 4;
            }
            while s < batch.rows {
                let x = &batch.data[s * n..(s + 1) * n];
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(x) {
                    acc += a * b;
                }
                out.data[s * self.rows + r] = acc;
                s += 1;
            }
        }
    }

    /// Transposed batched matvec: `a_t` holds one *column* per batch
    /// member (`shared_dim × batch`), and `out` receives `self · a_t`
    /// (`self.rows × batch`) in the same feature-major layout. This is
    /// the layout [`crate::Mlp::forward_batch_into`] keeps activations
    /// in: the inner loop runs along contiguous batch lanes with the
    /// weight broadcast, so it vectorizes — unlike a batch of matvecs,
    /// whose serial `acc += a * b` chain is latency-bound.
    ///
    /// Bit-identity contract: element `(r, s)` starts at `0.0` and
    /// accumulates `w[r][c] * a_t[c][s]` in ascending `c` — the exact
    /// addend sequence of [`Matrix::matvec`]'s row-`r` dot product, so
    /// every batch column is bit-identical to a per-flow matvec.
    pub fn matmat_t(&self, a_t: &Matrix, out: &mut Matrix) {
        assert_eq!(a_t.rows, self.cols, "matmat_t shape mismatch");
        let n = self.cols;
        let lanes = a_t.cols;
        out.reshape(self.rows, lanes); // zero-filled
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime; the
            // kernel applies the identical per-element multiply/add
            // sequence (no FMA — fused rounding would break bit
            // identity), four batch lanes per instruction.
            unsafe { avx::matmat_t(&self.data, self.rows, n, &a_t.data, lanes, &mut out.data) };
            return;
        }
        // 2×4 register blocking: two output rows share each batch-lane
        // load, and four shared-dimension steps amortize the accumulator
        // row's load/store — together they make the kernel compute-bound
        // instead of memory-op-bound. The chained `+` applies the four
        // addends left to right — exactly ascending `c` — and the two
        // output rows are independent dot products, so bit identity
        // holds element for element.
        let mut r = 0;
        while r + 2 <= self.rows {
            let w0_row = &self.data[r * n..(r + 1) * n];
            let w1_row = &self.data[(r + 1) * n..(r + 2) * n];
            let (d0, d1) = out.data[r * lanes..(r + 2) * lanes].split_at_mut(lanes);
            let d1 = &mut d1[..lanes];
            let mut c = 0;
            while c + 4 <= n {
                let (a0, a1, a2, a3) = (w0_row[c], w0_row[c + 1], w0_row[c + 2], w0_row[c + 3]);
                let (b0, b1, b2, b3) = (w1_row[c], w1_row[c + 1], w1_row[c + 2], w1_row[c + 3]);
                let s0 = &a_t.data[c * lanes..(c + 1) * lanes][..lanes];
                let s1 = &a_t.data[(c + 1) * lanes..(c + 2) * lanes][..lanes];
                let s2 = &a_t.data[(c + 2) * lanes..(c + 3) * lanes][..lanes];
                let s3 = &a_t.data[(c + 3) * lanes..(c + 4) * lanes][..lanes];
                for s in 0..lanes {
                    let (x0, x1, x2, x3) = (s0[s], s1[s], s2[s], s3[s]);
                    d0[s] = d0[s] + a0 * x0 + a1 * x1 + a2 * x2 + a3 * x3;
                    d1[s] = d1[s] + b0 * x0 + b1 * x1 + b2 * x2 + b3 * x3;
                }
                c += 4;
            }
            while c < n {
                let (a, b) = (w0_row[c], w1_row[c]);
                let src = &a_t.data[c * lanes..(c + 1) * lanes][..lanes];
                for s in 0..lanes {
                    d0[s] += a * src[s];
                    d1[s] += b * src[s];
                }
                c += 1;
            }
            r += 2;
        }
        if r < self.rows {
            let w_row = &self.data[r * n..(r + 1) * n];
            let dst = &mut out.data[r * lanes..(r + 1) * lanes][..lanes];
            let mut c = 0;
            while c + 4 <= n {
                let (w0, w1, w2, w3) = (w_row[c], w_row[c + 1], w_row[c + 2], w_row[c + 3]);
                let s0 = &a_t.data[c * lanes..(c + 1) * lanes][..lanes];
                let s1 = &a_t.data[(c + 1) * lanes..(c + 2) * lanes][..lanes];
                let s2 = &a_t.data[(c + 2) * lanes..(c + 3) * lanes][..lanes];
                let s3 = &a_t.data[(c + 3) * lanes..(c + 4) * lanes][..lanes];
                for s in 0..lanes {
                    dst[s] = dst[s] + w0 * s0[s] + w1 * s1[s] + w2 * s2[s] + w3 * s3[s];
                }
                c += 4;
            }
            while c < n {
                let w = w_row[c];
                let src = &a_t.data[c * lanes..(c + 1) * lanes];
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d += w * x;
                }
                c += 1;
            }
        }
    }

    /// Write `selfᵀ` into `out` (allocation reused). Pure data movement:
    /// bit-identity of the batched forward is a property of accumulation
    /// order, which a layout change does not touch.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// `selfᵀ · y` for a column vector `y` (len == rows). Output len == cols.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "t_matvec shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * yr;
            }
        }
        out
    }

    /// Rank-1 accumulate: `self += scale · y · xᵀ` (outer product), the
    /// weight-gradient update of a dense layer.
    pub fn add_outer(&mut self, y: &[f64], x: &[f64], scale: f64) {
        assert_eq!(y.len(), self.rows, "outer shape mismatch (rows)");
        assert_eq!(x.len(), self.cols, "outer shape mismatch (cols)");
        for (r, &yr) in y.iter().enumerate() {
            let s = scale * yr;
            if s == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in row.iter_mut().zip(x) {
                *o += s * a;
            }
        }
    }

    /// In-place `self += scale · other` (same shape).
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Fill with zeros.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// AVX implementation of the transposed batched kernel.
///
/// Each 256-bit op handles four batch lanes; within every lane the
/// scalar sequence is exactly the portable kernel's — separate
/// `vmulpd`/`vaddpd` in ascending `c` order, never `vfmadd` (a fused
/// multiply-add rounds once instead of twice, which would break the
/// bit-identity contract with [`Matrix::matvec`]).
#[cfg(target_arch = "x86_64")]
mod avx {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };

    /// `out[r][s] += Σ_c w[r][c] · a_t[c][s]` over `out` zero-initialized
    /// by the caller.
    ///
    /// # Safety
    /// Caller must verify AVX support, and supply `w` of `rows × n`,
    /// `a_t` of `n × lanes` and `out` of `rows × lanes` elements.
    // SAFETY: the only caller (`Matrix::matmat_t`) gates on
    // `is_x86_feature_detected!("avx")` and passes slices sized exactly
    // rows×n / n×lanes / rows×lanes, re-checked by the debug asserts.
    #[target_feature(enable = "avx")]
    pub unsafe fn matmat_t(
        w: &[f64],
        rows: usize,
        n: usize,
        a_t: &[f64],
        lanes: usize,
        out: &mut [f64],
    ) {
        debug_assert_eq!(w.len(), rows * n);
        debug_assert_eq!(a_t.len(), n * lanes);
        debug_assert_eq!(out.len(), rows * lanes);
        for r in 0..rows {
            let w_row = &w[r * n..(r + 1) * n];
            let dst = &mut out[r * lanes..(r + 1) * lanes];
            let mut c = 0;
            while c + 4 <= n {
                axpy4(
                    dst,
                    [w_row[c], w_row[c + 1], w_row[c + 2], w_row[c + 3]],
                    &a_t[c * lanes..(c + 1) * lanes],
                    &a_t[(c + 1) * lanes..(c + 2) * lanes],
                    &a_t[(c + 2) * lanes..(c + 3) * lanes],
                    &a_t[(c + 3) * lanes..(c + 4) * lanes],
                );
                c += 4;
            }
            while c < n {
                axpy1(dst, w_row[c], &a_t[c * lanes..(c + 1) * lanes]);
                c += 1;
            }
        }
    }

    /// `d[s] = ((((d[s] + w0·s0[s]) + w1·s1[s]) + w2·s2[s]) + w3·s3[s]`
    /// — four ascending-`c` addends per accumulator load/store.
    ///
    /// # Safety
    /// AVX must be supported; all slices must have `d.len()` elements.
    // SAFETY: called only from `matmat_t` (AVX already proven), with the
    // four source slices carved as `lanes`-sized rows of `a_t`, so every
    // `loadu`/`storeu` offset below stays within `d.len()` checked bounds.
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn axpy4(d: &mut [f64], w: [f64; 4], s0: &[f64], s1: &[f64], s2: &[f64], s3: &[f64]) {
        let lanes = d.len();
        debug_assert!(
            s0.len() == lanes && s1.len() == lanes && s2.len() == lanes && s3.len() == lanes
        );
        let (w0, w1, w2, w3) = (
            _mm256_set1_pd(w[0]),
            _mm256_set1_pd(w[1]),
            _mm256_set1_pd(w[2]),
            _mm256_set1_pd(w[3]),
        );
        let mut s = 0;
        while s + 4 <= lanes {
            let mut acc = _mm256_loadu_pd(d.as_ptr().add(s));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(w0, _mm256_loadu_pd(s0.as_ptr().add(s))));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(w1, _mm256_loadu_pd(s1.as_ptr().add(s))));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(w2, _mm256_loadu_pd(s2.as_ptr().add(s))));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(w3, _mm256_loadu_pd(s3.as_ptr().add(s))));
            _mm256_storeu_pd(d.as_mut_ptr().add(s), acc);
            s += 4;
        }
        while s < lanes {
            d[s] = d[s] + w[0] * s0[s] + w[1] * s1[s] + w[2] * s2[s] + w[3] * s3[s];
            s += 1;
        }
    }

    /// Single-`c` tail: `d[s] += w · src[s]`.
    ///
    /// # Safety
    /// AVX must be supported; `src.len()` must equal `d.len()`.
    // SAFETY: called only from `matmat_t` (AVX already proven), with
    // `src` carved as one `lanes`-sized row of `a_t`; unaligned
    // load/store intrinsics keep offsets within `d.len()` bounds.
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn axpy1(d: &mut [f64], w: f64, src: &[f64]) {
        let lanes = d.len();
        debug_assert_eq!(src.len(), lanes);
        let wv = _mm256_set1_pd(w);
        let mut s = 0;
        while s + 4 <= lanes {
            let acc = _mm256_loadu_pd(d.as_ptr().add(s));
            let acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, _mm256_loadu_pd(src.as_ptr().add(s))));
            _mm256_storeu_pd(d.as_mut_ptr().add(s), acc);
            s += 4;
        }
        while s < lanes {
            d[s] += w * src[s];
            s += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_hand_example() {
        // [1 2; 3 4] · [5, 6] = [17, 39]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.matvec(&[5.0, 6.0]), vec![17.0, 39.0]);
    }

    #[test]
    fn t_matvec_hand_example() {
        // [1 2; 3 4]ᵀ · [5, 6] = [1·5+3·6, 2·5+4·6] = [23, 34]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.t_matvec(&[5.0, 6.0]), vec![23.0, 34.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 1.0);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0], -3.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn add_scaled_and_clear() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.0, -2.0]);
        a.clear();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.as_slice()[5], 12.0);
        assert_eq!(m.len(), 6);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_shape_checked() {
        Matrix::zeros(2, 2).matvec(&[1.0]);
    }

    #[test]
    fn matvec_into_matches_matvec_and_reuses_buffer() {
        let m = Matrix::from_fn(3, 4, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.7);
        let x = [0.5, -1.5, 2.0, 0.25];
        let mut out = vec![9.0; 7]; // stale, wrong-sized buffer
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn matmat_rows_are_bitwise_matvec() {
        let m = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f64).sin());
        let batch = Matrix::from_fn(5, 3, |r, c| ((r * 7 + c) as f64 * 0.13).cos());
        let mut out = Matrix::zeros(0, 0);
        m.matmat(&batch, &mut out);
        assert_eq!((out.rows(), out.cols()), (5, 4));
        for s in 0..5 {
            let row: Vec<f64> = (0..3).map(|c| batch.get(s, c)).collect();
            let seq = m.matvec(&row);
            for (r, v) in seq.iter().enumerate() {
                assert_eq!(out.get(s, r).to_bits(), v.to_bits(), "({s},{r})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmat shape mismatch")]
    fn matmat_shape_checked() {
        let mut out = Matrix::zeros(0, 0);
        Matrix::zeros(2, 2).matmat(&Matrix::zeros(1, 3), &mut out);
    }

    #[test]
    fn reshape_reuses_and_resizes() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0; 6]);
        m.reshape(3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m.len(), 12);
        m.reshape(1, 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_fn(3, 2, |r, c| r as f64 - c as f64);
        let s = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
