//! A minimal dense-matrix type — just enough linear algebra for small
//! fully-connected networks. Row-major `f64` storage; no BLAS, no SIMD
//! tricks: the networks here are tiny (tens of thousands of parameters)
//! and clarity wins.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self · x` for a column vector `x` (len == cols). Output len == rows.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// `selfᵀ · y` for a column vector `y` (len == rows). Output len == cols.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "t_matvec shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * yr;
            }
        }
        out
    }

    /// Rank-1 accumulate: `self += scale · y · xᵀ` (outer product), the
    /// weight-gradient update of a dense layer.
    pub fn add_outer(&mut self, y: &[f64], x: &[f64], scale: f64) {
        assert_eq!(y.len(), self.rows, "outer shape mismatch (rows)");
        assert_eq!(x.len(), self.cols, "outer shape mismatch (cols)");
        for (r, &yr) in y.iter().enumerate() {
            let s = scale * yr;
            if s == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in row.iter_mut().zip(x) {
                *o += s * a;
            }
        }
    }

    /// In-place `self += scale · other` (same shape).
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Fill with zeros.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_hand_example() {
        // [1 2; 3 4] · [5, 6] = [17, 39]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.matvec(&[5.0, 6.0]), vec![17.0, 39.0]);
    }

    #[test]
    fn t_matvec_hand_example() {
        // [1 2; 3 4]ᵀ · [5, 6] = [1·5+3·6, 2·5+4·6] = [23, 34]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.t_matvec(&[5.0, 6.0]), vec![23.0, 34.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 1.0);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0], -3.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn add_scaled_and_clear() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![2.0, -4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.0, -2.0]);
        a.clear();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.as_slice()[5], 12.0);
        assert_eq!(m.len(), 6);
    }

    #[test]
    #[should_panic(expected = "matvec shape mismatch")]
    fn matvec_shape_checked() {
        Matrix::zeros(2, 2).matvec(&[1.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_fn(3, 2, |r, c| r as f64 - c as f64);
        let s = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
