// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-nn`: a minimal dense neural-network library — matrices, MLPs
//! with manual backprop, and the Adam optimizer.
//!
//! This is the substrate under [`libra-rl`]'s PPO implementation. It is
//! deliberately tiny: the networks the paper uses are two fully-connected
//! hidden layers, and everything here is plain `f64` math with no
//! dependencies beyond `serde` (for weight caching) and the workspace's
//! deterministic RNG.
//!
//! [`libra-rl`]: ../libra_rl/index.html

pub mod adam;
pub mod matrix;
pub mod mlp;

pub use adam::Adam;
pub use matrix::Matrix;
pub use mlp::{Activation, BatchScratch, ForwardCache, Mlp, MlpGrad};
