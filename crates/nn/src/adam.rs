//! Adam optimizer (Kingma & Ba, 2015) over an [`Mlp`]'s parameters —
//! the optimizer stable-baselines PPO uses.

use crate::mlp::{Mlp, MlpGrad};
use serde::{Deserialize, Serialize};

/// Adam state: first/second-moment estimates per parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Standard coefficients (`β1 = 0.9, β2 = 0.999, ε = 1e-8`).
    pub fn new(net: &Mlp, lr: f64) -> Self {
        let shapes: Vec<usize> = {
            let grad = net.zero_grad();
            Mlp::grad_slices(&grad).iter().map(|s| s.len()).collect()
        };
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: shapes.iter().map(|&n| vec![0.0; n]).collect(),
            v: shapes.iter().map(|&n| vec![0.0; n]).collect(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Change the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam update of `grad` to `net`.
    pub fn step(&mut self, net: &mut Mlp, grad: &MlpGrad) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let grads: Vec<Vec<f64>> = Mlp::grad_slices(grad).iter().map(|s| s.to_vec()).collect();
        let params = net.params_mut();
        assert_eq!(params.len(), grads.len(), "optimizer/net shape mismatch");
        for ((slice, g), (m, v)) in params
            .into_iter()
            .zip(&grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(slice.len(), g.len());
            for i in 0..slice.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                slice[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use libra_types::DetRng;

    #[test]
    fn adam_fits_regression_faster_than_plain_sgd() {
        let mut r = DetRng::new(11);
        let make = |r: &mut DetRng| Mlp::new(&[1, 16, 1], Activation::Tanh, r);
        let data: Vec<(f64, f64)> = (0..16)
            .map(|i| {
                let x = -1.0 + i as f64 / 8.0;
                (x, (3.0 * x).sin())
            })
            .collect();
        let loss = |net: &Mlp| {
            data.iter()
                .map(|&(x, y)| (net.forward(&[x])[0] - y).powi(2))
                .sum::<f64>()
                / data.len() as f64
        };
        let train = |net: &mut Mlp, adam: Option<&mut Adam>, iters: usize| {
            let mut adam = adam;
            for _ in 0..iters {
                let mut grad = net.zero_grad();
                for &(x, y) in &data {
                    let cache = net.forward_cached(&[x]);
                    let err = cache.output()[0] - y;
                    net.backward(&cache, &[2.0 * err / data.len() as f64], &mut grad);
                }
                match adam {
                    Some(ref mut a) => a.step(net, &grad),
                    None => net.sgd_step(&grad, 3e-3),
                }
            }
        };
        let mut net_sgd = make(&mut r);
        let mut net_adam = net_sgd.clone();
        let mut adam = Adam::new(&net_adam, 3e-3);
        train(&mut net_sgd, None, 1500);
        train(&mut net_adam, Some(&mut adam), 1500);
        let (ls, la) = (loss(&net_sgd), loss(&net_adam));
        assert!(la < ls, "adam {la} should beat sgd {ls}");
        assert!(la < 0.05, "adam loss {la}");
        assert_eq!(adam.steps(), 1500);
    }

    #[test]
    fn lr_setter() {
        let mut r = DetRng::new(2);
        let net = Mlp::new(&[1, 2, 1], Activation::Tanh, &mut r);
        let mut a = Adam::new(&net, 1e-3);
        assert_eq!(a.lr(), 1e-3);
        a.set_lr(5e-4);
        assert_eq!(a.lr(), 5e-4);
    }
}
