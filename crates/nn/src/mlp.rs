//! A fully-connected network with tanh hidden activations and manual
//! backpropagation — the function approximator behind the PPO actor and
//! critic. The paper trains 2×512 networks on TensorFlow; the math here
//! is identical, only the framework is gone.

use crate::matrix::Matrix;
use libra_types::DetRng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (PPO's conventional choice for control tasks).
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// One dense layer: `y = act(W·x + b)` (the output layer is linear).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    w: Matrix,
    b: Vec<f64>,
}

/// A multi-layer perceptron with linear output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    activation: Activation,
    sizes: Vec<usize>,
}

/// Gradients with the same shapes as the network's parameters.
#[derive(Debug, Clone)]
pub struct MlpGrad {
    w: Vec<Matrix>,
    b: Vec<Vec<f64>>,
}

impl MlpGrad {
    /// Zero the accumulated gradient.
    pub fn clear(&mut self) {
        for m in &mut self.w {
            m.clear();
        }
        for v in &mut self.b {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Global L2 norm of the gradient (for clipping).
    pub fn l2_norm(&self) -> f64 {
        let mut s = 0.0;
        for m in &self.w {
            s += m.as_slice().iter().map(|x| x * x).sum::<f64>();
        }
        for v in &self.b {
            s += v.iter().map(|x| x * x).sum::<f64>();
        }
        s.sqrt()
    }

    /// Scale every component (used by gradient clipping).
    pub fn scale(&mut self, factor: f64) {
        for m in &mut self.w {
            m.as_mut_slice().iter_mut().for_each(|x| *x *= factor);
        }
        for v in &mut self.b {
            v.iter_mut().for_each(|x| *x *= factor);
        }
    }
}

/// Cached forward-pass activations needed for backprop.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i]` the output of layer
    /// `i-1` (post-activation for hidden layers, linear for the last).
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.activations.last().expect("non-empty cache")
    }
}

impl Mlp {
    /// Build a network with the given layer sizes, e.g. `[32, 64, 64, 2]`.
    /// Weights use Xavier/Glorot uniform initialization.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut DetRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for win in sizes.windows(2) {
            let (n_in, n_out) = (win[0], win[1]);
            let limit = (6.0 / (n_in + n_out) as f64).sqrt();
            let w = Matrix::from_fn(n_out, n_in, |_, _| rng.uniform_range(-limit, limit));
            layers.push(Layer {
                w,
                b: vec![0.0; n_out],
            });
        }
        Mlp {
            layers,
            activation,
            sizes: sizes.to_vec(),
        }
    }

    /// The configured layer sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total scalar parameter count (the memory-overhead proxy).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass returning only the output.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_cached(input)
            .activations
            .pop()
            .expect("output")
    }

    /// Forward pass keeping intermediate activations for backprop.
    pub fn forward_cached(&self, input: &[f64]) -> ForwardCache {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.w.matvec(activations.last().expect("prev"));
            for (zz, b) in z.iter_mut().zip(&layer.b) {
                *zz += b;
            }
            if i + 1 < self.layers.len() {
                for v in z.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            activations.push(z);
        }
        ForwardCache { activations }
    }

    /// A zero gradient with this network's shapes.
    pub fn zero_grad(&self) -> MlpGrad {
        MlpGrad {
            w: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            b: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Backpropagate `d(loss)/d(output)` through the cached forward pass,
    /// accumulating parameter gradients into `grad` and returning
    /// `d(loss)/d(input)`.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        output_grad: &[f64],
        grad: &mut MlpGrad,
    ) -> Vec<f64> {
        assert_eq!(output_grad.len(), *self.sizes.last().expect("sizes"));
        let mut delta = output_grad.to_vec();
        for i in (0..self.layers.len()).rev() {
            let input_act = &cache.activations[i];
            // Hidden layers: fold the activation derivative into delta.
            if i + 1 < self.layers.len() {
                let out_act = &cache.activations[i + 1];
                for (d, &y) in delta.iter_mut().zip(out_act) {
                    *d *= self.activation.derivative_from_output(y);
                }
            }
            grad.w[i].add_outer(&delta, input_act, 1.0);
            for (g, d) in grad.b[i].iter_mut().zip(&delta) {
                *g += d;
            }
            delta = self.layers[i].w.t_matvec(&delta);
        }
        delta
    }

    /// Apply `params += -lr · grad` (plain SGD step; Adam lives in
    /// [`crate::adam`]).
    pub fn sgd_step(&mut self, grad: &MlpGrad, lr: f64) {
        for (layer, (gw, gb)) in self.layers.iter_mut().zip(grad.w.iter().zip(&grad.b)) {
            layer.w.add_scaled(gw, -lr);
            for (b, g) in layer.b.iter_mut().zip(gb) {
                *b -= lr * g;
            }
        }
    }

    /// True when every weight and bias is a finite number. A single
    /// NaN/inf parameter poisons every forward pass, so this is the
    /// cheapest possible corruption probe.
    pub fn params_finite(&self) -> bool {
        self.layers.iter().all(|l| {
            l.w.as_slice().iter().all(|x| x.is_finite()) && l.b.iter().all(|x| x.is_finite())
        })
    }

    /// Global L2 norm over all parameters (weight-explosion probe).
    pub fn param_l2_norm(&self) -> f64 {
        let mut s = 0.0;
        for l in &self.layers {
            s += l.w.as_slice().iter().map(|x| x * x).sum::<f64>();
            s += l.b.iter().map(|x| x * x).sum::<f64>();
        }
        s.sqrt()
    }

    /// Apply `f` to every parameter in place. Exists so fault-injection
    /// tests can corrupt a network deterministically.
    pub fn map_params(&mut self, mut f: impl FnMut(f64) -> f64) {
        for l in &mut self.layers {
            for x in l.w.as_mut_slice() {
                *x = f(*x);
            }
            for x in &mut l.b {
                *x = f(*x);
            }
        }
    }

    /// Flat views of all parameters, for the optimizer.
    pub(crate) fn params_mut(&mut self) -> Vec<&mut [f64]> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for l in &mut self.layers {
            out.push(l.w.as_mut_slice());
            out.push(l.b.as_mut_slice());
        }
        out
    }

    /// Flat views of a gradient's components, in the same order as
    /// [`Mlp::params_mut`].
    pub(crate) fn grad_slices(grad: &MlpGrad) -> Vec<&[f64]> {
        let mut out = Vec::with_capacity(grad.w.len() * 2);
        for (w, b) in grad.w.iter().zip(&grad.b) {
            out.push(w.as_slice());
            out.push(b.as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng());
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.forward(&[0.0; 4]).len(), 2);
    }

    #[test]
    fn zero_input_zero_bias_gives_zero_output() {
        let net = Mlp::new(&[3, 5, 1], Activation::Tanh, &mut rng());
        let out = net.forward(&[0.0, 0.0, 0.0]);
        assert!(out[0].abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut r = rng();
        let mut net = Mlp::new(&[3, 6, 4, 2], Activation::Tanh, &mut r);
        let input = [0.3, -0.7, 1.1];
        // Loss = sum of outputs → d(loss)/d(out) = ones.
        let cache = net.forward_cached(&input);
        let mut grad = net.zero_grad();
        net.backward(&cache, &[1.0, 1.0], &mut grad);

        let analytic = {
            let gs = Mlp::grad_slices(&grad);
            gs.iter()
                .flat_map(|s| s.iter().copied())
                .collect::<Vec<_>>()
        };
        let eps = 1e-6;
        let mut numeric = Vec::new();
        let n_slices = net.params_mut().len();
        for si in 0..n_slices {
            let len = net.params_mut()[si].len();
            for pi in 0..len {
                let orig = net.params_mut()[si][pi];
                net.params_mut()[si][pi] = orig + eps;
                let up: f64 = net.forward(&input).iter().sum();
                net.params_mut()[si][pi] = orig - eps;
                let dn: f64 = net.forward(&input).iter().sum();
                net.params_mut()[si][pi] = orig;
                numeric.push((up - dn) / (2.0 * eps));
            }
        }
        assert_eq!(analytic.len(), numeric.len());
        for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-6,
                "param {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut r = rng();
        let net = Mlp::new(&[2, 5, 1], Activation::Tanh, &mut r);
        let input = [0.4, -0.2];
        let cache = net.forward_cached(&input);
        let mut grad = net.zero_grad();
        let din = net.backward(&cache, &[1.0], &mut grad);
        let eps = 1e-6;
        for i in 0..2 {
            let mut up_in = input;
            up_in[i] += eps;
            let mut dn_in = input;
            dn_in[i] -= eps;
            let num = (net.forward(&up_in)[0] - net.forward(&dn_in)[0]) / (2.0 * eps);
            assert!((din[i] - num).abs() < 1e-6, "input {i}");
        }
    }

    #[test]
    fn sgd_reduces_quadratic_loss() {
        let mut r = rng();
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, &mut r);
        // Fit f(x) = 2x on a few points.
        let data = [(-1.0, -2.0), (-0.5, -1.0), (0.5, 1.0), (1.0, 2.0)];
        let loss = |net: &Mlp| -> f64 {
            data.iter()
                .map(|&(x, y)| (net.forward(&[x])[0] - y).powi(2))
                .sum::<f64>()
        };
        let before = loss(&net);
        for _ in 0..500 {
            let mut grad = net.zero_grad();
            for &(x, y) in &data {
                let cache = net.forward_cached(&[x]);
                let err = cache.output()[0] - y;
                net.backward(&cache, &[2.0 * err], &mut grad);
            }
            net.sgd_step(&grad, 0.01);
        }
        let after = loss(&net);
        assert!(after < before * 0.05, "before {before}, after {after}");
    }

    #[test]
    fn relu_activation_works() {
        let mut r = rng();
        let net = Mlp::new(&[2, 4, 1], Activation::Relu, &mut r);
        let out = net.forward(&[1.0, -1.0]);
        assert!(out[0].is_finite());
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(2.0), 1.0);
    }

    #[test]
    fn grad_norm_and_scale() {
        let mut r = rng();
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut r);
        let cache = net.forward_cached(&[1.0, 1.0]);
        let mut grad = net.zero_grad();
        net.backward(&cache, &[1.0], &mut grad);
        let n = grad.l2_norm();
        assert!(n > 0.0);
        grad.scale(0.5);
        assert!((grad.l2_norm() - 0.5 * n).abs() < 1e-12);
        grad.clear();
        assert_eq!(grad.l2_norm(), 0.0);
    }

    #[test]
    fn finite_check_and_poisoning() {
        let mut r = rng();
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, &mut r);
        assert!(net.params_finite());
        let norm = net.param_l2_norm();
        assert!(norm > 0.0 && norm.is_finite());
        net.map_params(|x| x * 2.0);
        assert!((net.param_l2_norm() - 2.0 * norm).abs() < 1e-9);
        net.map_params(|_| f64::NAN);
        assert!(!net.params_finite());
        assert!(net.forward(&[0.5, 0.5])[0].is_nan());
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let mut r = rng();
        let net = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut r);
        let s = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&s).unwrap();
        let input = [0.1, 0.2, 0.3];
        assert_eq!(net.forward(&input), back.forward(&input));
    }
}
