//! A fully-connected network with tanh hidden activations and manual
//! backpropagation — the function approximator behind the PPO actor and
//! critic. The paper trains 2×512 networks on TensorFlow; the math here
//! is identical, only the framework is gone.

use crate::matrix::Matrix;
use libra_types::DetRng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (PPO's conventional choice for control tasks).
    Tanh,
    /// Rectified linear unit.
    Relu,
}

/// Deterministic polynomial `tanh` for the inference hot path.
///
/// libm's `tanh` costs ~20ns per call on the bench machine; at 64+64
/// hidden units per decision it dominates eval latency and — being one
/// opaque scalar call per element in *both* the per-flow and the batched
/// path — caps the policy server's speedup no matter how fast the GEMM
/// gets. This replacement is `sign(x) · (1 − 2/(e^{2|x|}+1))` with
/// `e^y = 2^k · e^r` (`r = y − k·ln 2`, `|r| ≤ ln2/2`, degree-11 Taylor,
/// exponent assembled by bit manipulation): ~25 straight-line f64 ops,
/// no table, no branch on the hot path. Max observed error vs libm is
/// ~1e-15 relative; saturation (|x| ≥ 20 → ±1), `±0`, `±∞ → ±1` and NaN
/// propagation all match libm.
///
/// It is pure, platform-independent f64 arithmetic, so eval stays
/// exactly reproducible — the batched-vs-per-flow bit-identity contract
/// compares two paths that both call *this* function.
#[inline]
fn tanh_eval(x: f64) -> f64 {
    const SAT: f64 = 20.0; // tanh(20) rounds to 1.0 in f64
                           // 2^52 + 2^51: adding it rounds to nearest integer and leaves that
                           // integer in the low mantissa bits (valid for |v| < 2^51).
    const MAGIC: f64 = 6_755_399_441_055_744.0;
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    // NaN.min(SAT) picks SAT, so y below is always in [0, 40].
    let y = 2.0 * x.abs().min(SAT);
    let magic = y * std::f64::consts::LOG2_E + MAGIC;
    let k = magic - MAGIC; // round(y / ln 2) as an exact-integer f64
    let r = (y - k * LN2_HI) - k * LN2_LO;
    // e^r − 1 by Horner over the Taylor series without its constant
    // term; |r| ≤ ln2/2 keeps the truncation error near the f64
    // epsilon, and the expm1 form below avoids the catastrophic
    // `1 − 2/(e+1)` cancellation for small |x| (where tanh(x) ≈ x).
    let mut p = 1.0 / 39_916_800.0;
    for inv in [
        3_628_800.0,
        362_880.0,
        40_320.0,
        5_040.0,
        720.0,
        120.0,
        24.0,
        6.0,
        2.0,
        1.0,
    ] {
        p = p * r + 1.0 / inv;
    }
    let q = p * r; // e^r − 1
                   // 2^k: k sits in magic's low mantissa bits offset by 2^51.
    let k_bits = (magic.to_bits() & 0x000F_FFFF_FFFF_FFFF).wrapping_sub(1 << 51);
    let scale = f64::from_bits(k_bits.wrapping_add(1023) << 52);
    // e^y − 1 = (2^k − 1) + 2^k·(e^r − 1); tanh = (e^y − 1)/(e^y + 1).
    let em1 = (scale - 1.0) + scale * q;
    let t = (em1 / (em1 + 2.0)).copysign(x);
    // Late NaN select keeps libm's NaN propagation without putting a
    // cold branch ahead of the arithmetic.
    if x.is_nan() {
        x
    } else {
        t
    }
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// The inference-path activation: identical to [`Activation::apply`]
    /// for ReLU, and the fast deterministic [`tanh_eval`] for tanh.
    ///
    /// Training (`forward_cached` + backprop) keeps libm `tanh`, so
    /// trained weights remain a pure function of the training config and
    /// are untouched by inference-path optimizations; eval trades ≤2e-15
    /// relative activation error for a ~3× cheaper hidden layer. Both
    /// eval paths — per-flow [`Mlp::forward_into`] and batched
    /// [`Mlp::forward_batch_into`] — call this same scalar function, so
    /// the batched-vs-per-flow bit-identity contract is unaffected.
    pub fn apply_eval(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => tanh_eval(x),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    ///
    /// ReLU subgradient convention: at the kink we define `f'(0) := 0`.
    /// Because the derivative is reconstructed from the activated output,
    /// `y == 0.0` covers both negative pre-activations *and* inputs that
    /// were exactly `0.0` — both get a zero gradient. This matches the
    /// `max(0, x)` forward pass (which maps `0 → 0`) and is the common
    /// deep-learning convention; it is pinned by
    /// `relu_subgradient_at_zero_is_zero` so a batched backprop added
    /// later cannot silently pick the other subgradient (`f'(0) := 1`)
    /// and diverge from the sequential path.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// One dense layer: `y = act(W·x + b)` (the output layer is linear).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    w: Matrix,
    b: Vec<f64>,
}

/// A multi-layer perceptron with linear output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    activation: Activation,
    sizes: Vec<usize>,
}

/// Gradients with the same shapes as the network's parameters.
#[derive(Debug, Clone)]
pub struct MlpGrad {
    w: Vec<Matrix>,
    b: Vec<Vec<f64>>,
}

impl MlpGrad {
    /// Zero the accumulated gradient.
    pub fn clear(&mut self) {
        for m in &mut self.w {
            m.clear();
        }
        for v in &mut self.b {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Global L2 norm of the gradient (for clipping).
    pub fn l2_norm(&self) -> f64 {
        let mut s = 0.0;
        for m in &self.w {
            s += m.as_slice().iter().map(|x| x * x).sum::<f64>();
        }
        for v in &self.b {
            s += v.iter().map(|x| x * x).sum::<f64>();
        }
        s.sqrt()
    }

    /// Scale every component (used by gradient clipping).
    pub fn scale(&mut self, factor: f64) {
        for m in &mut self.w {
            m.as_mut_slice().iter_mut().for_each(|x| *x *= factor);
        }
        for v in &mut self.b {
            v.iter_mut().for_each(|x| *x *= factor);
        }
    }
}

/// Cached forward-pass activations needed for backprop.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i]` the output of layer
    /// `i-1` (post-activation for hidden layers, linear for the last).
    activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.activations.last().expect("non-empty cache")
    }
}

/// Reused ping-pong matrices for [`Mlp::forward_batch_into`]. One pair
/// serves any batch size and network shape — the matrices reshape in
/// place, so a long-lived policy server allocates only while batches are
/// still growing toward their high-water mark.
#[derive(Debug, Clone)]
pub struct BatchScratch {
    a: Matrix,
    b: Matrix,
}

impl BatchScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch {
            a: Matrix::zeros(0, 0),
            b: Matrix::zeros(0, 0),
        }
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        BatchScratch::new()
    }
}

impl Mlp {
    /// Build a network with the given layer sizes, e.g. `[32, 64, 64, 2]`.
    /// Weights use Xavier/Glorot uniform initialization.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut DetRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for win in sizes.windows(2) {
            let (n_in, n_out) = (win[0], win[1]);
            let limit = (6.0 / (n_in + n_out) as f64).sqrt();
            let w = Matrix::from_fn(n_out, n_in, |_, _| rng.uniform_range(-limit, limit));
            layers.push(Layer {
                w,
                b: vec![0.0; n_out],
            });
        }
        Mlp {
            layers,
            activation,
            sizes: sizes.to_vec(),
        }
    }

    /// The configured layer sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total scalar parameter count (the memory-overhead proxy).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass returning only the output (cache-free).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.forward_into(input, &mut out, &mut scratch);
        out
    }

    /// Cache-free forward pass into caller-owned buffers. This is the
    /// eval hot path: unlike [`Mlp::forward_cached`] it keeps no
    /// per-layer activations — just two ping-pong buffers the caller
    /// reuses across decisions, so steady state allocates nothing
    /// (`forward_cached` allocates `layers + 1` Vecs per call).
    ///
    /// The linear algebra (matvec, bias add) runs in exactly the order of
    /// `forward_cached`; hidden activations go through
    /// [`Activation::apply_eval`] (fast deterministic tanh, ≤2e-15
    /// relative error vs libm), so eval output tracks the training-time
    /// forward to ~1e-12 and is bit-identical to it for ReLU networks.
    pub fn forward_into(&self, input: &[f64], out: &mut Vec<f64>, scratch: &mut Vec<f64>) {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        scratch.clear();
        scratch.extend_from_slice(input);
        // `src` holds the current activation, `dst` receives the next
        // layer's; the roles swap after every layer.
        let mut src: &mut Vec<f64> = scratch;
        let mut dst: &mut Vec<f64> = out;
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.w.matvec_into(src, dst);
            for (z, b) in dst.iter_mut().zip(&layer.b) {
                *z += b;
            }
            if i + 1 < n {
                for v in dst.iter_mut() {
                    *v = self.activation.apply_eval(*v);
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        // The final activation sits in `src`; with an even layer count
        // that is physically `scratch`, so move it into `out`.
        if n.is_multiple_of(2) {
            std::mem::swap(src, dst);
        }
    }

    /// Batched forward pass: one state vector per row of `input`, one
    /// output per row of the result (`rows × act_dim`). Each row is
    /// bit-identical to `forward` on that row — see
    /// [`crate::Matrix::matmat`] for the accumulation-order contract.
    pub fn forward_batch(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = BatchScratch::new();
        self.forward_batch_into(input, &mut out, &mut scratch);
        out
    }

    /// Allocation-free batched forward pass (the policy server's kernel):
    /// one matrix-matrix product per layer instead of one matvec per
    /// flow, with `scratch` ping-ponging the intermediate activations.
    ///
    /// Internally activations live feature-major (`dim × batch`) so
    /// [`Matrix::matmat_t`]'s inner loop accumulates along contiguous
    /// batch lanes — the axis the compiler can vectorize. Transposing in
    /// and out is pure data movement; every output element still sums in
    /// matvec's index order, so each batch row stays bit-identical to a
    /// per-flow [`Mlp::forward`].
    pub fn forward_batch_into(&self, input: &Matrix, out: &mut Matrix, scratch: &mut BatchScratch) {
        assert_eq!(input.cols(), self.sizes[0], "input size mismatch");
        let last_dim = *self.sizes.last().expect("non-empty sizes");
        if input.rows() == 0 {
            out.reshape(0, last_dim);
            return;
        }
        let n = self.layers.len();
        let mut ping = &mut scratch.a;
        let mut pong = &mut scratch.b;
        input.transpose_into(ping);
        for (i, layer) in self.layers.iter().enumerate() {
            let last = i + 1 == n;
            layer.w.matmat_t(ping, pong);
            // Bias strictly after the full dot product (matching
            // `forward_into`'s dot-then-bias order); row `r` of the
            // transposed activation is output feature `r`, so its bias
            // broadcasts across the batch lanes.
            let lanes = pong.cols();
            for (row, &b) in pong.as_mut_slice().chunks_mut(lanes).zip(&layer.b) {
                for z in row.iter_mut() {
                    *z += b;
                }
                if !last {
                    for v in row.iter_mut() {
                        *v = self.activation.apply_eval(*v);
                    }
                }
            }
            std::mem::swap(&mut ping, &mut pong);
        }
        // After the final swap the last activation sits in `ping`,
        // feature-major; hand it back row-major (`batch × act_dim`).
        ping.transpose_into(out);
    }

    /// Forward pass keeping intermediate activations for backprop.
    pub fn forward_cached(&self, input: &[f64]) -> ForwardCache {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.w.matvec(activations.last().expect("prev"));
            for (zz, b) in z.iter_mut().zip(&layer.b) {
                *zz += b;
            }
            if i + 1 < self.layers.len() {
                for v in z.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            activations.push(z);
        }
        ForwardCache { activations }
    }

    /// A zero gradient with this network's shapes.
    pub fn zero_grad(&self) -> MlpGrad {
        MlpGrad {
            w: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            b: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Backpropagate `d(loss)/d(output)` through the cached forward pass,
    /// accumulating parameter gradients into `grad` and returning
    /// `d(loss)/d(input)`.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        output_grad: &[f64],
        grad: &mut MlpGrad,
    ) -> Vec<f64> {
        assert_eq!(output_grad.len(), *self.sizes.last().expect("sizes"));
        let mut delta = output_grad.to_vec();
        for i in (0..self.layers.len()).rev() {
            let input_act = &cache.activations[i];
            // Hidden layers: fold the activation derivative into delta.
            if i + 1 < self.layers.len() {
                let out_act = &cache.activations[i + 1];
                for (d, &y) in delta.iter_mut().zip(out_act) {
                    *d *= self.activation.derivative_from_output(y);
                }
            }
            grad.w[i].add_outer(&delta, input_act, 1.0);
            for (g, d) in grad.b[i].iter_mut().zip(&delta) {
                *g += d;
            }
            delta = self.layers[i].w.t_matvec(&delta);
        }
        delta
    }

    /// Apply `params += -lr · grad` (plain SGD step; Adam lives in
    /// [`crate::adam`]).
    pub fn sgd_step(&mut self, grad: &MlpGrad, lr: f64) {
        for (layer, (gw, gb)) in self.layers.iter_mut().zip(grad.w.iter().zip(&grad.b)) {
            layer.w.add_scaled(gw, -lr);
            for (b, g) in layer.b.iter_mut().zip(gb) {
                *b -= lr * g;
            }
        }
    }

    /// True when every weight and bias is a finite number. A single
    /// NaN/inf parameter poisons every forward pass, so this is the
    /// cheapest possible corruption probe.
    pub fn params_finite(&self) -> bool {
        self.layers.iter().all(|l| {
            l.w.as_slice().iter().all(|x| x.is_finite()) && l.b.iter().all(|x| x.is_finite())
        })
    }

    /// Global L2 norm over all parameters (weight-explosion probe).
    pub fn param_l2_norm(&self) -> f64 {
        let mut s = 0.0;
        for l in &self.layers {
            s += l.w.as_slice().iter().map(|x| x * x).sum::<f64>();
            s += l.b.iter().map(|x| x * x).sum::<f64>();
        }
        s.sqrt()
    }

    /// Apply `f` to every parameter in place. Exists so fault-injection
    /// tests can corrupt a network deterministically.
    pub fn map_params(&mut self, mut f: impl FnMut(f64) -> f64) {
        for l in &mut self.layers {
            for x in l.w.as_mut_slice() {
                *x = f(*x);
            }
            for x in &mut l.b {
                *x = f(*x);
            }
        }
    }

    /// Flat views of all parameters, for the optimizer.
    pub(crate) fn params_mut(&mut self) -> Vec<&mut [f64]> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for l in &mut self.layers {
            out.push(l.w.as_mut_slice());
            out.push(l.b.as_mut_slice());
        }
        out
    }

    /// Flat views of a gradient's components, in the same order as
    /// [`Mlp::params_mut`].
    pub(crate) fn grad_slices(grad: &MlpGrad) -> Vec<&[f64]> {
        let mut out = Vec::with_capacity(grad.w.len() * 2);
        for (w, b) in grad.w.iter().zip(&grad.b) {
            out.push(w.as_slice());
            out.push(b.as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::new(&[4, 8, 2], Activation::Tanh, &mut rng());
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(net.forward(&[0.0; 4]).len(), 2);
    }

    #[test]
    fn zero_input_zero_bias_gives_zero_output() {
        let net = Mlp::new(&[3, 5, 1], Activation::Tanh, &mut rng());
        let out = net.forward(&[0.0, 0.0, 0.0]);
        assert!(out[0].abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut r = rng();
        let mut net = Mlp::new(&[3, 6, 4, 2], Activation::Tanh, &mut r);
        let input = [0.3, -0.7, 1.1];
        // Loss = sum of outputs → d(loss)/d(out) = ones.
        let cache = net.forward_cached(&input);
        let mut grad = net.zero_grad();
        net.backward(&cache, &[1.0, 1.0], &mut grad);

        let analytic = {
            let gs = Mlp::grad_slices(&grad);
            gs.iter()
                .flat_map(|s| s.iter().copied())
                .collect::<Vec<_>>()
        };
        let eps = 1e-6;
        let mut numeric = Vec::new();
        let n_slices = net.params_mut().len();
        for si in 0..n_slices {
            let len = net.params_mut()[si].len();
            for pi in 0..len {
                let orig = net.params_mut()[si][pi];
                net.params_mut()[si][pi] = orig + eps;
                let up: f64 = net.forward(&input).iter().sum();
                net.params_mut()[si][pi] = orig - eps;
                let dn: f64 = net.forward(&input).iter().sum();
                net.params_mut()[si][pi] = orig;
                numeric.push((up - dn) / (2.0 * eps));
            }
        }
        assert_eq!(analytic.len(), numeric.len());
        for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() < 1e-6,
                "param {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut r = rng();
        let net = Mlp::new(&[2, 5, 1], Activation::Tanh, &mut r);
        let input = [0.4, -0.2];
        let cache = net.forward_cached(&input);
        let mut grad = net.zero_grad();
        let din = net.backward(&cache, &[1.0], &mut grad);
        let eps = 1e-6;
        for i in 0..2 {
            let mut up_in = input;
            up_in[i] += eps;
            let mut dn_in = input;
            dn_in[i] -= eps;
            let num = (net.forward(&up_in)[0] - net.forward(&dn_in)[0]) / (2.0 * eps);
            assert!((din[i] - num).abs() < 1e-6, "input {i}");
        }
    }

    #[test]
    fn sgd_reduces_quadratic_loss() {
        let mut r = rng();
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, &mut r);
        // Fit f(x) = 2x on a few points.
        let data = [(-1.0, -2.0), (-0.5, -1.0), (0.5, 1.0), (1.0, 2.0)];
        let loss = |net: &Mlp| -> f64 {
            data.iter()
                .map(|&(x, y)| (net.forward(&[x])[0] - y).powi(2))
                .sum::<f64>()
        };
        let before = loss(&net);
        for _ in 0..500 {
            let mut grad = net.zero_grad();
            for &(x, y) in &data {
                let cache = net.forward_cached(&[x]);
                let err = cache.output()[0] - y;
                net.backward(&cache, &[2.0 * err], &mut grad);
            }
            net.sgd_step(&grad, 0.01);
        }
        let after = loss(&net);
        assert!(after < before * 0.05, "before {before}, after {after}");
    }

    #[test]
    fn relu_subgradient_at_zero_is_zero() {
        // The pinned convention: f'(0) := 0, reconstructed from the
        // activated output. `apply` maps 0 (and -0.0) to 0.0, and the
        // derivative at that output is exactly 0 — not 1. A future
        // batched backprop must reproduce this or its gradients diverge
        // from the sequential path for exactly-zero pre-activations.
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(-0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(
            Activation::Relu.derivative_from_output(f64::MIN_POSITIVE),
            1.0
        );
        // End-to-end: a unit whose pre-activation is exactly 0 passes no
        // gradient. Fresh biases are zero, so a zero input yields an
        // exactly-zero hidden pre-activation regardless of the weights.
        let net = Mlp::new(&[1, 4, 1], Activation::Relu, &mut rng());
        let cache = net.forward_cached(&[0.0]);
        let mut grad = net.zero_grad();
        let din = net.backward(&cache, &[1.0], &mut grad);
        assert_eq!(din[0], 0.0, "zero pre-activation must block the gradient");
    }

    /// Eval (`forward_into`, fast tanh) vs training (`forward_cached`,
    /// libm tanh): bit-identical for ReLU nets (whose activations are
    /// shared) and within ~1e-12 for tanh nets — the train/serve skew
    /// budget of `Activation::apply_eval`.
    #[test]
    fn forward_into_tracks_cached_forward() {
        let mut r = rng();
        for sizes in [&[3usize, 5, 2][..], &[4, 8, 8, 3][..], &[2, 6][..]] {
            for act in [Activation::Tanh, Activation::Relu] {
                let net = Mlp::new(sizes, act, &mut r);
                let input: Vec<f64> = (0..sizes[0]).map(|i| (i as f64 - 1.3) * 0.7).collect();
                let cached = net.forward_cached(&input);
                let mut out = vec![42.0; 9]; // stale buffer contents
                let mut scratch = vec![-7.0; 3];
                net.forward_into(&input, &mut out, &mut scratch);
                assert_eq!(out.len(), cached.output().len());
                for (a, b) in out.iter().zip(cached.output()) {
                    match act {
                        Activation::Relu => {
                            assert_eq!(a.to_bits(), b.to_bits(), "sizes {sizes:?}")
                        }
                        Activation::Tanh => assert!(
                            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                            "sizes {sizes:?}: eval {a} vs cached {b}"
                        ),
                    }
                }
            }
        }
    }

    /// The fast eval tanh stays within its advertised error budget of
    /// libm and matches it exactly on the special points.
    #[test]
    fn tanh_eval_tracks_libm() {
        let mut worst = 0.0_f64;
        for i in 0..200_001 {
            let x = -25.0 + i as f64 * (50.0 / 200_000.0);
            let (a, b) = (tanh_eval(x), x.tanh());
            worst = worst.max((a - b).abs() / b.abs().max(f64::MIN_POSITIVE));
        }
        assert!(worst < 1e-13, "relative error {worst:e} vs libm");
        assert_eq!(tanh_eval(0.0).to_bits(), 0.0_f64.to_bits());
        assert_eq!(tanh_eval(-0.0).to_bits(), (-0.0_f64).to_bits());
        assert_eq!(tanh_eval(f64::INFINITY), 1.0);
        assert_eq!(tanh_eval(f64::NEG_INFINITY), -1.0);
        assert_eq!(tanh_eval(25.0), 1.0);
        assert_eq!(tanh_eval(-25.0), -1.0);
        assert!(tanh_eval(f64::NAN).is_nan());
        // Tiny inputs: tanh(x) ≈ x, no underflow surprises.
        assert!((tanh_eval(1e-300) - 1e-300).abs() < 1e-310);
    }

    #[test]
    fn forward_batch_matches_forward_bitwise() {
        let mut r = rng();
        for sizes in [&[3usize, 5, 2][..], &[4, 8, 8, 3][..], &[2, 6][..]] {
            let net = Mlp::new(sizes, Activation::Tanh, &mut r);
            let batch = Matrix::from_fn(7, sizes[0], |s, c| ((s * 13 + c) as f64 * 0.31).sin());
            let out = net.forward_batch(&batch);
            assert_eq!((out.rows(), out.cols()), (7, *sizes.last().unwrap()));
            for s in 0..7 {
                let row: Vec<f64> = (0..sizes[0]).map(|c| batch.get(s, c)).collect();
                let seq = net.forward(&row);
                for (c, v) in seq.iter().enumerate() {
                    assert_eq!(
                        out.get(s, c).to_bits(),
                        v.to_bits(),
                        "sizes {sizes:?} row {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_scratch_is_reusable_across_shapes() {
        let mut r = rng();
        let small = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut r);
        let big = Mlp::new(&[5, 8, 4], Activation::Tanh, &mut r);
        let mut scratch = BatchScratch::new();
        let mut out = Matrix::zeros(0, 0);
        let b1 = Matrix::from_fn(4, 2, |s, c| (s + c) as f64 * 0.1);
        small.forward_batch_into(&b1, &mut out, &mut scratch);
        assert_eq!((out.rows(), out.cols()), (4, 1));
        let b2 = Matrix::from_fn(2, 5, |s, c| (s * 5 + c) as f64 * -0.2);
        big.forward_batch_into(&b2, &mut out, &mut scratch);
        assert_eq!((out.rows(), out.cols()), (2, 4));
        assert_eq!(out.as_slice(), big.forward_batch(&b2).as_slice());
    }

    #[test]
    fn relu_activation_works() {
        let mut r = rng();
        let net = Mlp::new(&[2, 4, 1], Activation::Relu, &mut r);
        let out = net.forward(&[1.0, -1.0]);
        assert!(out[0].is_finite());
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(2.0), 1.0);
    }

    #[test]
    fn grad_norm_and_scale() {
        let mut r = rng();
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, &mut r);
        let cache = net.forward_cached(&[1.0, 1.0]);
        let mut grad = net.zero_grad();
        net.backward(&cache, &[1.0], &mut grad);
        let n = grad.l2_norm();
        assert!(n > 0.0);
        grad.scale(0.5);
        assert!((grad.l2_norm() - 0.5 * n).abs() < 1e-12);
        grad.clear();
        assert_eq!(grad.l2_norm(), 0.0);
    }

    #[test]
    fn finite_check_and_poisoning() {
        let mut r = rng();
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, &mut r);
        assert!(net.params_finite());
        let norm = net.param_l2_norm();
        assert!(norm > 0.0 && norm.is_finite());
        net.map_params(|x| x * 2.0);
        assert!((net.param_l2_norm() - 2.0 * norm).abs() < 1e-9);
        net.map_params(|_| f64::NAN);
        assert!(!net.params_finite());
        assert!(net.forward(&[0.5, 0.5])[0].is_nan());
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let mut r = rng();
        let net = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut r);
        let s = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&s).unwrap();
        let input = [0.1, 0.2, 0.3];
        assert_eq!(net.forward(&input), back.forward(&input));
    }
}
