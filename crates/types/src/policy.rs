//! The policy-service boundary: how flows hand state vectors to a shared
//! inference server and get actions back.
//!
//! This lives in `libra-types` (not `libra-rl`) so the simulator can
//! drive any [`PolicyService`] without depending on the RL crates, and
//! the RL crates can implement one without depending on the simulator.
//!
//! ## Determinism contract
//!
//! A [`PolicyService::evaluate`] call receives the whole decision tick's
//! requests as one slice, **sorted by ascending flow id** (the same
//! index-ordered claim discipline the sweep runner uses), and must fill
//! every request's `action` as a pure function of the request batch —
//! no RNG, no wall clock, no state that depends on batch composition.
//! Under that contract, evaluating flows together or one at a time
//! yields bit-identical actions, which is what lets the simulator batch
//! same-instant decision ticks without perturbing its byte-for-byte
//! reproducible reports.

/// One flow's pending policy evaluation within a decision tick.
#[derive(Debug, Clone, Default)]
pub struct PolicyRequest {
    /// The submitting flow's id.
    pub flow: u32,
    /// Simulated time of the decision tick the request belongs to.
    /// Services use it to place the request inside scheduled fault
    /// windows; it must never influence a fault-free evaluation.
    pub at: crate::Instant,
    /// The observation/state vector the flow submitted.
    pub state: Vec<f64>,
    /// The action vector the service writes back (cleared and refilled
    /// by [`PolicyService::evaluate`]).
    pub action: Vec<f64>,
    /// Label of the injected fault that touched this response, if any
    /// (see [`crate::PolicyFaultKind::label`]).
    pub fault: Option<&'static str>,
    /// Set when the service refused to batch this request (e.g. a
    /// non-finite or wrong-dimension state vector) and served a fallback
    /// instead of poisoning the shared forward pass.
    pub quarantined: bool,
}

impl PolicyRequest {
    /// An empty request shell for buffer pools: `reset` + refill reuses
    /// the inner allocations across ticks.
    pub fn reset(&mut self, flow: u32) {
        self.flow = flow;
        self.at = crate::Instant::ZERO;
        self.state.clear();
        self.action.clear();
        self.fault = None;
        self.quarantined = false;
    }
}

/// A synchronous policy-evaluation service. See the module docs for the
/// determinism contract; the reference implementation is
/// `libra_rl::PolicyServer`.
pub trait PolicyService {
    /// Fill `action` for every request in `batch` (sorted by flow id).
    fn evaluate(&mut self, batch: &mut [PolicyRequest]);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl PolicyService for Doubler {
        fn evaluate(&mut self, batch: &mut [PolicyRequest]) {
            for req in batch {
                req.action.clear();
                req.action.extend(req.state.iter().map(|x| x * 2.0));
            }
        }
    }

    #[test]
    fn request_reset_reuses_buffers() {
        let mut req = PolicyRequest {
            flow: 3,
            at: crate::Instant::from_secs(4),
            state: vec![1.0, 2.0],
            action: vec![9.0],
            fault: Some("nan-action"),
            quarantined: true,
        };
        let cap = req.state.capacity();
        req.reset(7);
        assert_eq!(req.flow, 7);
        assert_eq!(req.at, crate::Instant::ZERO);
        assert!(req.state.is_empty() && req.action.is_empty());
        assert!(req.fault.is_none() && !req.quarantined);
        assert_eq!(req.state.capacity(), cap);
    }

    #[test]
    fn service_fills_every_action() {
        let mut reqs = vec![
            PolicyRequest {
                flow: 0,
                state: vec![1.0],
                ..PolicyRequest::default()
            },
            PolicyRequest {
                flow: 1,
                state: vec![-2.0],
                ..PolicyRequest::default()
            },
        ];
        Doubler.evaluate(&mut reqs);
        assert_eq!(reqs[0].action, vec![2.0]);
        assert_eq!(reqs[1].action, vec![-4.0]);
    }
}
