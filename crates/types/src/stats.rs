//! Monitor-interval statistics and small statistics utilities.
//!
//! Rate-based and learning-based CCAs (and Libra's evaluation stage) consume
//! the network's feedback in *monitor intervals* (MIs): fixed spans over
//! which throughput, delay, delay gradient and loss are aggregated. The
//! [`MiTracker`] accumulates per-event data and closes into a [`MiStats`]
//! snapshot at each MI boundary.

use crate::events::{AckEvent, LossEvent, SendEvent};
use crate::time::{Duration, Instant};
use crate::units::Rate;

/// Aggregated statistics for one monitor interval.
#[derive(Debug, Clone, Copy)]
pub struct MiStats {
    /// MI start time.
    pub start: Instant,
    /// MI end time.
    pub end: Instant,
    /// Bytes handed to the network during the MI.
    pub sent_bytes: u64,
    /// Bytes acknowledged during the MI.
    pub acked_bytes: u64,
    /// Bytes declared lost during the MI.
    pub lost_bytes: u64,
    /// Number of ACKs received.
    pub acks: u32,
    /// Average sending rate over the MI.
    pub sending_rate: Rate,
    /// Average delivery (goodput) rate over the MI.
    pub delivery_rate: Rate,
    /// Mean of the RTT samples in the MI (zero if no ACKs).
    pub avg_rtt: Duration,
    /// Smallest RTT sample in the MI (zero if no ACKs).
    pub mi_min_rtt: Duration,
    /// Largest RTT sample in the MI (zero if no ACKs).
    pub mi_max_rtt: Duration,
    /// Connection-lifetime minimum RTT at MI close.
    pub min_rtt: Duration,
    /// Least-squares slope of RTT vs. time over the MI, in seconds of RTT
    /// per second of wall clock (dimensionless). This is the `d(RTT)/dt`
    /// term of the paper's utility function (Eq. 1).
    pub rtt_gradient: f64,
    /// Fraction of bytes lost: `lost / (lost + acked)`; zero if no traffic.
    pub loss_rate: f64,
}

impl MiStats {
    /// An all-zero snapshot for `start == end == t` (used when a controller
    /// must act before any feedback exists).
    pub fn empty(t: Instant) -> Self {
        MiStats {
            start: t,
            end: t,
            sent_bytes: 0,
            acked_bytes: 0,
            lost_bytes: 0,
            acks: 0,
            sending_rate: Rate::ZERO,
            delivery_rate: Rate::ZERO,
            avg_rtt: Duration::ZERO,
            mi_min_rtt: Duration::ZERO,
            mi_max_rtt: Duration::ZERO,
            min_rtt: Duration::ZERO,
            rtt_gradient: 0.0,
            loss_rate: 0.0,
        }
    }

    /// The MI length.
    pub fn duration(&self) -> Duration {
        self.end.saturating_since(self.start)
    }

    /// True when no ACK arrived during the MI — the "no ACK received"
    /// special case Libra handles explicitly (Sec. 3 of the paper).
    pub fn is_ack_starved(&self) -> bool {
        self.acks == 0
    }
}

/// Accumulates transport events between MI boundaries.
#[derive(Debug, Clone)]
pub struct MiTracker {
    start: Instant,
    sent_bytes: u64,
    acked_bytes: u64,
    lost_bytes: u64,
    acks: u32,
    rtt_sum_ns: u128,
    mi_min_rtt: Duration,
    mi_max_rtt: Duration,
    // (t - start) in seconds, rtt in seconds — for the gradient regression.
    rtt_samples: Vec<(f64, f64)>,
}

impl MiTracker {
    /// Start tracking a new MI at `start`.
    pub fn new(start: Instant) -> Self {
        MiTracker {
            start,
            sent_bytes: 0,
            acked_bytes: 0,
            lost_bytes: 0,
            acks: 0,
            rtt_sum_ns: 0,
            mi_min_rtt: Duration::MAX,
            mi_max_rtt: Duration::ZERO,
            rtt_samples: Vec::with_capacity(64),
        }
    }

    /// Record a transmission.
    pub fn on_send(&mut self, ev: &SendEvent) {
        self.sent_bytes += ev.bytes;
    }

    /// Record an acknowledgement.
    pub fn on_ack(&mut self, ev: &AckEvent) {
        self.acked_bytes += ev.bytes;
        self.acks += 1;
        self.rtt_sum_ns += ev.rtt.nanos() as u128;
        self.mi_min_rtt = self.mi_min_rtt.min(ev.rtt);
        self.mi_max_rtt = self.mi_max_rtt.max(ev.rtt);
        let t = ev.now.saturating_since(self.start).as_secs_f64();
        self.rtt_samples.push((t, ev.rtt.as_secs_f64()));
    }

    /// Record a loss.
    pub fn on_loss(&mut self, ev: &LossEvent) {
        self.lost_bytes += ev.bytes;
    }

    /// Close the MI at `end` and reset the tracker for the next interval.
    /// `min_rtt` is the connection-lifetime minimum RTT.
    ///
    /// The reset happens in place: the RTT-sample buffer keeps its
    /// allocation so closing an MI (which happens once per RTT per flow)
    /// never touches the allocator.
    pub fn close(&mut self, end: Instant, min_rtt: Duration) -> MiStats {
        let dur = end.saturating_since(self.start);
        let avg_rtt = if self.acks > 0 {
            Duration::from_nanos((self.rtt_sum_ns / self.acks as u128) as u64)
        } else {
            Duration::ZERO
        };
        let denom = self.acked_bytes + self.lost_bytes;
        let loss_rate = if denom > 0 {
            self.lost_bytes as f64 / denom as f64
        } else {
            0.0
        };
        let stats = MiStats {
            start: self.start,
            end,
            sent_bytes: self.sent_bytes,
            acked_bytes: self.acked_bytes,
            lost_bytes: self.lost_bytes,
            acks: self.acks,
            sending_rate: Rate::from_bytes_over(self.sent_bytes, dur),
            delivery_rate: Rate::from_bytes_over(self.acked_bytes, dur),
            avg_rtt,
            mi_min_rtt: if self.acks > 0 {
                self.mi_min_rtt
            } else {
                Duration::ZERO
            },
            mi_max_rtt: self.mi_max_rtt,
            min_rtt,
            rtt_gradient: slope(&self.rtt_samples),
            loss_rate,
        };
        self.start = end;
        self.sent_bytes = 0;
        self.acked_bytes = 0;
        self.lost_bytes = 0;
        self.acks = 0;
        self.rtt_sum_ns = 0;
        self.mi_min_rtt = Duration::MAX;
        self.mi_max_rtt = Duration::ZERO;
        self.rtt_samples.clear();
        stats
    }

    /// The MI's start time.
    pub fn start(&self) -> Instant {
        self.start
    }
}

/// Ordinary least-squares slope of `(x, y)` samples; zero with < 2 samples
/// or a degenerate x-spread.
fn slope(samples: &[(f64, f64)]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-18 {
        return 0.0;
    }
    (nf * sxy - sx * sy) / denom
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is the weight of the newest sample (0 < alpha ≤ 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha out of range");
        Ewma { alpha, value: None }
    }

    /// Fold in a sample; the first sample initializes the average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` before the first sample.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first sample.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in a sample.
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero with no samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (zero with < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// `max − min` (zero with no samples) — the paper's "Range" statistic
    /// in Tab. 6.
    pub fn range(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Smallest sample (zero with no samples).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (zero with no samples).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers track the quantile in O(1) memory and O(1)
/// per-sample time, with parabolic interpolation between marker heights.
///
/// Used for per-flow p95 RTT so experiment runs never have to buffer the
/// full RTT sample stream.
#[derive(Debug, Clone, Copy)]
pub struct P2Quantile {
    /// Target quantile in (0, 1), e.g. 0.95.
    q: f64,
    /// Samples seen so far.
    n: u64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-sample increments of the desired positions.
    increments: [f64; 5],
}

impl P2Quantile {
    /// An estimator for quantile `q` (clamped to (0, 1)).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-6, 1.0 - 1e-6);
        P2Quantile {
            q,
            n: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// A p95 estimator — the paper's tail-latency statistic.
    pub fn p95() -> Self {
        P2Quantile::new(0.95)
    }

    /// Samples seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Fold in one sample.
    pub fn update(&mut self, x: f64) {
        if self.n < 5 {
            // Bootstrap: collect the first five samples sorted.
            let i = self.n as usize;
            self.heights[i] = x;
            self.n += 1;
            if self.n == 5 {
                self.heights
                    .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            }
            return;
        }
        self.n += 1;
        // Find the cell containing x and update the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        // Marker positions are strictly increasing (adjust() only moves a
        // marker when it is more than one step from its neighbour), so
        // every denominator below is non-zero.
        debug_assert!(p[i - 1] < p[i] && p[i] < p[i + 1], "P2 markers collided");
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction is non-monotone.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        // Same invariant as parabolic(): neighbouring markers never share
        // a position when a move is attempted.
        debug_assert!(
            self.positions[j] != self.positions[i],
            "P2 markers collided"
        );
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (exact for fewer than five samples;
    /// zero with no samples).
    pub fn get(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.n < 5 {
            // Exact small-sample quantile by nearest rank.
            let mut v: Vec<f64> = self.heights[..self.n as usize].to_vec();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let rank = ((self.q * self.n as f64).ceil() as usize).clamp(1, v.len());
            return v[rank - 1];
        }
        self.heights[2]
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, in `(0, 1]`; 1 is perfectly
/// fair. Returns 1.0 for empty or all-zero input (nothing to be unfair
/// about).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq <= 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::LossKind;

    fn mk_ack(now_ms: u64, rtt_ms: u64, bytes: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 0,
            bytes,
            rtt: Duration::from_millis(rtt_ms),
            min_rtt: Duration::from_millis(rtt_ms),
            srtt: Duration::from_millis(rtt_ms),
            sent_at: Instant::from_millis(now_ms.saturating_sub(rtt_ms)),
            delivered_at_send: 0,
            delivered: bytes,
            in_flight: 0,
            app_limited: false,
        }
    }

    #[test]
    fn tracker_aggregates_rates() {
        let mut t = MiTracker::new(Instant::ZERO);
        t.on_send(&SendEvent {
            now: Instant::from_millis(10),
            seq: 0,
            bytes: 125_000,
            in_flight: 125_000,
        });
        t.on_ack(&mk_ack(50, 40, 62_500));
        let s = t.close(Instant::from_millis(100), Duration::from_millis(40));
        // 125 kB sent over 100 ms = 10 Mbps; 62.5 kB acked = 5 Mbps.
        assert!((s.sending_rate.mbps() - 10.0).abs() < 1e-9);
        assert!((s.delivery_rate.mbps() - 5.0).abs() < 1e-9);
        assert_eq!(s.acks, 1);
        assert_eq!(s.avg_rtt, Duration::from_millis(40));
        assert!(!s.is_ack_starved());
    }

    #[test]
    fn tracker_loss_rate() {
        let mut t = MiTracker::new(Instant::ZERO);
        t.on_ack(&mk_ack(10, 5, 3000));
        t.on_loss(&LossEvent {
            now: Instant::from_millis(12),
            seq: 9,
            bytes: 1000,
            in_flight: 0,
            kind: LossKind::FastRetransmit,
        });
        let s = t.close(Instant::from_millis(20), Duration::from_millis(5));
        assert!((s.loss_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tracker_resets_after_close() {
        let mut t = MiTracker::new(Instant::ZERO);
        t.on_ack(&mk_ack(10, 5, 1000));
        let _ = t.close(Instant::from_millis(20), Duration::from_millis(5));
        let s2 = t.close(Instant::from_millis(40), Duration::from_millis(5));
        assert_eq!(s2.acks, 0);
        assert!(s2.is_ack_starved());
        assert_eq!(s2.start, Instant::from_millis(20));
    }

    #[test]
    fn rtt_gradient_positive_when_queue_builds() {
        let mut t = MiTracker::new(Instant::ZERO);
        // RTT climbing 10ms per 10ms of time => slope 1.0
        for i in 0..10u64 {
            t.on_ack(&mk_ack(10 * (i + 1), 10 * (i + 1), 1000));
        }
        let s = t.close(Instant::from_millis(120), Duration::from_millis(10));
        assert!((s.rtt_gradient - 1.0).abs() < 1e-9, "{}", s.rtt_gradient);
    }

    #[test]
    fn rtt_gradient_zero_with_flat_rtt() {
        let mut t = MiTracker::new(Instant::ZERO);
        for i in 0..10u64 {
            t.on_ack(&mk_ack(10 * (i + 1), 30, 1000));
        }
        let s = t.close(Instant::from_millis(120), Duration::from_millis(30));
        assert!(s.rtt_gradient.abs() < 1e-9);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.update(10.0);
        assert_eq!(e.get(), Some(10.0));
        e.update(0.0);
        assert_eq!(e.get(), Some(5.0));
    }

    #[test]
    fn welford_matches_closed_form() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.update(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert!((w.range() - 7.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One flow hogging everything among n flows → 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn p2_small_sample_exact() {
        let mut p = P2Quantile::p95();
        assert_eq!(p.get(), 0.0);
        p.update(10.0);
        assert_eq!(p.get(), 10.0);
        p.update(20.0);
        p.update(5.0);
        // Nearest-rank p95 of {5, 10, 20} is the 3rd value.
        assert_eq!(p.get(), 20.0);
    }

    #[test]
    fn p2_tracks_uniform_p95() {
        // Deterministic LCG samples over [0, 1000).
        let mut state = 12345u64;
        let mut p = P2Quantile::p95();
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0;
            p.update(x);
        }
        let est = p.get();
        assert!((est - 950.0).abs() < 15.0, "p95 estimate {est}");
    }

    #[test]
    fn p2_tracks_median_of_ramp() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_001 {
            p.update(i as f64);
        }
        assert!((p.get() - 5000.0).abs() < 100.0, "median {}", p.get());
    }

    #[test]
    fn p2_monotone_bounds() {
        let mut p = P2Quantile::p95();
        for i in 0..1000 {
            p.update((i % 97) as f64);
        }
        let est = p.get();
        assert!((0.0..=96.0).contains(&est), "estimate {est} out of range");
    }

    #[test]
    fn empty_mi_stats() {
        let s = MiStats::empty(Instant::from_secs(1));
        assert!(s.is_ack_starved());
        assert_eq!(s.duration(), Duration::ZERO);
    }
}
