//! The congestion-control algorithm interface.
//!
//! Every algorithm in the workspace — classic (CUBIC, BBR, …), learned
//! (Aurora, Vivace, …) and Libra itself — implements [`CongestionControl`].
//! The simulator's sender owns one boxed controller per flow and:
//!
//! 1. calls [`on_send`](CongestionControl::on_send) /
//!    [`on_ack`](CongestionControl::on_ack) /
//!    [`on_loss`](CongestionControl::on_loss) as packets move,
//! 2. closes a monitor interval every
//!    [`mi_duration`](CongestionControl::mi_duration) and calls
//!    [`on_mi`](CongestionControl::on_mi) with the aggregated stats,
//! 3. paces packets at [`pacing_rate`](CongestionControl::pacing_rate)
//!    (falling back to `cwnd / sRTT` for window-based schemes) while never
//!    exceeding [`cwnd_bytes`](CongestionControl::cwnd_bytes) in flight.
//!
//! Libra additionally treats its inner classic CCA as a subroutine: it
//! re-bases it with [`set_rate`](CongestionControl::set_rate) at the start
//! of each control cycle and reads back a candidate rate with
//! [`rate_estimate`](CongestionControl::rate_estimate), mirroring how the
//! kernel implementation converts `cwnd` to a pacing rate.

use crate::events::{AckEvent, LossEvent, SendEvent};
use crate::stats::MiStats;
use crate::time::Duration;
use crate::units::Rate;

/// A congestion-control algorithm driven by the simulator's sender.
pub trait CongestionControl {
    /// Human-readable algorithm name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// A data packet was handed to the network.
    fn on_send(&mut self, _ev: &SendEvent) {}

    /// An acknowledgement arrived.
    fn on_ack(&mut self, ev: &AckEvent);

    /// A loss was detected.
    fn on_loss(&mut self, ev: &LossEvent);

    /// An ECN congestion-experienced echo arrived with this ACK.
    /// Default: ignore (most CCAs are ECN-oblivious; DCTCP reacts).
    fn on_ecn(&mut self, _ev: &AckEvent) {}

    /// A monitor interval closed. Window-based classics may ignore this;
    /// rate-based and learned schemes make their decisions here.
    fn on_mi(&mut self, _stats: &MiStats) {}

    /// Two-phase MI close, submit half: run the MI bookkeeping and, if
    /// this tick needs a policy evaluation, write the state vector into
    /// `policy_state` and return `true` — the caller then owes exactly
    /// one [`mi_resolve`](CongestionControl::mi_resolve) with the policy
    /// output before the tick is complete. Returning `false` means the
    /// tick is already finished (no inference wanted this MI).
    ///
    /// The default delegates to [`on_mi`](CongestionControl::on_mi), so
    /// classic schemes participate in a batched decision tick unchanged.
    /// Implementations must make `mi_submit` + `mi_resolve` perform the
    /// *identical* operation sequence as a plain `on_mi`, split at the
    /// inference call — that is what keeps the policy server's batched
    /// path bit-identical to the per-flow path.
    fn mi_submit(&mut self, stats: &MiStats, _policy_state: &mut Vec<f64>) -> bool {
        self.on_mi(stats);
        false
    }

    /// Two-phase MI close, resolve half: apply the policy server's
    /// `action` for the state submitted by the matching
    /// [`mi_submit`](CongestionControl::mi_submit). Default: nothing —
    /// schemes whose `mi_submit` never returns `true` are never resolved.
    fn mi_resolve(&mut self, _stats: &MiStats, _action: &[f64]) {}

    /// Length of this scheme's monitor interval given the current smoothed
    /// RTT. The default — one sRTT — matches most of the literature.
    fn mi_duration(&self, srtt: Duration) -> Duration {
        srtt
    }

    /// Congestion window in bytes. Pure rate-based schemes return a large
    /// cap (the sender still enforces it to bound memory).
    fn cwnd_bytes(&self) -> u64;

    /// Pacing rate, if this scheme is rate-based. `None` means the sender
    /// derives pacing from `cwnd / sRTT`.
    fn pacing_rate(&self) -> Option<Rate> {
        None
    }

    /// The scheme's current sending-rate decision expressed as a rate —
    /// what Libra calls `x_cl` / `x_rl`. Defaults to the pacing rate, or
    /// `cwnd / sRTT` for window-based schemes.
    fn rate_estimate(&self, srtt: Duration) -> Rate {
        match self.pacing_rate() {
            Some(r) => r,
            None => {
                if srtt.is_zero() {
                    Rate::ZERO
                } else {
                    Rate::from_bytes_over(self.cwnd_bytes(), srtt)
                }
            }
        }
    }

    /// Re-base the scheme onto `rate` (Libra sets the winner of a control
    /// cycle as the new base sending rate; window-based schemes convert it
    /// to a cwnd via `rate × sRTT`). Default: ignore — standalone schemes
    /// are never re-based.
    fn set_rate(&mut self, _rate: Rate, _srtt: Duration) {}

    /// True while the scheme is in its startup phase (slow start /
    /// BBR-STARTUP). Libra delays engaging its control cycle until the
    /// underlying classic exits startup, as the kernel implementation does.
    fn in_startup(&self) -> bool {
        false
    }

    /// Downcast hook: controllers that expose post-run telemetry (Libra's
    /// cycle log, Orca's decision count) override this to return `self`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Attach a structured-trace handle. Controllers that narrate their
    /// decisions (Libra's cycle/guardrail events) override this; the
    /// default ignores the tracer, so plain schemes stay trace-free.
    fn attach_tracer(&mut self, _tracer: crate::trace::Tracer) {}
}

/// A sensible in-flight cap for rate-based schemes: rate × 2·sRTT, floored
/// at 10 packets — mirrors Linux's pacing-based cwnd clamp.
pub fn rate_based_cwnd(rate: Rate, srtt: Duration, mss: u64) -> u64 {
    let two_rtt = srtt * 2;
    (rate.bytes_in(two_rtt)).max(10 * mss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Instant;

    /// Minimal window-based controller used to exercise trait defaults.
    struct FixedWindow(u64);
    impl CongestionControl for FixedWindow {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            self.0
        }
    }

    /// Minimal rate-based controller.
    struct FixedRate(Rate);
    impl CongestionControl for FixedRate {
        fn name(&self) -> &'static str {
            "rate"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            u64::MAX
        }
        fn pacing_rate(&self) -> Option<Rate> {
            Some(self.0)
        }
    }

    #[test]
    fn window_rate_estimate_is_cwnd_over_srtt() {
        let c = FixedWindow(600_000);
        let r = c.rate_estimate(Duration::from_millis(100));
        assert!((r.mbps() - 48.0).abs() < 1e-9, "{r}");
        assert_eq!(c.rate_estimate(Duration::ZERO), Rate::ZERO);
    }

    #[test]
    fn rate_based_estimate_is_pacing_rate() {
        let c = FixedRate(Rate::from_mbps(10.0));
        assert!((c.rate_estimate(Duration::from_millis(50)).mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn default_mi_is_one_srtt() {
        let c = FixedWindow(1);
        assert_eq!(
            c.mi_duration(Duration::from_millis(80)),
            Duration::from_millis(80)
        );
    }

    #[test]
    fn rate_based_cwnd_floor() {
        // tiny rate → floor of 10 packets
        assert_eq!(
            rate_based_cwnd(Rate::from_kbps(1.0), Duration::from_millis(10), 1500),
            15_000
        );
        // 10 Mbps × 200 ms = 250 kB
        assert_eq!(
            rate_based_cwnd(Rate::from_mbps(10.0), Duration::from_millis(100), 1500),
            250_000
        );
        let _ = Instant::ZERO; // silence unused import in some cfg combos
    }
}
