//! Integer-nanosecond simulated time.
//!
//! All simulator timestamps are nanoseconds since the start of the run,
//! stored in a `u64`. Integer time guarantees deterministic event ordering
//! (no floating-point rounding in comparisons) and gives a range of roughly
//! 584 simulated years, far beyond any experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (nanoseconds since the start of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// The beginning of the simulation.
    pub const ZERO: Instant = Instant(0);
    /// A timestamp later than any event the simulator will ever schedule.
    pub const FAR_FUTURE: Instant = Instant(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Instant(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Instant(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Instant(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self - earlier`, saturating at zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: Instant) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span; used as "infinite" timeout sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return Duration::ZERO;
        }
        Duration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float (used for RTT-relative intervals, e.g.
    /// "0.5 estimated RTTs"). Negative or NaN factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> Duration {
        if factor <= 0.0 || !factor.is_finite() {
            return Duration::ZERO;
        }
        Duration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Element-wise maximum.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; saturates in
    /// release. Use [`Instant::checked_since`] when ordering is uncertain.
    fn sub(self, rhs: Instant) -> Duration {
        debug_assert!(self.0 >= rhs.0, "instant subtraction went negative");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self.0 >= rhs.0, "duration subtraction went negative");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    /// The dimensionless ratio of two spans.
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Instant::from_millis(1), Instant::from_micros(1000));
        assert_eq!(Instant::from_secs(2), Instant::from_millis(2000));
        assert_eq!(Duration::from_millis(1).nanos(), 1_000_000);
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant::from_millis(100);
        let d = Duration::from_millis(30);
        assert_eq!(t + d, Instant::from_millis(130));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, Instant::from_millis(70));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Instant::from_millis(10);
        let b = Instant::from_millis(20);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_millis(10));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_ratio_and_scale() {
        let d = Duration::from_millis(100);
        assert!((d / Duration::from_millis(50) - 2.0).abs() < 1e-12);
        assert_eq!(d.mul_f64(0.5), Duration::from_millis(50));
        assert_eq!(d.mul_f64(-1.0), Duration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), Duration::ZERO);
    }

    #[test]
    fn from_secs_f64_round_trips() {
        let d = Duration::from_secs_f64(0.123456789);
        assert!((d.as_secs_f64() - 0.123456789).abs() < 1e-9);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Duration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Duration::from_nanos(42)), "42ns");
    }

    #[test]
    fn min_max_helpers() {
        let a = Duration::from_millis(1);
        let b = Duration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
