// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Core vocabulary types shared by every crate in the Libra workspace.
//!
//! This crate deliberately has no knowledge of the simulator or of any
//! concrete congestion-control algorithm. It defines:
//!
//! * integer-nanosecond [`time`] arithmetic (deterministic event ordering —
//!   no floating-point drift),
//! * transport [`units`]: sending rates and byte counts,
//! * the [`cca::CongestionControl`] trait every algorithm implements,
//! * per-ACK / per-loss / per-send [`events`] delivered to algorithms,
//! * monitor-interval [`stats`] aggregation and general statistics helpers,
//! * the Libra/Vivace-style [`utility`] function of Eq. 1 of the paper and
//!   the application-preference profiles built on it,
//! * a seeded, forkable deterministic [`rng`],
//! * the [`job`] failure taxonomy used by supervised sweep execution,
//! * the [`policy`] service boundary and seed-deterministic
//!   [`policyfault`] schedules injected at it,
//! * structured decision [`trace`] events, sinks and the [`trace::Tracer`]
//!   handle threaded through controllers and the simulator.

pub mod cca;
pub mod events;
pub mod job;
pub mod policy;
pub mod policyfault;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;
pub mod utility;

pub use cca::CongestionControl;
pub use events::{AckEvent, LossEvent, LossKind, SendEvent};
pub use job::{JobError, JobFailure};
pub use policy::{PolicyRequest, PolicyService};
pub use policyfault::{PolicyFaultEvent, PolicyFaultKind, PolicyFaultPlan, PolicyFaultReport};
pub use rng::DetRng;
pub use stats::{jain_index, Ewma, MiStats, MiTracker, P2Quantile, Welford};
pub use time::{Duration, Instant};
pub use trace::{
    CandidateKind, CandidateSample, GuardrailStep, NoopSink, RingRecorder, TraceEvent, TraceSink,
    TraceStage, Tracer, LINK_FLOW,
};
pub use units::{Bytes, Rate};
pub use utility::{Preference, UtilityParams};
