//! Libra's utility function (Eq. 1 of the paper) and application
//! preference profiles.
//!
//! ```text
//! u(x) = α·x^t − β·x·max(0, dRTT/dt) − γ·x·L
//! ```
//!
//! with rate `x` in Mbps, `0 < t < 1`, and default parameters
//! `t = 0.9, α = 1, β = 900, γ = 11.35` (Sec. 5, inherited from PCC
//! Vivace). The exponent `t < 1` makes the throughput term strictly
//! concave, which is what gives Theorem 4.1 its unique fair Nash
//! equilibrium; the delay-gradient and loss terms are linear in `x` so a
//! sender is penalized in proportion to the traffic it contributes while
//! the network degrades.

use crate::stats::MiStats;
use serde::{Deserialize, Serialize};

/// Parameters of the utility function of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityParams {
    /// Throughput exponent, `0 < t < 1`.
    pub t: f64,
    /// Throughput weight α.
    pub alpha: f64,
    /// Delay-gradient weight β.
    pub beta: f64,
    /// Loss weight γ.
    pub gamma: f64,
}

impl Default for UtilityParams {
    fn default() -> Self {
        UtilityParams {
            t: 0.9,
            alpha: 1.0,
            beta: 900.0,
            gamma: 11.35,
        }
    }
}

impl UtilityParams {
    /// Evaluate `u(x)` for a rate in Mbps, an RTT gradient (dimensionless,
    /// seconds of RTT per second) and a loss fraction in `[0, 1]`.
    ///
    /// Inputs are sanitized to their neutral values — negative or
    /// non-finite rates count as zero, negative or non-finite gradients
    /// as flat, non-finite loss as lossless — so the result is always a
    /// finite number. Degenerate monitor intervals (zero duration, NaN
    /// telemetry) therefore cannot poison candidate arbitration; note
    /// `f64::clamp` would have propagated a NaN loss rate straight into
    /// the penalty term.
    pub fn evaluate(&self, rate_mbps: f64, rtt_gradient: f64, loss_rate: f64) -> f64 {
        debug_assert!(
            self.t > 0.0 && self.t < 1.0,
            "utility exponent out of (0,1)"
        );
        let x = if rate_mbps.is_finite() {
            rate_mbps.max(0.0)
        } else {
            0.0
        };
        let g = if rtt_gradient.is_finite() {
            rtt_gradient.max(0.0)
        } else {
            0.0
        };
        let l = if loss_rate.is_finite() {
            loss_rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.alpha * x.powf(self.t) - self.beta * x * g - self.gamma * x * l
    }

    /// Evaluate on a closed monitor interval, using the *achieved* sending
    /// rate, the measured RTT gradient and the measured loss rate — exactly
    /// the statistics Libra gathers in its evaluation stage.
    pub fn evaluate_mi(&self, mi: &MiStats) -> f64 {
        self.evaluate(mi.sending_rate.mbps(), mi.rtt_gradient, mi.loss_rate)
    }

    /// The rate (Mbps) that maximizes `u` for a *fixed* gradient and loss —
    /// from `∂u/∂x = 0`: `x* = (α·t / (β·g + γ·L))^(1/(1−t))`. Returns
    /// `None` when the penalty term is zero (utility is unbounded and the
    /// sender should probe upward).
    pub fn optimal_rate_mbps(&self, rtt_gradient: f64, loss_rate: f64) -> Option<f64> {
        let g = if rtt_gradient.is_finite() {
            rtt_gradient.max(0.0)
        } else {
            0.0
        };
        let l = if loss_rate.is_finite() {
            loss_rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let penalty = self.beta * g + self.gamma * l;
        if penalty <= 0.0 {
            return None;
        }
        Some((self.alpha * self.t / penalty).powf(1.0 / (1.0 - self.t)))
    }
}

/// Application preference profiles (Sec. 5.2): scaling α trades toward
/// throughput, scaling β toward latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Preference {
    /// The paper's default weights.
    Default,
    /// Throughput-oriented: 2× default α.
    Throughput1,
    /// Strongly throughput-oriented: 3× default α.
    Throughput2,
    /// Latency-aware: 2× default β.
    Latency1,
    /// Strongly latency-aware: 3× default β.
    Latency2,
}

impl Preference {
    /// All profiles, in the order the paper's Fig. 11 legends list them.
    pub const ALL: [Preference; 5] = [
        Preference::Throughput2,
        Preference::Throughput1,
        Preference::Default,
        Preference::Latency1,
        Preference::Latency2,
    ];

    /// The utility parameters this profile denotes.
    pub fn params(self) -> UtilityParams {
        let d = UtilityParams::default();
        match self {
            Preference::Default => d,
            Preference::Throughput1 => UtilityParams {
                alpha: 2.0 * d.alpha,
                ..d
            },
            Preference::Throughput2 => UtilityParams {
                alpha: 3.0 * d.alpha,
                ..d
            },
            Preference::Latency1 => UtilityParams {
                beta: 2.0 * d.beta,
                ..d
            },
            Preference::Latency2 => UtilityParams {
                beta: 3.0 * d.beta,
                ..d
            },
        }
    }

    /// Label used in experiment tables ("Default", "Th-1", …).
    pub fn label(self) -> &'static str {
        match self {
            Preference::Default => "Default",
            Preference::Throughput1 => "Th-1",
            Preference::Throughput2 => "Th-2",
            Preference::Latency1 => "La-1",
            Preference::Latency2 => "La-2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Instant;

    #[test]
    fn default_matches_paper() {
        let p = UtilityParams::default();
        assert_eq!((p.t, p.alpha, p.beta, p.gamma), (0.9, 1.0, 900.0, 11.35));
    }

    #[test]
    fn clean_link_utility_grows_with_rate() {
        let p = UtilityParams::default();
        assert!(p.evaluate(20.0, 0.0, 0.0) > p.evaluate(10.0, 0.0, 0.0));
    }

    #[test]
    fn gradient_penalty_bites() {
        let p = UtilityParams::default();
        // Building queue: higher rate should score lower.
        assert!(p.evaluate(20.0, 0.01, 0.0) < p.evaluate(10.0, 0.01, 0.0));
        // Negative gradient (queue draining) is not rewarded.
        assert_eq!(p.evaluate(10.0, -5.0, 0.0), p.evaluate(10.0, 0.0, 0.0));
    }

    #[test]
    fn loss_penalty_bites() {
        let p = UtilityParams::default();
        assert!(p.evaluate(10.0, 0.0, 0.2) < p.evaluate(10.0, 0.0, 0.0));
    }

    #[test]
    fn zero_rate_scores_zero() {
        let p = UtilityParams::default();
        assert_eq!(p.evaluate(0.0, 0.0, 0.0), 0.0);
        // Even with maximal penalties a silent sender scores zero, not −∞.
        assert_eq!(p.evaluate(0.0, 10.0, 1.0), 0.0);
    }

    #[test]
    fn negative_gradient_is_not_rewarded() {
        let p = UtilityParams::default();
        // dRTT/dt < 0 (queue draining) must clamp to the flat-RTT score.
        assert_eq!(p.evaluate(10.0, -0.5, 0.0), p.evaluate(10.0, 0.0, 0.0));
    }

    #[test]
    fn total_loss_penalty_is_bounded() {
        let p = UtilityParams::default();
        let u = p.evaluate(10.0, 0.0, 1.0);
        assert!(u.is_finite());
        assert_eq!(u, p.evaluate(10.0, 0.0, 2.0), "loss clamps at 1.0");
        assert!(u < 0.0, "full loss at 10 Mbps must score negative");
    }

    #[test]
    fn non_finite_inputs_cannot_poison_the_utility() {
        let p = UtilityParams::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(p.evaluate(bad, 0.0, 0.0).is_finite(), "rate {bad}");
            assert!(p.evaluate(10.0, bad, 0.0).is_finite(), "gradient {bad}");
            assert!(p.evaluate(10.0, 0.0, bad).is_finite(), "loss {bad}");
            let opt = p.optimal_rate_mbps(bad, bad);
            assert!(opt.is_none() || opt.is_some_and(f64::is_finite));
        }
        // Negative rates count as silence, not as a sign-flipped bonus.
        assert_eq!(p.evaluate(-5.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn concavity_in_rate() {
        // u((a+b)/2) ≥ (u(a)+u(b))/2 on a clean link (strict concavity of x^t).
        let p = UtilityParams::default();
        let (a, b) = (4.0, 36.0);
        let mid = p.evaluate((a + b) / 2.0, 0.0, 0.0);
        let chord = (p.evaluate(a, 0.0, 0.0) + p.evaluate(b, 0.0, 0.0)) / 2.0;
        assert!(mid > chord);
    }

    #[test]
    fn optimal_rate_is_stationary_point() {
        let p = UtilityParams::default();
        let g = 0.004;
        let x = p.optimal_rate_mbps(g, 0.0).unwrap();
        let eps = 1e-4;
        let u0 = p.evaluate(x, g, 0.0);
        assert!(u0 >= p.evaluate(x - eps, g, 0.0));
        assert!(u0 >= p.evaluate(x + eps, g, 0.0));
        assert_eq!(p.optimal_rate_mbps(0.0, 0.0), None);
    }

    #[test]
    fn preference_profiles_scale_correctly() {
        let d = UtilityParams::default();
        assert_eq!(Preference::Throughput2.params().alpha, 3.0 * d.alpha);
        assert_eq!(Preference::Latency1.params().beta, 2.0 * d.beta);
        assert_eq!(Preference::Default.params(), d);
        assert_eq!(Preference::Latency2.label(), "La-2");
    }

    #[test]
    fn throughput_profile_prefers_faster_lossier_rate() {
        // The paper's Remark 4 example: (45 Mbps, no loss, flat RTT) vs
        // (50 Mbps, 5 % loss, rising RTT). A throughput-oriented profile
        // should flip the decision relative to a latency profile.
        let slow = (45.0, 0.0005, 0.0);
        let fast = (50.0, 0.002, 0.05);
        let th = Preference::Throughput2.params();
        let la = Preference::Latency2.params();
        let th_pref = th.evaluate(fast.0, fast.1, fast.2) - th.evaluate(slow.0, slow.1, slow.2);
        let la_pref = la.evaluate(fast.0, fast.1, fast.2) - la.evaluate(slow.0, slow.1, slow.2);
        assert!(la_pref < th_pref);
        assert!(la_pref < 0.0, "latency profile must prefer the slower rate");
    }

    #[test]
    fn evaluate_mi_uses_sending_rate() {
        let mut mi = MiStats::empty(Instant::ZERO);
        mi.sending_rate = crate::units::Rate::from_mbps(10.0);
        mi.rtt_gradient = 0.0;
        mi.loss_rate = 0.0;
        let p = UtilityParams::default();
        assert!((p.evaluate_mi(&mi) - 10.0f64.powf(0.9)).abs() < 1e-9);
    }
}
