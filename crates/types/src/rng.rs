//! Deterministic, forkable random number generation.
//!
//! Every stochastic component of the workspace (loss processes, trace
//! generators, NN initialization, PPO exploration noise) draws from a
//! [`DetRng`] derived from a single experiment seed, so any run is exactly
//! reproducible from `(code, seed)`. Forked streams are independent: adding
//! a draw to one component never perturbs another.

/// A seeded deterministic RNG stream (xoshiro256++, self-contained so the
/// workspace carries no external RNG dependency).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into four state words with SplitMix64, the
        // recommended seeding procedure for the xoshiro family.
        let mut z = splitmix64(seed);
        let mut state = [0u64; 4];
        for w in &mut state {
            z = splitmix64(z);
            *w = z;
        }
        // xoshiro256++ has a single forbidden (all-zero) state.
        if state == [0, 0, 0, 0] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { state }
    }

    /// Derive an independent child stream labelled by `label`.
    ///
    /// The label is hashed together with fresh output from the parent, so
    /// different labels (or successive forks) give unrelated streams.
    pub fn fork(&mut self, label: &str) -> DetRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        DetRng::new(h ^ self.next_u64())
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    ///
    /// Uses Lemire's widening-multiply rejection method, so the draw is
    /// unbiased for every range width.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let range = hi - lo;
        let mut m = u128::from(self.next_u64()) * u128::from(range);
        let mut low = m as u64;
        if low < range {
            let threshold = range.wrapping_neg() % range;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(range);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Raw 64-bit output (for seeding sub-systems).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_u64(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer — decorrelates adjacent integer seeds so that
/// experiments seeded 1, 2, 3… do not share low-entropy prefixes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_of_label() {
        let mut root = DetRng::new(42);
        let mut x = root.fork("loss");
        let mut root2 = DetRng::new(42);
        let mut y = root2.fork("trace");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn fork_reproducible() {
        let mut a = DetRng::new(9).fork("x");
        let mut b = DetRng::new(9).fork("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = DetRng::new(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_range_empty_is_lo() {
        let mut r = DetRng::new(1);
        assert_eq!(r.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
