//! Structured failure taxonomy for supervised job execution.
//!
//! A sweep campaign treats each run as a job that may fail without
//! poisoning its siblings: a panicking controller, a simulator that
//! trips a livelock budget, a job that blows its wall-clock deadline,
//! or a worker thread that dies after claiming a job. Every such
//! outcome is recorded as a [`JobFailure`] so partial campaigns are
//! first-class values rather than aborted processes.

use serde::{Deserialize, Serialize};

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobError {
    /// The job panicked; carries the panic payload rendered to text.
    Panic {
        /// Display form of the panic payload.
        message: String,
    },
    /// The job exceeded its wall-clock budget.
    Deadline {
        /// The wall budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The simulator tripped a livelock/event-storm budget.
    SimBudget {
        /// Deterministic description of the tripped budget.
        diagnostic: String,
    },
    /// The worker that claimed the job died before posting a result.
    Lost {
        /// What the supervisor knows about the loss.
        message: String,
    },
}

impl JobError {
    /// Stable machine-readable tag for journals and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panic { .. } => "panic",
            JobError::Deadline { .. } => "deadline",
            JobError::SimBudget { .. } => "sim_budget",
            JobError::Lost { .. } => "lost",
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panic { message } => write!(f, "panic: {message}"),
            JobError::Deadline { limit_ms } => {
                write!(f, "deadline: exceeded wall budget of {limit_ms} ms")
            }
            JobError::SimBudget { diagnostic } => write!(f, "sim budget: {diagnostic}"),
            JobError::Lost { message } => write!(f, "lost: {message}"),
        }
    }
}

/// Terminal record of a failed job: the last error observed plus how
/// many attempts were made before giving up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFailure {
    /// The error from the final attempt.
    pub error: JobError,
    /// Total attempts made (≥ 1).
    pub attempts: u64,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} attempt(s)", self.error, self.attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let cases = [
            (
                JobError::Panic {
                    message: "x".into(),
                },
                "panic",
            ),
            (JobError::Deadline { limit_ms: 5 }, "deadline"),
            (
                JobError::SimBudget {
                    diagnostic: "y".into(),
                },
                "sim_budget",
            ),
            (
                JobError::Lost {
                    message: "z".into(),
                },
                "lost",
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
        }
    }

    #[test]
    fn round_trips_through_serde() {
        let failure = JobFailure {
            error: JobError::SimBudget {
                diagnostic: "event storm: 1000 events inside sim-second 3".into(),
            },
            attempts: 2,
        };
        let v = failure.to_value();
        let back = JobFailure::from_value(&v).expect("round trip");
        assert_eq!(back, failure);
    }
}
