//! Structured decision tracing.
//!
//! Libra's contribution is the *decision* — which candidate rate wins each
//! explore→evaluate→exploit cycle and why. This module gives every layer a
//! common, low-overhead way to record those decisions as typed events:
//!
//! * [`TraceEvent`] — the closed event taxonomy: cycle-stage transitions,
//!   full cycle decisions (candidate set, ordered rates, measured
//!   utilities, winner, early-exit flag), guardrail transitions, RL
//!   invalid-action rejections, fault-plan windows, RTOs,
//!   fast-retransmits and monitor-interval closes.
//! * [`TraceSink`] — where events go. [`RingRecorder`] keeps the last `N`
//!   events in a preallocated ring; [`NoopSink`] discards them.
//! * [`Tracer`] — the cheap, clonable handle handed down to controllers
//!   and senders. A disabled tracer is a `None` inside: the emit path is
//!   one branch and the event is never even constructed
//!   (see [`Tracer::emit_with`]).
//!
//! Determinism: events carry integer-nanosecond timestamps from the
//! simulation clock and are recorded in emit order, so for a fixed seed
//! the stream is byte-for-byte reproducible — including across sweep
//! worker counts, because recorders are per-flow and per-run.

use serde::Serialize;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A control-cycle stage, as seen by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceStage {
    /// Underlying classic still in slow start; cycle not engaged.
    Startup,
    /// Exploration MIs measuring `u_prev`.
    Explore,
    /// Evaluation MIs measuring the ordered candidates.
    Eval,
    /// Exploitation MIs sending at the winner rate.
    Exploit,
    /// Guardrail-degraded operation (pinned to the classic candidate).
    Degraded,
}

impl TraceStage {
    /// Stable lowercase label used in tables and JSONL.
    pub fn label(self) -> &'static str {
        match self {
            TraceStage::Startup => "startup",
            TraceStage::Explore => "explore",
            TraceStage::Eval => "eval",
            TraceStage::Exploit => "exploit",
            TraceStage::Degraded => "degraded",
        }
    }
}

/// A guardrail state-machine transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GuardrailStep {
    /// HEALTHY → DEGRADED (invalid-action or utility-regression streak).
    Trip,
    /// One degraded MI elapsed without re-probing.
    DegradedTick,
    /// Backoff expired; re-probing the learned member.
    Reprobe,
    /// Re-probe validated a weight restore; back to HEALTHY.
    Restore,
}

impl GuardrailStep {
    /// Stable lowercase label used in tables and JSONL.
    pub fn label(self) -> &'static str {
        match self {
            GuardrailStep::Trip => "trip",
            GuardrailStep::DegradedTick => "degraded-tick",
            GuardrailStep::Reprobe => "reprobe",
            GuardrailStep::Restore => "restore",
        }
    }
}

/// Which member a candidate rate came from (mirrors the controller's
/// candidate set without depending on the controller crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CandidateKind {
    /// The incumbent rate `x_prev`.
    Prev,
    /// The classic member's proposal `x_cl`.
    Classic,
    /// The learned member's proposal `x_rl`.
    Learned,
}

impl CandidateKind {
    /// Stable label matching the controller's candidate labels.
    pub fn label(self) -> &'static str {
        match self {
            CandidateKind::Prev => "x_prev",
            CandidateKind::Classic => "x_cl",
            CandidateKind::Learned => "x_rl",
        }
    }
}

/// One candidate in a cycle decision: its origin, the rate that was
/// evaluated, and the utility measured for it (`None` when its evaluation
/// MI was ACK-starved and produced no feedback).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CandidateSample {
    /// Which member proposed this rate.
    pub kind: CandidateKind,
    /// The rate evaluated, in Mbps.
    pub rate_mbps: f64,
    /// Measured utility, if the evaluation MI produced feedback.
    pub utility: Option<f64>,
}

/// One structured trace event. Timestamps are integer nanoseconds of
/// simulated time; rates are Mbps. Every variant carries the flow id it
/// belongs to (`u32::MAX` marks link-level events).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// The controller entered a control-cycle stage.
    StageEnter {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// The stage entered.
        stage: TraceStage,
    },
    /// A control cycle closed with a decision.
    CycleDecision {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// The candidate set in evaluation (lower-rate-first) order.
        candidates: Vec<CandidateSample>,
        /// Utility of the incumbent measured during exploration, if any.
        u_prev: Option<f64>,
        /// The winning candidate.
        winner: CandidateKind,
        /// The winning rate, Mbps.
        rate_mbps: f64,
        /// True when evaluation was cut short by the early-exit rule.
        early_exit: bool,
    },
    /// The guardrail state machine moved.
    Guardrail {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// Which transition fired.
        step: GuardrailStep,
    },
    /// The RL member proposed invalid actions that were rejected.
    RlInvalidActions {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// How many rejections this MI.
        count: u64,
    },
    /// A scheduled fault window (link-level; `flow == u32::MAX`).
    FaultWindow {
        /// Always `u32::MAX` — the fault belongs to the link.
        flow: u32,
        /// Window start, ns.
        at_ns: u64,
        /// Window end, ns.
        until_ns: u64,
        /// Fault-kind label (e.g. `link-flap`, `reorder`).
        fault: String,
    },
    /// A retransmission timeout fired.
    Rto {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// Packets declared lost by the timeout.
        packets: u64,
    },
    /// Dup-ACK/reorder-window loss detection fired.
    FastRetransmit {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// Packets declared lost.
        packets: u64,
    },
    /// A batched policy-server evaluation ran for a decision tick
    /// (link-level; `flow == u32::MAX`). Carries only deterministic
    /// fields — the batch's wall-clock latency is accounted to the
    /// member flows' `compute_ns` instead, keeping the trace stream
    /// byte-for-byte reproducible.
    PolicyBatch {
        /// Always [`LINK_FLOW`] — the batch spans flows.
        flow: u32,
        /// Simulated time of the decision tick, ns.
        at_ns: u64,
        /// Number of flow requests served in one batched forward pass.
        size: u32,
    },
    /// An injected policy-boundary fault touched this flow's response
    /// (see [`crate::PolicyFaultKind`]).
    PolicyFault {
        /// Flow id.
        flow: u32,
        /// Simulated time of the decision tick, ns.
        at_ns: u64,
        /// Fault-kind label (e.g. `response-drop`, `nan-action`).
        fault: String,
    },
    /// The policy server refused to batch this flow's request (invalid
    /// state vector) and served a fallback instead, protecting the rest
    /// of the batch group.
    Quarantine {
        /// Flow id.
        flow: u32,
        /// Simulated time of the decision tick, ns.
        at_ns: u64,
    },
    /// The resolve-side degradation ladder served stale last-good
    /// actions in place of missing/invalid policy responses.
    Fallback {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// How many stale ticks were served since the last report.
        ticks: u64,
    },
    /// A monitor interval closed.
    MiClose {
        /// Flow id.
        flow: u32,
        /// Simulated time, ns.
        at_ns: u64,
        /// Bytes acknowledged in the interval.
        acked_bytes: u64,
        /// Bytes declared lost in the interval.
        lost_bytes: u64,
        /// True when the interval saw no ACKs at all.
        ack_starved: bool,
    },
}

impl TraceEvent {
    /// The event's timestamp in nanoseconds.
    pub fn at_ns(&self) -> u64 {
        match *self {
            TraceEvent::StageEnter { at_ns, .. }
            | TraceEvent::CycleDecision { at_ns, .. }
            | TraceEvent::Guardrail { at_ns, .. }
            | TraceEvent::RlInvalidActions { at_ns, .. }
            | TraceEvent::FaultWindow { at_ns, .. }
            | TraceEvent::Rto { at_ns, .. }
            | TraceEvent::FastRetransmit { at_ns, .. }
            | TraceEvent::PolicyBatch { at_ns, .. }
            | TraceEvent::PolicyFault { at_ns, .. }
            | TraceEvent::Quarantine { at_ns, .. }
            | TraceEvent::Fallback { at_ns, .. }
            | TraceEvent::MiClose { at_ns, .. } => at_ns,
        }
    }

    /// The flow the event belongs to (`u32::MAX` = link-level).
    pub fn flow(&self) -> u32 {
        match *self {
            TraceEvent::StageEnter { flow, .. }
            | TraceEvent::CycleDecision { flow, .. }
            | TraceEvent::Guardrail { flow, .. }
            | TraceEvent::RlInvalidActions { flow, .. }
            | TraceEvent::FaultWindow { flow, .. }
            | TraceEvent::Rto { flow, .. }
            | TraceEvent::FastRetransmit { flow, .. }
            | TraceEvent::PolicyBatch { flow, .. }
            | TraceEvent::PolicyFault { flow, .. }
            | TraceEvent::Quarantine { flow, .. }
            | TraceEvent::Fallback { flow, .. }
            | TraceEvent::MiClose { flow, .. } => flow,
        }
    }
}

/// Where trace events go. Implementations must be cheap: the caller has
/// already paid the enabled check before constructing the event.
pub trait TraceSink {
    /// Record one event.
    fn emit(&mut self, ev: TraceEvent);
}

/// Discards every event. The default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// A preallocated ring buffer keeping the most recent `capacity` events.
/// When full, the oldest event is evicted and counted in
/// [`dropped`](RingRecorder::dropped) so consumers can tell a complete
/// stream from a truncated one.
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything drained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate the held events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Remove and return every held event, oldest-first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingRecorder {
    fn emit(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Flow id used for link-level events.
pub const LINK_FLOW: u32 = u32::MAX;

/// The handle emitters hold. Cloning is cheap (an `Option<Rc>` and a
/// `u32`); a default/`disabled` tracer costs one branch per emit site and
/// never constructs the event.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
    flow: u32,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("flow", &self.flow)
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer feeding `sink`, tagged with `flow`.
    pub fn new(sink: Rc<RefCell<dyn TraceSink>>, flow: u32) -> Self {
        Tracer {
            sink: Some(sink),
            flow,
        }
    }

    /// A tracer backed by a fresh [`RingRecorder`]; returns the recorder
    /// handle for reading the events back after the run.
    pub fn ring(capacity: usize, flow: u32) -> (Self, Rc<RefCell<RingRecorder>>) {
        let rec = Rc::new(RefCell::new(RingRecorder::new(capacity)));
        (Tracer::new(rec.clone(), flow), rec)
    }

    /// True when events will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The flow id this tracer tags its events with.
    pub fn flow(&self) -> u32 {
        self.flow
    }

    /// Record `ev` if enabled.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().emit(ev);
        }
    }

    /// Record the event built by `make` — called only when enabled, so the
    /// disabled path never allocates.
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().emit(make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64) -> TraceEvent {
        TraceEvent::StageEnter {
            flow: 0,
            at_ns,
            stage: TraceStage::Explore,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = RingRecorder::new(3);
        for t in 0..5 {
            r.emit(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let held: Vec<u64> = r.events().map(|e| e.at_ns()).collect();
        assert_eq!(held, vec![2, 3, 4]);
        assert_eq!(r.drain().len(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn disabled_tracer_never_builds_the_event() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut built = false;
        t.emit_with(|| {
            built = true;
            ev(0)
        });
        assert!(!built);
    }

    #[test]
    fn ring_tracer_records_in_order() {
        let (t, rec) = Tracer::ring(16, 7);
        assert!(t.is_enabled());
        assert_eq!(t.flow(), 7);
        t.emit(ev(1));
        t.emit_with(|| ev(2));
        let held: Vec<u64> = rec.borrow().events().map(|e| e.at_ns()).collect();
        assert_eq!(held, vec![1, 2]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TraceStage::Exploit.label(), "exploit");
        assert_eq!(GuardrailStep::DegradedTick.label(), "degraded-tick");
        assert_eq!(CandidateKind::Learned.label(), "x_rl");
    }

    #[test]
    fn events_serialize_without_panicking() {
        let e = TraceEvent::CycleDecision {
            flow: 0,
            at_ns: 5,
            candidates: vec![CandidateSample {
                kind: CandidateKind::Prev,
                rate_mbps: 10.0,
                utility: None,
            }],
            u_prev: Some(1.5),
            winner: CandidateKind::Prev,
            rate_mbps: 10.0,
            early_exit: false,
        };
        let v = serde::Serialize::to_value(&e);
        // Enum struct variants render as {"CycleDecision": {...}}.
        let s = format!("{v:?}");
        assert!(s.contains("CycleDecision"), "{s}");
    }

    #[test]
    fn policy_fault_events_carry_flow_and_time() {
        let events = [
            TraceEvent::PolicyFault {
                flow: 3,
                at_ns: 10,
                fault: "response-drop".to_string(),
            },
            TraceEvent::Quarantine { flow: 3, at_ns: 11 },
            TraceEvent::Fallback {
                flow: 3,
                at_ns: 12,
                ticks: 4,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.flow(), 3);
            assert_eq!(e.at_ns(), 10 + i as u64);
            let v = serde::Serialize::to_value(e);
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
