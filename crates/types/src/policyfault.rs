//! Deterministic fault injection for the policy-service boundary.
//!
//! A [`PolicyFaultPlan`] schedules fault windows over simulated time at
//! the `PolicyService` boundary, mirroring the netsim link-layer
//! `FaultPlan` design: response drops, responses delayed past the
//! resolve deadline, NaN/inf-corrupted action vectors, wrong-dimension
//! outputs, transient weight corruption, and stuck (stale, repeated)
//! actions. The plan carries its own seed: the serving side forks a
//! dedicated [`crate::DetRng`] stream from it, so injection never
//! perturbs the simulation's RNG fork order and a faults-off run is
//! byte-identical to one with no plan attached.
//!
//! Semantics at the policy server:
//!
//! - **ResponseDrop** clears the action with probability `probability`;
//!   the flow sees no answer this tick and falls onto its degradation
//!   ladder (last-good cached action, then classic-CCA pin).
//! - **ResponseDelay** models an answer arriving after the resolve
//!   deadline: with probability `probability` the (already computed)
//!   action is withheld, which at the resolve boundary is
//!   indistinguishable from a drop but is counted separately.
//! - **NanAction** overwrites the action elements with NaN/∞ with
//!   probability `probability`, exercising the resolve-side finiteness
//!   validation.
//! - **WrongDim** appends a spurious element with probability
//!   `probability`, producing an action of the wrong dimension.
//! - **WeightCorrupt** poisons the shared policy weights for the whole
//!   window (snapshotting first) and rolls them back when the window
//!   ends — the transient-corruption / hot-swap-gone-wrong case.
//! - **StuckAction** replays each flow's first in-window action for the
//!   rest of the window: the server looks alive but is serving stale
//!   decisions.

use crate::{Duration, Instant};

/// One kind of injectable policy-boundary fault.
#[derive(Debug, Clone)]
pub enum PolicyFaultKind {
    /// The response is dropped with probability `probability`.
    ResponseDrop {
        /// Per-response drop probability.
        probability: f64,
    },
    /// The response arrives after the resolve deadline with probability
    /// `probability` (functionally a miss; counted separately).
    ResponseDelay {
        /// Per-response late-arrival probability.
        probability: f64,
    },
    /// Action elements are overwritten with NaN/∞ with probability
    /// `probability`.
    NanAction {
        /// Per-response corruption probability.
        probability: f64,
    },
    /// The action gains a spurious extra element with probability
    /// `probability` (wrong output dimension).
    WrongDim {
        /// Per-response corruption probability.
        probability: f64,
    },
    /// Shared policy weights are poisoned for the whole window and
    /// restored from a snapshot when it ends.
    WeightCorrupt,
    /// Each flow's first in-window action is replayed for the rest of
    /// the window (stale, repeated decisions).
    StuckAction,
}

impl PolicyFaultKind {
    /// Stable lowercase label used in trace events and tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyFaultKind::ResponseDrop { .. } => "response-drop",
            PolicyFaultKind::ResponseDelay { .. } => "response-delay",
            PolicyFaultKind::NanAction { .. } => "nan-action",
            PolicyFaultKind::WrongDim { .. } => "wrong-dim",
            PolicyFaultKind::WeightCorrupt => "weight-corrupt",
            PolicyFaultKind::StuckAction => "stuck-action",
        }
    }
}

/// A policy fault active on `[from, to)`.
#[derive(Debug, Clone)]
pub struct PolicyFaultEvent {
    /// Window start (inclusive).
    pub from: Instant,
    /// Window end (exclusive).
    pub to: Instant,
    /// What happens inside the window.
    pub kind: PolicyFaultKind,
}

impl PolicyFaultEvent {
    /// Is the event active at `t`?
    pub fn active_at(&self, t: Instant) -> bool {
        self.from <= t && t < self.to
    }
}

/// A seed-deterministic schedule of policy-boundary fault windows.
#[derive(Debug, Clone, Default)]
pub struct PolicyFaultPlan {
    /// Seed for the dedicated injection RNG stream. Owned by the plan
    /// (not forked from the simulation) so attaching a plan never
    /// disturbs the sim's RNG fork order.
    pub seed: u64,
    /// The scheduled events, in no particular order.
    pub events: Vec<PolicyFaultEvent>,
}

impl PolicyFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        PolicyFaultPlan::default()
    }

    /// An empty plan with its injection stream seeded.
    pub fn new(seed: u64) -> Self {
        PolicyFaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add one event (builder style).
    pub fn with(mut self, from: Instant, to: Instant, kind: PolicyFaultKind) -> Self {
        self.push(from, to, kind);
        self
    }

    /// Add one event.
    pub fn push(&mut self, from: Instant, to: Instant, kind: PolicyFaultKind) {
        debug_assert!(from <= to, "policy fault window ends before it starts");
        self.events.push(PolicyFaultEvent { from, to, kind });
    }

    /// Append a train of `count` windows of `kind`-shaped faults: active
    /// for `active`, quiet for `quiet`, starting at `start`.
    pub fn window_train(
        mut self,
        start: Instant,
        active: Duration,
        quiet: Duration,
        count: usize,
        kind: PolicyFaultKind,
    ) -> Self {
        let mut t = start;
        for _ in 0..count {
            self = self.with(t, t + active, kind.clone());
            t += active + quiet;
        }
        self
    }
}

/// Per-fault-type injection counters, kept by the policy server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyFaultReport {
    /// Responses dropped outright.
    pub dropped_responses: u64,
    /// Responses delayed past the resolve deadline.
    pub delayed_responses: u64,
    /// Actions corrupted with NaN/∞ elements.
    pub nan_actions: u64,
    /// Actions emitted with the wrong dimension.
    pub wrong_dim_actions: u64,
    /// Actions replaced by a stale in-window replay.
    pub stuck_actions: u64,
    /// Weight-corruption windows that poisoned the shared weights.
    pub weight_corruptions: u64,
    /// Snapshot rollbacks after a corruption window ended.
    pub weight_restores: u64,
}

impl PolicyFaultReport {
    /// Total fault activations across all types.
    pub fn total(&self) -> u64 {
        self.dropped_responses
            + self.delayed_responses
            + self.nan_actions
            + self.wrong_dim_actions
            + self.stuck_actions
            + self.weight_corruptions
            + self.weight_restores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_window_is_half_open() {
        let e = PolicyFaultEvent {
            from: Instant::from_secs(1),
            to: Instant::from_secs(2),
            kind: PolicyFaultKind::StuckAction,
        };
        assert!(!e.active_at(Instant::ZERO));
        assert!(e.active_at(Instant::from_secs(1)));
        assert!(e.active_at(Instant::from_millis(1999)));
        assert!(!e.active_at(Instant::from_secs(2)));
    }

    #[test]
    fn labels_are_stable() {
        let kinds = [
            PolicyFaultKind::ResponseDrop { probability: 0.5 },
            PolicyFaultKind::ResponseDelay { probability: 0.5 },
            PolicyFaultKind::NanAction { probability: 0.5 },
            PolicyFaultKind::WrongDim { probability: 0.5 },
            PolicyFaultKind::WeightCorrupt,
            PolicyFaultKind::StuckAction,
        ];
        let labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            [
                "response-drop",
                "response-delay",
                "nan-action",
                "wrong-dim",
                "weight-corrupt",
                "stuck-action",
            ]
        );
    }

    #[test]
    fn window_train_builds_windows() {
        let plan = PolicyFaultPlan::new(9).window_train(
            Instant::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(2),
            3,
            PolicyFaultKind::StuckAction,
        );
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[1].from, Instant::from_secs(8));
        assert_eq!(plan.events[1].to, Instant::from_secs(9));
        assert_eq!(plan.seed, 9);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(PolicyFaultPlan::none().is_empty());
        assert!(PolicyFaultPlan::new(3).is_empty());
        assert!(!PolicyFaultPlan::new(3)
            .with(
                Instant::ZERO,
                Instant::from_secs(1),
                PolicyFaultKind::WeightCorrupt
            )
            .is_empty());
    }

    #[test]
    fn report_totals_every_counter() {
        let r = PolicyFaultReport {
            dropped_responses: 1,
            delayed_responses: 2,
            nan_actions: 3,
            wrong_dim_actions: 4,
            stuck_actions: 5,
            weight_corruptions: 6,
            weight_restores: 7,
        };
        assert_eq!(r.total(), 28);
    }
}
