//! Transport units: sending rates (bits/second) and byte counts.

use crate::time::Duration;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A data rate in bits per second.
///
/// Rates are stored as `f64` because congestion controllers constantly scale
/// them by fractional gains (CUBIC growth, BBR pacing gains, MIMD actions).
/// Construction clamps NaN and negative values to zero so that a buggy
/// controller can never poison the simulator's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// Zero rate (sender idle).
    pub const ZERO: Rate = Rate(0.0);

    /// Construct from bits per second.
    pub fn from_bps(bps: f64) -> Self {
        if bps.is_finite() && bps > 0.0 {
            Rate(bps)
        } else {
            Rate(0.0)
        }
    }

    /// Construct from kilobits per second.
    pub fn from_kbps(kbps: f64) -> Self {
        Rate::from_bps(kbps * 1e3)
    }

    /// Construct from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Rate::from_bps(mbps * 1e6)
    }

    /// Bits per second.
    pub fn bps(self) -> f64 {
        self.0
    }

    /// Megabits per second (the paper reports rates in Mbps).
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// True when the rate is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The time needed to serialize `bytes` at this rate.
    /// Returns [`Duration::MAX`] for a zero rate.
    pub fn transmit_time(self, bytes: u64) -> Duration {
        if self.is_zero() {
            return Duration::MAX;
        }
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.0)
    }

    /// Bytes deliverable in `dur` at this rate.
    pub fn bytes_in(self, dur: Duration) -> u64 {
        (self.bytes_per_sec() * dur.as_secs_f64()).floor() as u64
    }

    /// Average rate given a byte count over a span. Zero span gives zero.
    pub fn from_bytes_over(bytes: u64, dur: Duration) -> Rate {
        if dur.is_zero() {
            return Rate::ZERO;
        }
        Rate::from_bps(bytes as f64 * 8.0 / dur.as_secs_f64())
    }

    /// Multiplicative scaling that clamps negatives/NaN to zero.
    pub fn scale(self, gain: f64) -> Rate {
        Rate::from_bps(self.0 * gain)
    }

    /// Element-wise minimum.
    pub fn min(self, other: Rate) -> Rate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Element-wise maximum.
    pub fn max(self, other: Rate) -> Rate {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Rate, hi: Rate) -> Rate {
        self.max(lo).min(hi)
    }

    /// `|self - other|` as a rate.
    pub fn abs_diff(self, other: Rate) -> Rate {
        Rate::from_bps((self.0 - other.0).abs())
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate::from_bps(self.0 + rhs.0)
    }
}

impl Sub for Rate {
    type Output = Rate;
    /// Saturating at zero — rates are never negative.
    fn sub(self, rhs: Rate) -> Rate {
        Rate::from_bps(self.0 - rhs.0)
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: f64) -> Rate {
        self.scale(rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, rhs: f64) -> Rate {
        if rhs <= 0.0 || !rhs.is_finite() {
            Rate::ZERO
        } else {
            Rate::from_bps(self.0 / rhs)
        }
    }
}

impl Div for Rate {
    type Output = f64;
    /// Dimensionless ratio; zero denominator gives zero (callers treat this
    /// as "no signal" rather than an error).
    fn div(self, rhs: Rate) -> f64 {
        if rhs.0 == 0.0 {
            0.0
        } else {
            self.0 / rhs.0
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mbps", self.mbps())
    }
}

/// A byte count. Thin wrapper used where mixing up bytes with packets or
/// bits would be an easy mistake (buffer capacities, BDP computations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Construct from kilobytes (1 KB = 1000 bytes, matching the paper's
    /// "150KB buffer" style figures).
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Construct from megabytes.
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// Raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The bandwidth-delay product for `rate` × `rtt`, rounded down to whole
    /// bytes (used to size "1 BDP" buffers).
    pub fn bdp(rate: Rate, rtt: Duration) -> Bytes {
        Bytes((rate.bytes_per_sec() * rtt.as_secs_f64()).floor() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "byte subtraction went negative");
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_construction_clamps() {
        assert_eq!(Rate::from_bps(-5.0), Rate::ZERO);
        assert_eq!(Rate::from_bps(f64::NAN), Rate::ZERO);
        assert!((Rate::from_mbps(12.0).bps() - 12e6).abs() < 1e-6);
        assert!((Rate::from_kbps(500.0).mbps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transmit_time_is_inverse_of_bytes_in() {
        let r = Rate::from_mbps(8.0); // 1 byte/us
        let t = r.transmit_time(1_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(r.bytes_in(Duration::from_secs(1)), 1_000_000);
        assert_eq!(Rate::ZERO.transmit_time(1), Duration::MAX);
    }

    #[test]
    fn rate_from_bytes_over() {
        let r = Rate::from_bytes_over(1_250_000, Duration::from_secs(1));
        assert!((r.mbps() - 10.0).abs() < 1e-9);
        assert_eq!(Rate::from_bytes_over(100, Duration::ZERO), Rate::ZERO);
    }

    #[test]
    fn rate_arith_saturates() {
        let a = Rate::from_mbps(1.0);
        let b = Rate::from_mbps(3.0);
        assert_eq!(a - b, Rate::ZERO);
        assert!(((b - a).mbps() - 2.0).abs() < 1e-12);
        assert_eq!(a * -2.0, Rate::ZERO);
        assert_eq!(a / 0.0, Rate::ZERO);
        assert!((b / a - 3.0).abs() < 1e-12);
        assert_eq!(a / Rate::ZERO, 0.0);
    }

    #[test]
    fn bdp_matches_hand_computation() {
        // 48 Mbps × 100 ms = 600_000 bytes
        let bdp = Bytes::bdp(Rate::from_mbps(48.0), Duration::from_millis(100));
        assert_eq!(bdp.get(), 600_000);
    }

    #[test]
    fn bytes_display() {
        assert_eq!(format!("{}", Bytes::from_kb(150)), "150.0KB");
        assert_eq!(format!("{}", Bytes::new(42)), "42B");
        assert_eq!(format!("{}", Bytes::from_mb(5)), "5.00MB");
    }

    #[test]
    fn clamp_and_abs_diff() {
        let lo = Rate::from_mbps(1.0);
        let hi = Rate::from_mbps(10.0);
        assert_eq!(Rate::from_mbps(20.0).clamp(lo, hi), hi);
        assert_eq!(Rate::from_mbps(0.1).clamp(lo, hi), lo);
        assert!((Rate::from_mbps(4.0).abs_diff(Rate::from_mbps(7.0)).mbps() - 3.0).abs() < 1e-12);
    }
}
