//! Transport events delivered to congestion-control algorithms.
//!
//! The simulator's sender translates packet-level happenings into these
//! records — the same signals a kernel TCP implementation derives from the
//! ACK clock: per-ACK RTT samples, delivery accounting for rate estimation
//! (à la BBR's `delivery_rate`), and loss detections.

use crate::time::{Duration, Instant};

/// An acknowledgement for one data packet.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Arrival time of the ACK at the sender.
    pub now: Instant,
    /// Sequence number of the acknowledged packet.
    pub seq: u64,
    /// Payload bytes newly acknowledged.
    pub bytes: u64,
    /// RTT sample carried by this ACK.
    pub rtt: Duration,
    /// Minimum RTT observed over the life of the connection so far.
    pub min_rtt: Duration,
    /// Smoothed RTT (EWMA, RFC 6298 style) maintained by the sender.
    pub srtt: Duration,
    /// Time the acknowledged packet left the sender.
    pub sent_at: Instant,
    /// Total bytes delivered (cumulatively ACKed) when the acknowledged
    /// packet was *sent* — used for BBR-style delivery-rate samples.
    pub delivered_at_send: u64,
    /// Total bytes delivered including this ACK.
    pub delivered: u64,
    /// Bytes currently in flight after processing this ACK.
    pub in_flight: u64,
    /// True if the acknowledged packet was sent while the sender was
    /// application-limited (not enough data to fill the rate) — such
    /// samples must not lower bandwidth estimates.
    pub app_limited: bool,
}

impl AckEvent {
    /// BBR-style delivery-rate sample: bytes delivered between the send of
    /// this packet and its ACK, over the elapsed interval.
    pub fn delivery_rate_sample(&self) -> crate::units::Rate {
        let interval = self.now.saturating_since(self.sent_at);
        crate::units::Rate::from_bytes_over(
            self.delivered.saturating_sub(self.delivered_at_send),
            interval,
        )
    }
}

/// How a loss was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Triple-duplicate-ACK style detection (a later packet was ACKed while
    /// this one was outstanding past the reordering window).
    FastRetransmit,
    /// Retransmission timeout: nothing came back for an extended period.
    Timeout,
}

/// A detected packet loss.
#[derive(Debug, Clone, Copy)]
pub struct LossEvent {
    /// Detection time.
    pub now: Instant,
    /// Sequence number of the lost packet.
    pub seq: u64,
    /// Payload bytes declared lost.
    pub bytes: u64,
    /// Bytes in flight after removing the lost packet.
    pub in_flight: u64,
    /// Detection mechanism.
    pub kind: LossKind,
}

/// A data-packet transmission.
#[derive(Debug, Clone, Copy)]
pub struct SendEvent {
    /// Departure time.
    pub now: Instant,
    /// Sequence number.
    pub seq: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Bytes in flight including this packet.
    pub in_flight: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Rate;

    fn ack(now_ms: u64, sent_ms: u64, delivered_at_send: u64, delivered: u64) -> AckEvent {
        AckEvent {
            now: Instant::from_millis(now_ms),
            seq: 1,
            bytes: 1500,
            rtt: Duration::from_millis(now_ms - sent_ms),
            min_rtt: Duration::from_millis(10),
            srtt: Duration::from_millis(now_ms - sent_ms),
            sent_at: Instant::from_millis(sent_ms),
            delivered_at_send,
            delivered,
            in_flight: 3000,
            app_limited: false,
        }
    }

    #[test]
    fn delivery_rate_sample_matches_hand_math() {
        // 125_000 bytes over 100 ms = 10 Mbps
        let ev = ack(200, 100, 0, 125_000);
        let r = ev.delivery_rate_sample();
        assert!((r.mbps() - 10.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn delivery_rate_sample_zero_interval_is_zero() {
        let ev = ack(100, 100, 0, 1000);
        assert_eq!(ev.delivery_rate_sample(), Rate::ZERO);
    }
}
