//! The repo's determinism and numeric-safety invariants, as machine
//! checks.
//!
//! Every rule is a [`Rule`] implementation with a stable id, a severity
//! and per-file findings; `all_rules()` is the registry the binary and
//! the fixture self-tests both run. The escape hatch for an audited
//! exception is a `// lint: allow(<name>)` comment on (or directly
//! above) the flagged line — see DESIGN.md's "Static analysis & checked
//! invariants" section for the rule table and each rule's rationale.

use crate::source::{find_fn_token, SourceFile};
use std::fmt;
use std::path::PathBuf;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint gate.
    Deny,
    /// Reported but never fails the gate.
    Warn,
}

/// One rule violation at a specific source line.
#[derive(Debug)]
pub struct Finding {
    /// The violated rule's id.
    pub rule: &'static str,
    /// Gate behaviour.
    pub severity: Severity,
    /// Repo-relative file.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and how to fix (or waive) it.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message,
            self.excerpt
        )
    }
}

/// A single invariant check over one source file.
pub trait Rule {
    /// Stable identifier (used in reports and the DESIGN.md table).
    fn id(&self) -> &'static str;
    /// Gate behaviour of this rule's findings.
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    /// One-line rationale.
    fn description(&self) -> &'static str;
    /// Append findings for `file` to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// The full registry, in id order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HostClock),
        Box::new(UnorderedMap),
        Box::new(UnwrapAudit),
        Box::new(FloatGuard),
        Box::new(ThreadDiscipline),
        Box::new(Entropy),
        Box::new(BoundedRetry),
        Box::new(NoPerPacketAlloc),
    ]
}

/// Shared helper: flag every code line containing any of `patterns`,
/// honouring the test mask and the `allow_name` annotation.
#[allow(clippy::too_many_arguments)]
fn flag_patterns(
    rule: &dyn Rule,
    file: &SourceFile,
    patterns: &[&str],
    include_tests: bool,
    allow_name: &str,
    message: &str,
    out: &mut Vec<Finding>,
) {
    for (idx, code) in file.code.iter().enumerate() {
        if !include_tests && file.is_test[idx] {
            continue;
        }
        if !patterns.iter().any(|p| code.contains(p)) {
            continue;
        }
        if file.allowed(idx, allow_name) {
            continue;
        }
        out.push(Finding {
            rule: rule.id(),
            severity: rule.severity(),
            path: file.path.clone(),
            line: idx + 1,
            message: message.to_string(),
            excerpt: file.lines[idx].trim().to_string(),
        });
    }
}

/// `host-clock`: wall-clock reads (`std::time::Instant`, `SystemTime`)
/// make runs depend on the host instead of `(configuration, seed)`.
/// The single audited access point is `netsim::host_clock`, which
/// carries the `lint: allow(host_clock)` waiver.
pub struct HostClock;

impl Rule for HostClock {
    fn id(&self) -> &'static str {
        "host-clock"
    }
    fn description(&self) -> &'static str {
        "wall-clock reads outside the audited netsim::host_clock module"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        flag_patterns(
            self,
            file,
            &[
                "std::time::Instant",
                "std::time::SystemTime",
                "SystemTime::now",
                "Instant::now(",
            ],
            true, // host clocks are nondeterministic in tests too
            "host_clock",
            "host wall-clock read; route it through netsim::host_clock (the one \
             audited site) or waive with `// lint: allow(host_clock)`",
            out,
        );
    }
}

/// `unordered-map`: `HashMap`/`HashSet` iteration order is unspecified;
/// in the crates that serialize results or merge worker output
/// (`netsim`, `bench`) a stray iteration silently breaks byte-identical
/// reports. Require `BTreeMap`/`BTreeSet` (or an audited waiver).
pub struct UnorderedMap;

impl Rule for UnorderedMap {
    fn id(&self) -> &'static str {
        "unordered-map"
    }
    fn description(&self) -> &'static str {
        "HashMap/HashSet in netsim or bench; use BTreeMap/BTreeSet"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.krate != "netsim" && file.krate != "bench" {
            return;
        }
        flag_patterns(
            self,
            file,
            &["HashMap", "HashSet", "hash_map::", "hash_set::"],
            true, // test assertions over unordered iteration flake too
            "unordered_map",
            "unordered collection in an output-producing crate; use \
             BTreeMap/BTreeSet so iteration order is deterministic, or waive \
             an iteration-free use with `// lint: allow(unordered_map)`",
            out,
        );
    }
}

/// `unwrap-audit`: every crate root must carry
/// `#![cfg_attr(not(test), deny(clippy::unwrap_used))]`, and because
/// that attribute does not reach `src/bin/*` targets (separate
/// compilation units), bare `.unwrap()` and `panic!`-family macros in
/// non-test code are flagged here directly. Audited panic sites use
/// `expect` with an invariant message instead.
pub struct UnwrapAudit;

impl Rule for UnwrapAudit {
    fn id(&self) -> &'static str {
        "unwrap-audit"
    }
    fn description(&self) -> &'static str {
        "unwrap/panic in non-test code, or a crate root missing the deny attribute"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.is_lib_root()
            && !file
                .code
                .iter()
                .any(|l| l.contains("deny(clippy::unwrap_used)"))
        {
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: 1,
                message: "crate root lacks #![cfg_attr(not(test), \
                          deny(clippy::unwrap_used))]"
                    .to_string(),
                excerpt: file.lines.first().cloned().unwrap_or_default(),
            });
        }
        flag_patterns(
            self,
            file,
            &[".unwrap()"],
            false,
            "unwrap",
            "bare unwrap in non-test code; handle the branch or use `expect` \
             with an invariant message",
            out,
        );
        flag_patterns(
            self,
            file,
            &["panic!(", "unreachable!(", "todo!(", "unimplemented!("],
            false,
            "panic",
            "panic-family macro in non-test code; return an error or waive an \
             audited invariant with `// lint: allow(panic)`",
            out,
        );
    }
}

/// `float-guard`: in the files that feed candidate arbitration (the
/// utility function and its consumers), unguarded `powf`/`ln`/division
/// is exactly how the −∞-utility bug of PR 3 entered. Any such
/// operation must sit in a function that also carries finite-guard
/// evidence (a finiteness check, an emptiness/zero check, or clamping).
pub struct FloatGuard;

/// Files in the utility-adjacent blast radius.
const FLOAT_GUARD_SCOPE: &[&str] = &[
    "crates/types/src/utility.rs",
    "crates/types/src/stats.rs",
    "crates/core/src/accounting.rs",
    "crates/core/src/libra.rs",
    "crates/core/src/guardrail.rs",
    "crates/core/src/equilibrium.rs",
];

/// Evidence that the enclosing function thought about degenerate
/// inputs: finiteness checks, zero/emptiness guards, clamps.
const GUARD_EVIDENCE: &[&str] = &[
    "is_finite",
    "is_nan",
    "is_empty",
    "clamp",
    "assert",
    "== 0",
    "!= 0",
    "<= 0",
    "> 0",
    "< 2",
    ".max",
    ".min",
    "saturating",
];

const TRANSCENDENTAL: &[&str] = &[".powf(", ".ln(", ".log2(", ".log10(", ".exp(", ".sqrt("];

impl FloatGuard {
    fn fn_has_guard(&self, file: &SourceFile, line: usize) -> bool {
        let Some((start, end)) = file.enclosing_fn(line) else {
            return false; // consts/statics: demand a line waiver
        };
        file.code[start..=end]
            .iter()
            .any(|l| GUARD_EVIDENCE.iter().any(|g| l.contains(g)))
    }

    /// A `/` division whose divisor is not a numeric literal (literal
    /// divisors cannot be zero by accident).
    fn risky_division(code: &str) -> bool {
        let mut from = 0;
        while let Some(rel) = code[from..].find(" / ") {
            let after = &code[from + rel + 3..];
            let divisor = after.trim_start();
            let literal = divisor
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '.');
            if !literal {
                return true;
            }
            from += rel + 3;
        }
        false
    }
}

impl Rule for FloatGuard {
    fn id(&self) -> &'static str {
        "float-guard"
    }
    fn description(&self) -> &'static str {
        "unguarded float math in utility-adjacent files"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let path = file.path.to_string_lossy();
        if !FLOAT_GUARD_SCOPE.iter().any(|s| path.ends_with(s)) {
            return;
        }
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test[idx] {
                continue;
            }
            let hit = TRANSCENDENTAL.iter().any(|p| code.contains(p)) || Self::risky_division(code);
            if !hit || file.allowed(idx, "unchecked_float") {
                continue;
            }
            if self.fn_has_guard(file, idx) {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: idx + 1,
                message: "float operation with no finite-guard evidence \
                          (is_finite/is_nan/zero-or-empty check/clamp) in the \
                          enclosing function; add a guard or waive with \
                          `// lint: allow(unchecked_float)`"
                    .to_string(),
                excerpt: file.lines[idx].trim().to_string(),
            });
        }
    }
}

/// `thread-discipline`: all parallelism lives in `bench/src/sweep.rs`
/// (the deterministic index-ordered runner). Threads anywhere else are
/// an ordering hazard for merged output.
pub struct ThreadDiscipline;

impl Rule for ThreadDiscipline {
    fn id(&self) -> &'static str {
        "thread-discipline"
    }
    fn description(&self) -> &'static str {
        "thread creation outside bench/src/sweep.rs"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.path.to_string_lossy().ends_with("bench/src/sweep.rs") {
            return;
        }
        flag_patterns(
            self,
            file,
            &[
                "thread::spawn",
                "thread::scope",
                "thread::Builder",
                ".spawn(",
            ],
            false, // tests may exercise thread-safety directly
            "threads",
            "thread creation outside the deterministic sweep runner \
             (bench/src/sweep.rs); route the work through run_sweep/\
             parallel_map or waive with `// lint: allow(threads)`",
            out,
        );
    }
}

/// `entropy`: ambient randomness (`thread_rng`, `RandomState`,
/// `getrandom`) breaks the `(configuration, seed)` purity of every run.
/// All randomness must come from the forkable seeded `DetRng`.
pub struct Entropy;

impl Rule for Entropy {
    fn id(&self) -> &'static str {
        "entropy"
    }
    fn description(&self) -> &'static str {
        "ambient (non-seeded) randomness"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        flag_patterns(
            self,
            file,
            &[
                "thread_rng",
                "from_entropy",
                "RandomState",
                "getrandom",
                "rand::random",
            ],
            true,
            "entropy",
            "ambient randomness; derive a stream from the seeded DetRng \
             (fork a label) so the run stays a pure function of its seed",
            out,
        );
    }
}

/// `bounded-retry`: an unbounded loop (`loop { … }` / `while true`)
/// whose body retries work — backoff sleeps, retry counters — can spin
/// forever the moment the retried condition stops clearing; that is
/// exactly the livelock the sweep watchdogs exist to kill. Retry loops
/// must iterate over an explicit attempt range
/// (`for attempt in 1..=max_attempts`) or carry bound evidence in the
/// loop body (an attempt/limit comparison, a remaining-budget or
/// deadline check). Audited exceptions waive with
/// `// lint: allow(bounded-retry)` on or above the loop header.
pub struct BoundedRetry;

/// Body patterns that mark a loop as a retry/backoff loop.
const RETRY_IDIOMS: &[&str] = &["retry", "retries", "backoff", "try_again", "sleep("];

/// Evidence that the loop bounds its attempts (or its wall time).
const RETRY_BOUND_EVIDENCE: &[&str] = &[
    "max_attempts",
    "max_retries",
    "max_tries",
    "attempt >",
    "attempts >",
    "attempt <",
    "attempts <",
    "attempt ==",
    "attempts ==",
    "remaining",
    "budget",
    "deadline",
];

impl BoundedRetry {
    /// `(header_line, last_line)` of every `loop { … }` / `while true`
    /// body, by brace tracking over the blanked text (`for`/conditional
    /// `while` loops are bounded by their header and not tracked).
    fn loop_spans(code: &[String]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut depth: i32 = 0;
        // (header_line, body_depth) of loops whose body is open.
        let mut open: Vec<(usize, i32)> = Vec::new();
        let mut header: Option<usize> = None;
        for (idx, line) in code.iter().enumerate() {
            if header.is_none() && (line.contains("loop {") || line.contains("while true")) {
                header = Some(idx);
            }
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        if let Some(start) = header.take() {
                            open.push((start, depth));
                        }
                    }
                    '}' => {
                        if let Some(&(start, d)) = open.last() {
                            if d == depth {
                                open.pop();
                                spans.push((start, idx));
                            }
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }
        }
        spans.sort_unstable();
        spans
    }
}

impl Rule for BoundedRetry {
    fn id(&self) -> &'static str {
        "bounded-retry"
    }
    fn description(&self) -> &'static str {
        "unbounded retry/backoff loop without an explicit attempt bound"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (start, end) in Self::loop_spans(&file.code) {
            if file.is_test[start] {
                continue;
            }
            let body = &file.code[start..=end];
            let retries = body
                .iter()
                .any(|l| RETRY_IDIOMS.iter().any(|p| l.contains(p)));
            if !retries {
                continue;
            }
            let bounded = body
                .iter()
                .any(|l| RETRY_BOUND_EVIDENCE.iter().any(|p| l.contains(p)));
            if bounded
                || file.allowed(start, "bounded-retry")
                || file.allowed(start, "bounded_retry")
            {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: start + 1,
                message: "unbounded retry loop; iterate an explicit attempt range \
                          (`for attempt in 1..=max_attempts`), compare a counter \
                          against a limit inside the body, or waive an audited \
                          exception with `// lint: allow(bounded-retry)`"
                    .to_string(),
                excerpt: file.lines[start].trim().to_string(),
            });
        }
    }
}

/// `no-per-packet-alloc`: the simulator's per-packet and per-ACK
/// functions run millions of times per simulated minute; a heap
/// allocation there (a `Box`, a fresh `Vec`, a formatted `String`) is
/// the difference between the slab-pooled engine and the one it
/// replaced. Inside the named hot functions in `netsim`, allocation
/// constructors are denied; buffers must be preallocated scratch space
/// owned by the caller (see `FlowSender::try_emit`) or slab slots from
/// `PacketPool`. Audited cold branches inside a hot function waive with
/// `// lint: allow(no-per-packet-alloc)`.
pub struct NoPerPacketAlloc;

/// The per-packet / per-ACK hot set: every function the event loop
/// enters for each packet emission, queue transit, service completion,
/// or ACK delivery. Names, not paths, so a hot function moving between
/// files stays covered.
const HOT_FNS: &[&str] = &[
    "emit_packet",
    "on_ack_packet",
    "admit_packet",
    "on_service_done",
    "try_emit",
    "enqueue_with_ecn",
    "dequeue",
    "detect_reorder_losses",
    "push",
    "pop",
];

/// Heap-allocation constructors. `Vec::with_capacity` is deliberately
/// absent: it only appears in setup paths, and flagging it would push
/// people toward `Vec::new` + growth, the worse idiom.
const ALLOC_PATTERNS: &[&str] = &[
    "Box::new(",
    "Vec::new(",
    "vec![",
    "VecDeque::new(",
    "String::new(",
    "format!(",
    ".to_string()",
    ".to_vec()",
];

/// The identifier following a standalone `fn ` token on `line`.
fn fn_name(line: &str) -> Option<&str> {
    let pos = find_fn_token(line)?;
    let rest = &line[pos + 3..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

impl Rule for NoPerPacketAlloc {
    fn id(&self) -> &'static str {
        "no-per-packet-alloc"
    }
    fn description(&self) -> &'static str {
        "heap allocation inside a per-packet/per-ACK hot function in netsim"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.krate != "netsim" {
            return;
        }
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test[idx] {
                continue;
            }
            if !ALLOC_PATTERNS.iter().any(|p| code.contains(p)) {
                continue;
            }
            let Some((start, _)) = file.enclosing_fn(idx) else {
                continue;
            };
            let Some(name) = fn_name(&file.code[start]) else {
                continue;
            };
            if !HOT_FNS.contains(&name) {
                continue;
            }
            if file.allowed(idx, "no-per-packet-alloc") || file.allowed(idx, "no_per_packet_alloc")
            {
                continue;
            }
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: idx + 1,
                message: format!(
                    "heap allocation inside hot function `{name}`; use a \
                     caller-owned scratch buffer or a PacketPool slot, or waive \
                     an audited cold branch with `// lint: allow(no-per-packet-alloc)`"
                ),
                excerpt: file.lines[idx].trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn findings(path: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(Path::new(path), text);
        let mut out = Vec::new();
        for rule in all_rules() {
            rule.check(&f, &mut out);
        }
        out
    }

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = all_rules().iter().map(|r| r.id()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert_eq!(n, 8);
    }

    #[test]
    fn per_packet_alloc_scoped_to_hot_fns_in_netsim() {
        // Allocation inside a hot function in netsim: flagged.
        let hot = findings(
            "crates/netsim/src/demo.rs",
            "fn try_emit(&mut self) {\n    let out = Vec::new();\n    drop(out);\n}\n",
        );
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert_eq!(hot[0].rule, "no-per-packet-alloc");
        assert_eq!(hot[0].line, 2);
        // Same body in a cold function: clean.
        let cold = findings(
            "crates/netsim/src/demo.rs",
            "fn finalize(&mut self) {\n    let out = Vec::new();\n    drop(out);\n}\n",
        );
        assert!(cold.is_empty(), "{cold:?}");
        // Same hot function outside netsim: clean.
        let other_crate = findings(
            "crates/classic/src/demo.rs",
            "fn try_emit(&mut self) {\n    let out = Vec::new();\n    drop(out);\n}\n",
        );
        assert!(other_crate.is_empty(), "{other_crate:?}");
        // Waived audited cold branch inside a hot function: clean.
        let waived = findings(
            "crates/netsim/src/demo.rs",
            "fn dequeue(&mut self) {\n    // lint: allow(no-per-packet-alloc)\n    let out = Vec::new();\n    drop(out);\n}\n",
        );
        assert!(waived.is_empty(), "{waived:?}");
    }

    #[test]
    fn fn_name_parses_headers() {
        assert_eq!(
            fn_name("    pub fn try_emit(&mut self) {"),
            Some("try_emit")
        );
        assert_eq!(
            fn_name("fn pop(&mut self) -> Option<TimedEvent> {"),
            Some("pop")
        );
        assert_eq!(fn_name("let not_a_fn = 1;"), None);
    }

    #[test]
    fn annotated_host_clock_passes() {
        let hits = findings(
            "crates/netsim/src/demo.rs",
            "// lint: allow(host_clock)\nlet t = std::time::Instant::now();\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unordered_map_scoped_to_netsim_and_bench() {
        let in_scope = findings(
            "crates/bench/src/demo.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(in_scope.len(), 1);
        assert_eq!(in_scope[0].rule, "unordered-map");
        let out_of_scope = findings(
            "crates/classic/src/demo.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn test_code_unwrap_is_exempt() {
        let hits = findings(
            "crates/bench/src/bin/demo.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); }\n}\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn bounded_retry_needs_idiom_and_missing_bound() {
        // Unbounded loop with a backoff idiom and no bound: flagged.
        let hits = findings(
            "crates/bench/src/demo.rs",
            "fn f() {\n    loop {\n        backoff_sleep();\n    }\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "bounded-retry");
        assert_eq!(hits[0].line, 2);
        // Same loop with a counter-vs-limit comparison: clean.
        let bounded = findings(
            "crates/bench/src/demo.rs",
            "fn f(max_attempts: u32) {\n    let mut a = 0;\n    loop {\n        a += 1;\n        if a >= max_attempts { break; }\n        backoff_sleep();\n    }\n}\n",
        );
        assert!(bounded.is_empty(), "{bounded:?}");
        // No retry idiom in the body: not a retry loop, clean.
        let plain = findings(
            "crates/bench/src/demo.rs",
            "fn f() {\n    loop {\n        if done() { break; }\n        step();\n    }\n}\n",
        );
        assert!(plain.is_empty(), "{plain:?}");
        // Waiver on the header line above: clean.
        let waived = findings(
            "crates/bench/src/demo.rs",
            "fn f() {\n    // lint: allow(bounded-retry)\n    loop {\n        backoff_sleep();\n    }\n}\n",
        );
        assert!(waived.is_empty(), "{waived:?}");
    }

    #[test]
    fn division_by_literal_is_not_risky() {
        assert!(!FloatGuard::risky_division("let x = y / 2.0;"));
        assert!(FloatGuard::risky_division("let x = y / n;"));
        assert!(!FloatGuard::risky_division("let x = y /= 2;"));
    }
}
