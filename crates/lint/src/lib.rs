// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-lint`: project-specific determinism & invariant static
//! analysis for the Libra workspace.
//!
//! Everything this repo produces — cycle decisions, sweep artifacts,
//! the pinned run digest — rests on the simulator being a pure function
//! of `(configuration, seed)` and on float telemetry staying finite.
//! `cargo`/`clippy` cannot express those rules, so this crate encodes
//! them as a two-layer analyzer over the workspace's own sources.
//!
//! **Layer 1 — per-file pattern rules** ([`rules`], over the blanked
//! text of [`source::SourceFile`]):
//!
//! | id | invariant |
//! |---|---|
//! | `host-clock` | no wall-clock reads outside `netsim::host_clock` |
//! | `unordered-map` | no `HashMap`/`HashSet` in `netsim`/`bench` |
//! | `unwrap-audit` | `deny(clippy::unwrap_used)` in every crate root; no bare `unwrap`/`panic!` in non-test code |
//! | `float-guard` | utility-adjacent float math carries finite-guard evidence |
//! | `thread-discipline` | threads only in `bench/src/sweep.rs` |
//! | `entropy` | no ambient randomness (`thread_rng`, `RandomState`, …) |
//! | `bounded-retry` | retry/backoff loops carry an explicit attempt bound |
//! | `no-per-packet-alloc` | no allocation in per-packet/per-decision hot paths |
//!
//! **Layer 2 — workspace graph rules** ([`graph_rules`], over the
//! symbol graph [`graph::Workspace`] built from the token stream
//! ([`tokens`]) and item parser ([`items`])):
//!
//! | id | invariant |
//! |---|---|
//! | `lock-across-call` | no lock guard live across a call reaching training/simulation/IO |
//! | `fma-determinism` | no FMA/`mul_add` in `nn`/`netsim` (batched bit identity) |
//! | `unsafe-audit` | every `unsafe` site carries an adjacent `// SAFETY:` (inventoried in `dev/unsafe_inventory.md`) |
//! | `nondeterminism-taint` | no nondeterministic value reaches digest/serialization sinks |
//!
//! The analyzer is hand-rolled (no external deps — the registry is
//! offline): [`source::SourceFile`] blanks comments/strings, masks test
//! regions and tracks `fn` bodies; [`tokens::tokenize_lines`] lexes the
//! blanked text; [`items::parse_items`] extracts fns, calls, guards and
//! `unsafe` sites; [`graph::SymbolGraph`] links calls by name with
//! deterministic order. Audited exceptions use `// lint: allow(<name>)`
//! on or above the flagged line. The `libra-lint` binary walks every
//! crate's `src/`, `examples/`, `tests/` and `benches/` plus the root
//! facade's, prints findings and exits non-zero on any — `scripts/ci.sh`
//! runs it as a gate.

pub mod graph;
pub mod graph_rules;
pub mod items;
pub mod rules;
pub mod source;
pub mod tokens;

pub use graph::Workspace;
pub use graph_rules::{unsafe_inventory, workspace_rules, WorkspaceRule};
pub use rules::{all_rules, Finding, Rule, Severity};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// The source roots the lint covers, relative to the workspace root:
/// every workspace crate's `src/`, `examples/`, `tests/` and `benches/`
/// plus the root facade's `src/`, `examples/` and `tests/`. `vendor/`
/// is excluded by construction (vendored stand-ins for external crates
/// are not held to the repo's invariants), as is the lint crate's own
/// `tests/fixtures/` corpus (deliberately bad code).
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "examples", "tests", "benches"] {
            collect_rs(&dir.join(sub), &mut files)?;
        }
    }
    for sub in ["src", "examples", "tests"] {
        collect_rs(&root.join(sub), &mut files)?;
    }
    // Report repo-relative paths.
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|p| {
            p.strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| p.clone())
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // The lint fixture corpus is deliberately bad code.
            if path.file_name().is_some_and(|n| n == "fixtures")
                && dir.file_name().is_some_and(|n| n == "tests")
            {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full 12-rule set over a set of loaded sources: per-file
/// rules on each file, then the workspace rules over the symbol graph.
/// Findings come back sorted by `(path, line, rule)` — and, because
/// [`Workspace::from_sources`] sorts files by path, byte-identical for
/// any input order.
pub fn lint_sources(sources: Vec<SourceFile>) -> Vec<Finding> {
    let ws = Workspace::from_sources(sources);
    let mut findings = Vec::new();
    for entry in &ws.files {
        for rule in all_rules() {
            rule.check(&entry.source, &mut findings);
        }
    }
    for rule in workspace_rules() {
        rule.check(&ws, &mut findings);
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Run the full rule set over one file standalone (fixtures): the file
/// becomes a single-file workspace, so graph rules see its local call
/// graph.
pub fn lint_file(file: SourceFile) -> Vec<Finding> {
    lint_sources(vec![file])
}

/// Load every covered source under `root` (for [`lint_tree`] and the
/// inventory emitter).
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut sources = Vec::new();
    for rel in source_files(root)? {
        sources.push(SourceFile::load(root, &rel)?);
    }
    Ok(Workspace::from_sources(sources))
}

/// Run every rule over the whole workspace at `root`.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for rel in source_files(root)? {
        sources.push(SourceFile::load(root, &rel)?);
    }
    Ok(lint_sources(sources))
}

/// Locate the workspace root: walk up from `start` to the first
/// directory holding both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf()
    }

    #[test]
    fn source_roots_cover_all_crates_and_skip_vendor() {
        let files = source_files(&repo_root()).expect("walk");
        let has = |frag: &str| files.iter().any(|p| p.to_string_lossy().contains(frag));
        assert!(has("crates/netsim/src/sim.rs"));
        assert!(has("crates/core/src/libra.rs"));
        assert!(has("crates/bench/src/bin/perf_smoke.rs"));
        assert!(has("src/lib.rs"));
        // Widened coverage: examples, tests, benches.
        assert!(has("crates/nn/examples/kernbench.rs"));
        assert!(has("crates/bench/tests/"));
        assert!(has("crates/bench/benches/"));
        assert!(has("examples/quickstart.rs"));
        assert!(has("tests/properties.rs"));
        assert!(!has("vendor/"), "vendored stand-ins must not be linted");
        assert!(!has("tests/fixtures"), "lint fixtures must not be linted");
    }

    #[test]
    fn find_workspace_root_walks_up() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("root");
        assert_eq!(root, repo_root());
    }
}
