// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! `libra-lint`: project-specific determinism & invariant static
//! analysis for the Libra workspace.
//!
//! Everything this repo produces — cycle decisions, sweep artifacts,
//! the pinned run digest — rests on the simulator being a pure function
//! of `(configuration, seed)` and on float telemetry staying finite.
//! `cargo`/`clippy` cannot express those rules, so this crate encodes
//! them as a deny-list over the workspace's own sources:
//!
//! | id | invariant |
//! |---|---|
//! | `host-clock` | no wall-clock reads outside `netsim::host_clock` |
//! | `unordered-map` | no `HashMap`/`HashSet` in `netsim`/`bench` |
//! | `unwrap-audit` | `deny(clippy::unwrap_used)` in every crate root; no bare `unwrap`/`panic!` in non-test code |
//! | `float-guard` | utility-adjacent float math carries finite-guard evidence |
//! | `thread-discipline` | threads only in `bench/src/sweep.rs` |
//! | `entropy` | no ambient randomness (`thread_rng`, `RandomState`, …) |
//! | `bounded-retry` | retry/backoff loops carry an explicit attempt bound |
//!
//! The scanner is hand-rolled (no external deps — the registry is
//! offline): [`source::SourceFile`] blanks comments/strings, masks
//! `#[cfg(test)]` regions and tracks `fn` bodies; each [`rules::Rule`]
//! pattern-matches the blanked text. Audited exceptions use
//! `// lint: allow(<name>)` on or above the flagged line. The `libra-lint`
//! binary walks `crates/*/src` and `src/`, prints findings and exits
//! non-zero on any — `scripts/ci.sh` runs it as a gate.

pub mod rules;
pub mod source;

pub use rules::{all_rules, Finding, Rule, Severity};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// The source roots the lint covers, relative to the workspace root:
/// every workspace crate's `src/` plus the root facade. `vendor/` is
/// excluded by construction (vendored stand-ins for external crates are
/// not held to the repo's invariants).
pub fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    // Report repo-relative paths.
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|p| {
            p.strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| p.clone())
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run every rule over one file.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in all_rules() {
        rule.check(file, &mut out);
    }
    out
}

/// Run every rule over the whole workspace at `root`; findings come
/// back sorted by `(path, line, rule)` so output is deterministic.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in source_files(root)? {
        let file = SourceFile::load(root, &rel)?;
        findings.extend(lint_file(&file));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Locate the workspace root: walk up from `start` to the first
/// directory holding both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf()
    }

    #[test]
    fn source_roots_cover_all_crates_and_skip_vendor() {
        let files = source_files(&repo_root()).expect("walk");
        let has = |frag: &str| files.iter().any(|p| p.to_string_lossy().contains(frag));
        assert!(has("crates/netsim/src/sim.rs"));
        assert!(has("crates/core/src/libra.rs"));
        assert!(has("crates/bench/src/bin/perf_smoke.rs"));
        assert!(has("src/lib.rs"));
        assert!(!has("vendor/"), "vendored stand-ins must not be linted");
        assert!(!has("tests/fixtures"), "lint fixtures must not be linted");
    }

    #[test]
    fn find_workspace_root_walks_up() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("root");
        assert_eq!(root, repo_root());
    }
}
