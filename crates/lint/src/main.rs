// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! The `libra-lint` gate binary: walk the workspace sources, run the
//! full 12-rule set (8 per-file + 4 graph-powered), print findings,
//! and exit non-zero on any deny-severity hit.
//!
//! ```text
//! cargo run -p libra-lint --release              # lint the enclosing workspace
//! cargo run -p libra-lint --release -- <root>    # lint an explicit tree
//! cargo run -p libra-lint --release -- <file.rs> # lint one file (fixtures)
//! cargo run -p libra-lint --release -- --list-rules
//! cargo run -p libra-lint --release -- --emit-unsafe-inventory
//! ```
//!
//! In single-file mode a `//! lint-fixture: <virtual path>` first line
//! sets the repo-relative path the rules see, so path-scoped rules fire
//! the same way they would inside the tree.
//!
//! `--emit-unsafe-inventory` regenerates `dev/unsafe_inventory.md`
//! under the workspace root from the current `unsafe` sites;
//! `scripts/ci.sh` runs it and fails on `git diff` drift.

use libra_lint::SourceFile;
use libra_lint::{
    all_rules, find_workspace_root, lint_file, lint_tree, load_workspace, unsafe_inventory,
    workspace_rules, Finding, Severity,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut emit_inventory = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:<20} {}", rule.id(), rule.description());
                }
                for rule in workspace_rules() {
                    println!("{:<20} {}", rule.id(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            "--emit-unsafe-inventory" => emit_inventory = true,
            "--help" | "-h" => {
                println!(
                    "usage: libra-lint [--list-rules] [--emit-unsafe-inventory] [workspace-root]"
                );
                return ExitCode::SUCCESS;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("libra-lint: cannot read current dir: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "libra-lint: no workspace root (Cargo.toml + crates/) above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if emit_inventory {
        return match emit_unsafe_inventory(&root) {
            Ok(path) => {
                eprintln!("libra-lint: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("libra-lint: inventory emit failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let findings = if root.is_file() {
        match lint_single(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("libra-lint: cannot read {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        match lint_tree(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("libra-lint: scan of {} failed: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    };
    report(&findings)
}

/// Lint one file standalone; a `//! lint-fixture:` first line supplies
/// the virtual repo path for path- and crate-scoped rules.
fn lint_single(path: &Path) -> std::io::Result<Vec<Finding>> {
    let text = std::fs::read_to_string(path)?;
    let virt = text
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//! lint-fixture: "))
        .map(|s| PathBuf::from(s.trim()))
        .unwrap_or_else(|| path.to_path_buf());
    Ok(lint_file(SourceFile::from_source(&virt, &text)))
}

/// Regenerate `dev/unsafe_inventory.md` under `root`.
fn emit_unsafe_inventory(root: &Path) -> std::io::Result<PathBuf> {
    let ws = load_workspace(root)?;
    let out = root.join("dev").join("unsafe_inventory.md");
    std::fs::create_dir_all(root.join("dev"))?;
    std::fs::write(&out, unsafe_inventory(&ws))?;
    Ok(out)
}

fn report(findings: &[Finding]) -> ExitCode {
    for finding in findings {
        println!("{finding}");
    }
    let rule_count = all_rules().len() + workspace_rules().len();
    let denies = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    if denies > 0 {
        eprintln!(
            "libra-lint: {denies} finding(s) across {rule_count} rule(s) — tree is NOT clean"
        );
        ExitCode::FAILURE
    } else {
        eprintln!("libra-lint: clean ({rule_count} rules)");
        ExitCode::SUCCESS
    }
}
