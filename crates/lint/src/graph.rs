//! The workspace symbol graph: every file's parsed items, plus a
//! name-resolution-lite call graph with deterministic iteration order.
//!
//! Resolution is by bare callee name: a call `foo(…)` / `x.foo(…)` /
//! `a::b::foo(…)` resolves to *every* workspace function named `foo`.
//! That over-approximates (two unrelated `simulate`s alias) and
//! under-approximates (closures and trait objects have no edges), which
//! is the right trade for lint rules: reachability queries err toward
//! flagging, and the waiver system absorbs audited over-matches.
//!
//! The one exception: [`AMBIGUOUS_NAMES`] — ubiquitous names like `new`
//! or `clone` — resolve to nothing. Every `ModelStore::new` calling
//! `Mutex::new` would otherwise alias every other `new` into one clique,
//! and a single flagged constructor would taint the whole workspace.
//!
//! Determinism: [`Workspace::from_sources`] sorts files by path before
//! building, node order is `(path, sig_line, name)`, edge lists are
//! sorted and deduplicated, and the fixpoint propagators visit nodes in
//! index order — so findings and the unsafe inventory are byte-identical
//! for any directory-walk order (pinned by `tests/determinism.rs`).

use crate::items::{parse_items, FileItems, FnItem};
use crate::source::SourceFile;
use crate::tokens::tokenize_lines;
use std::collections::BTreeMap;

/// Names too ubiquitous to resolve by bare name: nearly every type has
/// one, so name resolution would fuse them into a single clique and any
/// flagged member would poison every caller in the workspace. Calls to
/// these simply have no edges (their *bodies* are still analyzed).
pub const AMBIGUOUS_NAMES: &[&str] = &[
    "new",
    "default",
    "clone",
    "from",
    "into",
    "to_string",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "next",
    "len",
    "is_empty",
    "get",
    "push",
    "insert",
    "iter",
    "index",
    "as_ref",
    "as_str",
];

/// One file with its parsed items.
pub struct FileEntry {
    pub source: SourceFile,
    pub items: FileItems,
}

/// The whole lint universe: files + symbol graph.
pub struct Workspace {
    pub files: Vec<FileEntry>,
    pub graph: SymbolGraph,
}

impl Workspace {
    /// Build from loaded sources. Input order is irrelevant: files are
    /// sorted by path before parsing, so the graph (and every finding
    /// derived from it) is a pure function of the file *set*.
    pub fn from_sources(sources: Vec<SourceFile>) -> Workspace {
        let mut files: Vec<FileEntry> = sources
            .into_iter()
            .map(|source| {
                let items = parse_items(&tokenize_lines(&source.code));
                FileEntry { source, items }
            })
            .collect();
        files.sort_by(|a, b| a.source.path.cmp(&b.source.path));
        let graph = SymbolGraph::build(&files);
        Workspace { files, graph }
    }
}

/// A function node: indices into `Workspace::files` and its `fns`.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    pub file: usize,
    pub item: usize,
}

/// The call graph over every function in the workspace.
pub struct SymbolGraph {
    /// Nodes sorted by `(file path, sig_line, name)`.
    pub nodes: Vec<Node>,
    /// `krate::module::Owner::name` per node (display / debugging).
    pub qualified: Vec<String>,
    /// Resolved callees per node: sorted, deduplicated node ids.
    pub callees: Vec<Vec<usize>>,
    /// Bare name → node ids bearing it (ids ascending).
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolGraph {
    /// Build the graph over files already sorted by path.
    pub fn build(files: &[FileEntry]) -> SymbolGraph {
        let mut nodes = Vec::new();
        let mut qualified = Vec::new();
        for (fi, entry) in files.iter().enumerate() {
            for (ii, f) in entry.items.fns.iter().enumerate() {
                nodes.push(Node { file: fi, item: ii });
                qualified.push(qualify(&entry.source, f));
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            let name = files[node.file].items.fns[node.item].name.clone();
            if AMBIGUOUS_NAMES.contains(&name.as_str()) {
                continue;
            }
            by_name.entry(name).or_default().push(id);
        }
        let mut callees = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let f = &files[node.file].items.fns[node.item];
            let mut out: Vec<usize> = f
                .calls
                .iter()
                .flat_map(|c| by_name.get(&c.name).into_iter().flatten().copied())
                .collect();
            out.sort_unstable();
            out.dedup();
            callees.push(out);
        }
        SymbolGraph {
            nodes,
            qualified,
            callees,
            by_name,
        }
    }

    /// Node ids of every workspace fn named `name`.
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The [`FnItem`] behind node `id`.
    pub fn fn_of<'a>(&self, files: &'a [FileEntry], id: usize) -> &'a FnItem {
        let n = self.nodes[id];
        &files[n.file].items.fns[n.item]
    }

    /// The [`SourceFile`] holding node `id`.
    pub fn file_of<'a>(&self, files: &'a [FileEntry], id: usize) -> &'a SourceFile {
        &files[self.nodes[id].file].source
    }

    /// Caller-direction fixpoint: `out[n]` is true when `base[n]`, or
    /// any callee of `n` (transitively) satisfies `out`. `excluded`
    /// nodes neither seed nor propagate — they are audited barriers.
    ///
    /// This models value taint through return values and "calling this
    /// is expensive" alike: both flow from callee to caller. Node order
    /// is fixed, so the fixpoint (a unique set) is deterministic.
    pub fn propagate_from_callees(&self, base: &[bool], excluded: &[bool]) -> Vec<bool> {
        debug_assert_eq!(base.len(), self.nodes.len());
        let mut out: Vec<bool> = base.iter().zip(excluded).map(|(&b, &x)| b && !x).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for n in 0..out.len() {
                if out[n] || excluded[n] {
                    continue;
                }
                if self.callees[n].iter().any(|&c| out[c]) {
                    out[n] = true;
                    changed = true;
                }
            }
        }
        out
    }

    /// A deterministic witness chain `from → … → seed` where every hop
    /// is a call edge, every node satisfies `marked`, and the chain ends
    /// at a `base` node (node ids; map through [`SymbolGraph::qualified`]
    /// for display).
    pub fn witness_chain(&self, from: usize, marked: &[bool], base: &[bool]) -> Vec<usize> {
        let mut chain = vec![from];
        let mut visited = vec![false; self.nodes.len()];
        visited[from] = true;
        let mut cur = from;
        while !base[cur] {
            let next = self.callees[cur]
                .iter()
                .copied()
                .find(|&c| marked[c] && !visited[c]);
            match next {
                Some(c) => {
                    visited[c] = true;
                    chain.push(c);
                    cur = c;
                }
                None => break, // cycle without a base node on this path
            }
        }
        chain
    }
}

/// `krate::module::Owner::name` for display.
fn qualify(source: &SourceFile, f: &FnItem) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if !source.krate.is_empty() {
        parts.push(&source.krate);
    }
    if !f.module.is_empty() {
        parts.push(&f.module);
    }
    if !f.owner.is_empty() {
        parts.push(&f.owner);
    }
    parts.push(&f.name);
    parts.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, t)| SourceFile::from_source(Path::new(p), t))
                .collect(),
        )
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn caller() {\n    helper();\n}\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let caller = w.graph.resolve("caller")[0];
        let helper = w.graph.resolve("helper")[0];
        assert_eq!(w.graph.callees[caller], vec![helper]);
        assert_eq!(w.graph.qualified[helper], "b::helper");
    }

    #[test]
    fn propagation_is_transitive_and_barrier_aware() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {}\nfn mid() {\n    leaf();\n}\nfn top() {\n    mid();\n}\n",
        )]);
        let leaf = w.graph.resolve("leaf")[0];
        let mid = w.graph.resolve("mid")[0];
        let top = w.graph.resolve("top")[0];
        let mut base = vec![false; w.graph.nodes.len()];
        base[leaf] = true;
        let none = vec![false; w.graph.nodes.len()];
        let r = w.graph.propagate_from_callees(&base, &none);
        assert!(r[leaf] && r[mid] && r[top]);
        // Barrier at mid stops the flow.
        let mut excl = vec![false; w.graph.nodes.len()];
        excl[mid] = true;
        let r = w.graph.propagate_from_callees(&base, &excl);
        assert!(r[leaf] && !r[mid] && !r[top]);
    }

    #[test]
    fn witness_chain_reaches_a_seed() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {}\nfn mid() {\n    leaf();\n}\nfn top() {\n    mid();\n}\n",
        )]);
        let leaf = w.graph.resolve("leaf")[0];
        let top = w.graph.resolve("top")[0];
        let mut base = vec![false; w.graph.nodes.len()];
        base[leaf] = true;
        let none = vec![false; w.graph.nodes.len()];
        let marked = w.graph.propagate_from_callees(&base, &none);
        let chain: Vec<&str> = w
            .graph
            .witness_chain(top, &marked, &base)
            .into_iter()
            .map(|id| w.graph.qualified[id].as_str())
            .collect();
        assert_eq!(chain, ["a::top", "a::mid", "a::leaf"]);
    }

    #[test]
    fn build_is_input_order_independent() {
        let a = ("crates/a/src/lib.rs", "pub fn one() {\n    two();\n}\n");
        let b = ("crates/b/src/lib.rs", "pub fn two() {}\n");
        let w1 = ws(&[a, b]);
        let w2 = ws(&[b, a]);
        assert_eq!(w1.graph.qualified, w2.graph.qualified);
        assert_eq!(w1.graph.callees, w2.graph.callees);
    }
}
