//! The item layer: token stream → per-file items (functions, unsafe
//! sites, lock-guard bindings, call sites).
//!
//! This is a *name-resolution-lite* parser: it tracks exactly the
//! structure the graph rules need — module nesting, `impl` owners, `fn`
//! bodies with brace-accurate spans, `unsafe` blocks/fns, `let`-bound
//! lock guards with their live ranges, and callee names — and nothing
//! else (no types, no generics semantics, no expressions). Rust's item
//! grammar is regular enough at this altitude that a single forward
//! pass with depth stacks is exact for the constructs we consume; the
//! deliberate approximations are documented on each field.
//!
//! Everything here is a pure function of the token stream, so the
//! symbol graph built on top inherits the tokenizer's determinism.

use crate::tokens::{Token, TokenKind};

/// One callee reference inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name: last path segment for `a::b::f(…)`, the method
    /// name for `x.f(…)`. Macros (`f!(…)`) are not calls.
    pub name: String,
    /// 0-based line of the callee identifier.
    pub line: usize,
    /// True for `receiver.name(…)` method syntax.
    pub is_method: bool,
}

/// A `let`-bound lock guard (`let g = x.lock()…;` / `if let Ok(g) = …`)
/// and the range of lines it stays live.
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// The bound identifier (first binding of the pattern).
    pub binding: String,
    /// The acquiring method: `lock`, `read` or `write`.
    pub method: String,
    /// 0-based line of the `let`.
    pub line: usize,
    /// 0-based line where the guard dies: an explicit `drop(binding)`,
    /// or the close of the enclosing block.
    pub end_line: usize,
}

/// One function (or method) item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`get_or_train`).
    pub name: String,
    /// `::`-joined in-file module path (`""` at file root).
    pub module: String,
    /// Innermost `impl` self-type name (`""` for free functions). For
    /// `impl Trait for Type` this is `Type`.
    pub owner: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// `(first, last)` 0-based body lines; `None` for bodyless trait
    /// signatures.
    pub body: Option<(usize, usize)>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Lock-guard bindings in body order.
    pub guards: Vec<GuardSpan>,
}

/// An `unsafe` occurrence that demands a `// SAFETY:` justification.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 0-based line of the `unsafe` keyword.
    pub line: usize,
    /// True for `unsafe fn`, false for an `unsafe { … }` block.
    pub is_fn: bool,
    /// The enclosing (or declared) function's bare name, `""` outside
    /// any function.
    pub context: String,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "unsafe", "move", "in", "as", "else",
    "let", "impl", "mod", "use", "pub", "where", "break", "continue", "crate", "super", "Self",
    "self", "dyn", "ref", "mut", "box", "await", "async", "const", "static", "type", "trait",
    "enum", "struct", "union", "extern",
];

/// A `fn` header seen, body brace not yet reached.
struct PendingFn {
    name: String,
    sig_line: usize,
    is_unsafe: bool,
    module: String,
    owner: String,
    paren_depth: i32,
}

/// An open `fn` body on the nesting stack.
struct OpenFn {
    item: FnItem,
    body_depth: i32,
}

/// A `let` statement being scanned for a guard acquisition.
struct PendingLet {
    binding: Option<String>,
    guard_method: Option<String>,
    line: usize,
    depth: i32,
    /// `if let` / `while let`: the statement ends at `{`, and the
    /// binding scopes to that block instead of the enclosing one.
    condition_form: bool,
    paren_depth: i32,
}

/// A live guard binding awaiting its scope end.
struct OpenGuard {
    guard: GuardSpan,
    /// Brace depth the binding lives at; the guard dies when a `}`
    /// closes this depth.
    scope_depth: i32,
}

/// Parse one file's token stream into items.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    let mut depth: i32 = 0;
    let mut mod_stack: Vec<(String, i32)> = Vec::new();
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut fn_stack: Vec<OpenFn> = Vec::new();
    let mut open_guards: Vec<OpenGuard> = Vec::new();
    let mut pending_fn: Option<PendingFn> = None;
    let mut pending_let: Option<PendingLet> = None;
    // `unsafe` keyword line, not yet attributed to a fn/block.
    let mut pending_unsafe: Option<usize> = None;
    // `mod` keyword seen, name captured, body brace pending.
    let mut pending_mod: Option<String> = None;
    // Inside an `impl` header: (candidate owner, angle depth).
    let mut impl_header: Option<(String, i32, bool)> = None; // (owner, angle, in_where)

    let module_path = |stack: &[(String, i32)]| {
        stack
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join("::")
    };

    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        let prev = i.checked_sub(1).map(|j| &tokens[j]);
        let next = tokens.get(i + 1);

        // --- impl header capture --------------------------------------
        if let Some((owner, angle, in_where)) = impl_header.as_mut() {
            match (&tok.kind, tok.text.as_str()) {
                (TokenKind::Ident, "for") if *angle == 0 => owner.clear(),
                (TokenKind::Ident, "where") if *angle == 0 => *in_where = true,
                (TokenKind::Ident, name) if *angle == 0 && !*in_where => {
                    *owner = name.to_string();
                }
                (TokenKind::Punct, "<") => *angle += 1,
                // `->` keeps angle depth (return arrows inside
                // `Fn(..) -> T` bounds).
                (TokenKind::Punct, ">") if !prev.is_some_and(|p| p.is_punct('-')) && *angle > 0 => {
                    *angle -= 1;
                }
                (TokenKind::Punct, "{") if *angle == 0 => {
                    let owner = owner.clone();
                    depth += 1;
                    impl_stack.push((owner, depth));
                    impl_header = None;
                    i += 1;
                    continue;
                }
                (TokenKind::Punct, ";") => impl_header = None, // `impl Foo;` (never valid, be safe)
                _ => {}
            }
            if impl_header.is_some() {
                i += 1;
                continue;
            }
        }

        match tok.kind {
            TokenKind::Ident => match tok.text.as_str() {
                "unsafe" => pending_unsafe = Some(tok.line),
                // `impl Trait` in a signature (param/return position) is
                // a bound, not an item — only start header capture at
                // item position.
                "impl" if pending_fn.is_none() && pending_let.is_none() => {
                    pending_unsafe = None; // `unsafe impl … {}` is not a block site
                    impl_header = Some((String::new(), 0, false));
                }
                "trait" => pending_unsafe = None,
                "mod" => {
                    if let Some(n) = next {
                        if n.kind == TokenKind::Ident {
                            pending_mod = Some(n.text.clone());
                            i += 2;
                            continue;
                        }
                    }
                }
                "fn" => {
                    if let Some(n) = next {
                        if n.kind == TokenKind::Ident {
                            let is_unsafe = pending_unsafe.take().is_some();
                            if is_unsafe {
                                out.unsafe_sites.push(UnsafeSite {
                                    line: tok.line,
                                    is_fn: true,
                                    context: n.text.clone(),
                                });
                            }
                            pending_fn = Some(PendingFn {
                                name: n.text.clone(),
                                sig_line: tok.line,
                                is_unsafe,
                                module: module_path(&mod_stack),
                                owner: impl_stack
                                    .last()
                                    .map(|(o, _)| o.clone())
                                    .unwrap_or_default(),
                                paren_depth: 0,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
                // A nested `let` (e.g. inside a block-valued initializer
                // `let x = { let g = m.lock(); … }`) supersedes the outer
                // statement for guard detection — the acquisition binds
                // the *inner* name.
                "let" if fn_stack.last().is_some() => {
                    let condition_form =
                        prev.is_some_and(|p| p.is_ident("if") || p.is_ident("while"));
                    pending_let = Some(PendingLet {
                        binding: None,
                        guard_method: None,
                        line: tok.line,
                        depth,
                        condition_form,
                        paren_depth: 0,
                    });
                }
                "drop" if next.is_some_and(|n| n.is_punct('(')) => {
                    // Explicit `drop(binding)` ends that guard's span.
                    if let Some(arg) = tokens.get(i + 2) {
                        if arg.kind == TokenKind::Ident
                            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
                        {
                            for og in open_guards.iter_mut() {
                                if og.guard.binding == arg.text && og.guard.end_line == usize::MAX {
                                    og.guard.end_line = tok.line;
                                }
                            }
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Punct => match tok.text.as_str() {
                "(" => {
                    if let Some(pf) = pending_fn.as_mut() {
                        pf.paren_depth += 1;
                    }
                    if let Some(pl) = pending_let.as_mut() {
                        pl.paren_depth += 1;
                    }
                }
                ")" => {
                    if let Some(pf) = pending_fn.as_mut() {
                        pf.paren_depth -= 1;
                    }
                    if let Some(pl) = pending_let.as_mut() {
                        pl.paren_depth -= 1;
                    }
                }
                "{" => {
                    depth += 1;
                    if let Some(line) = pending_unsafe.take() {
                        out.unsafe_sites.push(UnsafeSite {
                            line,
                            is_fn: false,
                            context: fn_stack
                                .last()
                                .map(|f| f.item.name.clone())
                                .unwrap_or_default(),
                        });
                    }
                    if let Some(name) = pending_mod.take() {
                        mod_stack.push((name, depth));
                    } else if let Some(pf) = pending_fn.take() {
                        if pf.paren_depth == 0 {
                            fn_stack.push(OpenFn {
                                item: FnItem {
                                    name: pf.name,
                                    module: pf.module,
                                    owner: pf.owner,
                                    sig_line: pf.sig_line,
                                    body: Some((tok.line, tok.line)),
                                    is_unsafe: pf.is_unsafe,
                                    calls: Vec::new(),
                                    guards: Vec::new(),
                                },
                                body_depth: depth,
                            });
                        } else {
                            // Brace inside parameter parens (never valid
                            // Rust; recover by re-pending).
                            pending_fn = Some(pf);
                        }
                    } else if let Some(pl) = pending_let.as_mut() {
                        if pl.condition_form && pl.paren_depth == 0 {
                            // `if let PAT = EXPR {` — statement complete;
                            // the binding scopes to the opened block.
                            let pl = pending_let.take().expect("checked some above");
                            if let (Some(binding), Some(method)) = (pl.binding, pl.guard_method) {
                                open_guards.push(OpenGuard {
                                    guard: GuardSpan {
                                        binding,
                                        method,
                                        line: pl.line,
                                        end_line: usize::MAX,
                                    },
                                    scope_depth: depth,
                                });
                            }
                        }
                    }
                }
                "}" => {
                    // Close guards bound at this depth.
                    let mut idx = 0;
                    while idx < open_guards.len() {
                        if open_guards[idx].scope_depth == depth {
                            let mut og = open_guards.remove(idx);
                            if og.guard.end_line == usize::MAX {
                                og.guard.end_line = tok.line;
                            }
                            if let Some(f) = fn_stack.last_mut() {
                                f.item.guards.push(og.guard);
                            }
                        } else {
                            idx += 1;
                        }
                    }
                    if fn_stack.last().is_some_and(|f| f.body_depth == depth) {
                        let mut f = fn_stack.pop().expect("checked non-empty above");
                        if let Some((start, _)) = f.item.body {
                            f.item.body = Some((start, tok.line));
                        }
                        // Nested fn bodies report their calls themselves;
                        // keep nesting simple by attaching the nested item
                        // to the file, not the parent.
                        out.fns.push(f.item);
                    }
                    if mod_stack.last().is_some_and(|&(_, d)| d == depth) {
                        mod_stack.pop();
                    }
                    if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                        impl_stack.pop();
                    }
                    depth -= 1;
                    pending_unsafe = None;
                }
                ";" => {
                    pending_unsafe = None;
                    if pending_fn.as_ref().is_some_and(|pf| pf.paren_depth == 0) {
                        // Bodyless trait signature.
                        let pf = pending_fn.take().expect("checked some above");
                        out.fns.push(FnItem {
                            name: pf.name,
                            module: pf.module,
                            owner: pf.owner,
                            sig_line: pf.sig_line,
                            body: None,
                            is_unsafe: pf.is_unsafe,
                            calls: Vec::new(),
                            guards: Vec::new(),
                        });
                    }
                    pending_mod = None; // `mod name;` — out-of-line module
                    if pending_let.as_ref().is_some_and(|pl| pl.depth == depth) {
                        let pl = pending_let.take().expect("checked some above");
                        if let (Some(binding), Some(method)) = (pl.binding, pl.guard_method) {
                            if binding != "_" {
                                open_guards.push(OpenGuard {
                                    guard: GuardSpan {
                                        binding,
                                        method,
                                        line: pl.line,
                                        end_line: usize::MAX,
                                    },
                                    scope_depth: depth,
                                });
                            }
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }

        // --- pending-let enrichment (binding name, guard method) -------
        if let Some(pl) = pending_let.as_mut() {
            if tok.kind == TokenKind::Ident
                && pl.binding.is_none()
                && !matches!(tok.text.as_str(), "let" | "mut" | "ref" | "Some" | "Ok")
            {
                pl.binding = Some(tok.text.clone());
            }
            // Guard acquisitions are nullary: `.lock()`, `.read()`,
            // `.write()`. An argument means something else entirely
            // (`OpenOptions::new().write(true)`, `io::Read::read(buf)`).
            if tok.kind == TokenKind::Ident
                && matches!(tok.text.as_str(), "lock" | "read" | "write")
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
            {
                pl.guard_method = Some(tok.text.clone());
            }
        }

        // --- call-site detection ---------------------------------------
        if tok.kind == TokenKind::Ident
            && pending_fn.is_none()
            && next.is_some_and(|n| n.is_punct('('))
            && !NON_CALL_KEYWORDS.contains(&tok.text.as_str())
            && !prev.is_some_and(|p| p.is_ident("fn"))
        {
            if let Some(f) = fn_stack.last_mut() {
                f.item.calls.push(CallSite {
                    name: tok.text.clone(),
                    line: tok.line,
                    is_method: prev.is_some_and(|p| p.is_punct('.')),
                });
            }
        }

        i += 1;
    }

    // Unterminated structures (truncated input): close open fns/guards
    // at the last token's line so nothing is lost.
    let last_line = tokens.last().map(|t| t.line).unwrap_or(0);
    for og in open_guards.drain(..) {
        let mut g = og.guard;
        if g.end_line == usize::MAX {
            g.end_line = last_line;
        }
        if let Some(f) = fn_stack.last_mut() {
            f.item.guards.push(g);
        }
    }
    for mut f in fn_stack.drain(..).rev() {
        if let Some((start, _)) = f.item.body {
            f.item.body = Some((start, last_line));
        }
        out.fns.push(f.item);
    }

    // Deterministic order regardless of nesting-driven push order.
    out.fns.sort_by_key(|f| (f.sig_line, f.name.clone()));
    out.unsafe_sites.sort_by_key(|s| s.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize_lines;
    use crate::SourceFile;
    use std::path::Path;

    fn items(text: &str) -> FileItems {
        let f = SourceFile::from_source(Path::new("crates/demo/src/a.rs"), text);
        parse_items(&tokenize_lines(&f.code))
    }

    #[test]
    fn fn_items_carry_module_and_owner() {
        let it = items(
            "mod inner {\n    struct Foo;\n    impl Foo {\n        pub fn method(&self) {}\n    }\n    fn free() {}\n}\nfn top() {}\n",
        );
        let names: Vec<(&str, &str, &str)> = it
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.module.as_str(), f.owner.as_str()))
            .collect();
        assert!(names.contains(&("method", "inner", "Foo")));
        assert!(names.contains(&("free", "inner", "")));
        assert!(names.contains(&("top", "", "")));
    }

    #[test]
    fn impl_trait_for_type_owner_is_type() {
        let it = items("impl Display for Finding {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(it.fns[0].owner, "Finding");
    }

    #[test]
    fn calls_resolve_last_segment_and_skip_macros() {
        let it = items(
            "fn f() {\n    helper();\n    a::b::qualified();\n    x.method_call();\n    println!(\"no\");\n}\n",
        );
        let calls: Vec<&str> = it.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, ["helper", "qualified", "method_call"]);
        assert!(it.fns[0].calls[2].is_method);
    }

    #[test]
    fn fn_param_bounds_are_not_calls() {
        let it = items("fn f(g: impl Fn(usize) -> u32) {\n    g();\n}\n");
        let calls: Vec<&str> = it.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, ["g"]);
    }

    #[test]
    fn unsafe_blocks_and_fns_are_sites() {
        let it = items("fn caller() {\n    unsafe { fast_path() };\n}\nunsafe fn kernel() {\n}\n");
        assert_eq!(it.unsafe_sites.len(), 2);
        assert!(!it.unsafe_sites[0].is_fn);
        assert_eq!(it.unsafe_sites[0].context, "caller");
        assert!(it.unsafe_sites[1].is_fn);
        assert_eq!(it.unsafe_sites[1].context, "kernel");
        assert!(it.fns.iter().any(|f| f.name == "kernel" && f.is_unsafe));
    }

    #[test]
    fn unsafe_impl_is_not_a_site() {
        let it = items("unsafe impl Send for Foo {}\n");
        assert!(it.unsafe_sites.is_empty());
    }

    #[test]
    fn guard_spans_cover_block_and_drop() {
        let it = items(
            "fn f(&self) {\n    let cell = {\n        let mut cache = self.cache.lock().expect(\"p\");\n        cache.get()\n    };\n    expensive();\n}\n",
        );
        let f = &it.fns[0];
        assert_eq!(f.guards.len(), 1);
        let g = &f.guards[0];
        assert_eq!((g.binding.as_str(), g.method.as_str()), ("cache", "lock"));
        assert_eq!(g.line, 2);
        assert_eq!(g.end_line, 4, "guard dies at the inner block close");

        let it2 = items(
            "fn f(&self) {\n    let g = m.lock().expect(\"p\");\n    use_it(&g);\n    drop(g);\n    after();\n}\n",
        );
        let g2 = &it2.fns[0].guards[0];
        assert_eq!(g2.line, 1);
        assert_eq!(g2.end_line, 3, "explicit drop ends the span");
    }

    #[test]
    fn if_let_guard_scopes_to_its_block() {
        let it = items(
            "fn f(&self) {\n    if let Ok(g) = m.lock() {\n        use_it(&g);\n    }\n    after();\n}\n",
        );
        let g = &it.fns[0].guards[0];
        assert_eq!((g.line, g.end_line), (1, 3));
    }

    #[test]
    fn trait_signatures_are_bodyless() {
        let it = items("trait T {\n    fn sig(&self);\n    fn with_default(&self) {}\n}\n");
        let sig = it.fns.iter().find(|f| f.name == "sig").expect("sig item");
        assert!(sig.body.is_none());
        let dflt = it
            .fns
            .iter()
            .find(|f| f.name == "with_default")
            .expect("default item");
        assert!(dflt.body.is_some());
    }

    #[test]
    fn nested_fns_keep_their_own_calls() {
        let it =
            items("fn outer() {\n    fn inner() {\n        deep();\n    }\n    shallow();\n}\n");
        let outer = it.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = it.fns.iter().find(|f| f.name == "inner").expect("inner");
        let oc: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        let ic: Vec<&str> = inner.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(oc, ["shallow"]);
        assert_eq!(ic, ["deep"]);
    }
}
