//! The graph-powered rules: invariants that need the workspace symbol
//! graph (interprocedural reachability), not just one file's text.
//!
//! | id | invariant |
//! |---|---|
//! | `lock-across-call` | no lock guard live across a call that reaches training/simulation/IO |
//! | `fma-determinism` | no FMA/`mul_add` in the `nn`/`netsim` kernels (byte identity needs separate mul/add) |
//! | `unsafe-audit` | every `unsafe` block/fn carries an adjacent `// SAFETY:` justification |
//! | `nondeterminism-taint` | no nondeterministic source value reaches a digest/serialization sink |
//!
//! Each rule reports through the same [`Finding`] type as the per-file
//! rules and honours the same `// lint: allow(<name>)` escape hatch; on
//! `nondeterminism-taint` a waiver on a *function header* additionally
//! acts as an audited taint barrier (the fn neither sources nor
//! propagates — reserved for boundaries like the index-ordered sweep
//! merge whose determinism is pinned by byte-identity tests).

use crate::graph::Workspace;
use crate::items::FnItem;
use crate::rules::{Finding, Severity};
use crate::source::SourceFile;

/// A single invariant check over the whole workspace.
pub trait WorkspaceRule {
    /// Stable identifier (reports and the DESIGN.md table).
    fn id(&self) -> &'static str;
    /// Gate behaviour of this rule's findings.
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    /// One-line rationale.
    fn description(&self) -> &'static str;
    /// Append findings for the workspace to `out`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// The graph-rule registry, in id order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(LockAcrossCall),
        Box::new(FmaDeterminism),
        Box::new(UnsafeAudit),
        Box::new(NondeterminismTaint),
    ]
}

/// True when `line` is waived for either spelling of `name` (hyphen and
/// underscore are both accepted, matching the per-file rules).
fn waived(file: &SourceFile, line: usize, hyphen: &str, underscore: &str) -> bool {
    file.allowed(line, hyphen) || file.allowed(line, underscore)
}

// ---------------------------------------------------------------------
// lock-across-call
// ---------------------------------------------------------------------

/// `lock-across-call`: a `Mutex`/`RwLock` guard that stays live across
/// a call which (transitively) reaches training, simulation or file IO
/// serializes exactly the work the sweep engine exists to parallelize —
/// the `ModelStore::get_or_train` bug PR 8 fixed by hand (the cache
/// mutex held across a whole training run). Guards must die before the
/// expensive call: shrink the binding's block, clone out the needed
/// data, or `drop(guard)` first.
pub struct LockAcrossCall;

/// Callee names that are expensive by name alone, resolved or not:
/// training entry points, simulation drivers, blocking waits.
fn expensive_name(name: &str) -> bool {
    name == "run"
        || name.starts_with("run_")
        || name.starts_with("train")
        || name.starts_with("simulate")
        || name == "join"
        || name == "read_to_string"
        || name == "create_dir_all"
}

/// Body-text markers that make a fn an expensive root (file IO).
const IO_MARKERS: &[&str] = &["std::fs::", "std::io::", "File::open", "File::create"];

/// Calls on the acquisition line that are part of acquiring the guard,
/// never the held-across work.
const ACQUISITION_CALLS: &[&str] = &["lock", "read", "write", "expect", "unwrap"];

/// Per-node "calling this is expensive" seed: the fn itself calls an
/// expensive-by-name callee or touches file IO.
fn expensive_seeds(ws: &Workspace) -> Vec<bool> {
    ws.graph
        .nodes
        .iter()
        .enumerate()
        .map(|(id, _)| {
            let f = ws.graph.fn_of(&ws.files, id);
            let file = ws.graph.file_of(&ws.files, id);
            if f.calls.iter().any(|c| expensive_name(&c.name)) {
                return true;
            }
            f.body.is_some_and(|(s, e)| {
                file.code[s..=e.min(file.code.len().saturating_sub(1))]
                    .iter()
                    .any(|l| IO_MARKERS.iter().any(|m| l.contains(m)))
            })
        })
        .collect()
}

impl WorkspaceRule for LockAcrossCall {
    fn id(&self) -> &'static str {
        "lock-across-call"
    }
    fn description(&self) -> &'static str {
        "lock guard live across a call that reaches training/simulation/IO"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let seeds = expensive_seeds(ws);
        let none = vec![false; seeds.len()];
        let expensive = ws.graph.propagate_from_callees(&seeds, &none);
        for (id, _) in ws.graph.nodes.iter().enumerate() {
            let f = ws.graph.fn_of(&ws.files, id);
            let file = ws.graph.file_of(&ws.files, id);
            for guard in &f.guards {
                if file.is_test[guard.line.min(file.is_test.len().saturating_sub(1))] {
                    continue;
                }
                if waived(file, guard.line, "lock-across-call", "lock_across_call") {
                    continue;
                }
                // The first expensive call inside the guard's live range
                // (excluding the acquisition calls on the `let` line).
                let hit = f.calls.iter().find(|c| {
                    c.line >= guard.line
                        && c.line <= guard.end_line
                        && !(c.line == guard.line && ACQUISITION_CALLS.contains(&c.name.as_str()))
                        && (expensive_name(&c.name)
                            || ws.graph.resolve(&c.name).iter().any(|&t| expensive[t]))
                });
                let Some(call) = hit else { continue };
                if waived(file, call.line, "lock-across-call", "lock_across_call") {
                    continue;
                }
                let target = ws
                    .graph
                    .resolve(&call.name)
                    .iter()
                    .find(|&&t| expensive[t])
                    .map(|&t| ws.graph.qualified[t].clone())
                    .unwrap_or_else(|| call.name.clone());
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.clone(),
                    line: call.line + 1,
                    message: format!(
                        "`{}` ({} guard acquired on line {}) is still live across \
                         `{}`, which reaches training/simulation/IO — the \
                         ModelStore::get_or_train bug class; end the guard's block \
                         (or drop() it) before the call, or waive an audited hold \
                         with `// lint: allow(lock_across_call)`",
                        guard.binding,
                        guard.method,
                        guard.line + 1,
                        target,
                    ),
                    excerpt: file.lines[call.line].trim().to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// fma-determinism
// ---------------------------------------------------------------------

/// `fma-determinism`: the batched kernels' headline contract is that
/// batched and per-flow forwards are *bit-identical*, which holds only
/// because every variant applies the same separate multiply-then-add
/// per element (one rounding per op). A fused multiply-add rounds once
/// instead of twice, so any `mul_add`/FMA intrinsic inside `nn` or
/// `netsim` silently breaks batched-vs-sequential byte identity and the
/// pinned run digests downstream.
pub struct FmaDeterminism;

const FMA_PATTERNS: &[&str] = &["mul_add(", "fmadd"];

impl WorkspaceRule for FmaDeterminism {
    fn id(&self) -> &'static str {
        "fma-determinism"
    }
    fn description(&self) -> &'static str {
        "FMA/mul_add in the nn/netsim kernels (breaks batched bit identity)"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for entry in &ws.files {
            let file = &entry.source;
            if file.krate != "nn" && file.krate != "netsim" {
                continue;
            }
            for (idx, code) in file.code.iter().enumerate() {
                if !FMA_PATTERNS.iter().any(|p| code.contains(p)) {
                    continue;
                }
                if waived(file, idx, "fma-determinism", "fma") {
                    continue;
                }
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.clone(),
                    line: idx + 1,
                    message: "fused multiply-add rounds once where the scalar kernel \
                              rounds twice, breaking batched-vs-sequential bit \
                              identity; keep separate mul/add in per-element order, \
                              or waive a non-kernel use with `// lint: allow(fma)`"
                        .to_string(),
                    excerpt: file.lines[idx].trim().to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------

/// `unsafe-audit`: every `unsafe` block and `unsafe fn` must carry an
/// adjacent `// SAFETY:` comment stating the invariant that makes it
/// sound (same line, or the contiguous comment/attribute run directly
/// above). Doc `# Safety` sections document the *caller's* obligation;
/// the `// SAFETY:` comment records why *this* site meets it. The
/// `libra-lint --emit-unsafe-inventory` emitter renders every site into
/// `dev/unsafe_inventory.md`, which ci.sh drift-gates.
pub struct UnsafeAudit;

/// The justification text after `SAFETY:` adjacent to `line`, if any.
pub fn safety_justification(file: &SourceFile, line: usize) -> Option<String> {
    let extract = |l: &str| {
        l.find("SAFETY:")
            .map(|p| l[p + "SAFETY:".len()..].trim().to_string())
    };
    if let Some(j) = file.lines.get(line).and_then(|l| extract(l)) {
        return Some(j);
    }
    // Walk the contiguous comment/attribute run directly above.
    let mut i = line;
    while i > 0 {
        i -= 1;
        let t = file.lines[i].trim();
        let adjacent = t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!");
        if !adjacent {
            break;
        }
        if let Some(j) = extract(t) {
            return Some(j);
        }
    }
    None
}

impl WorkspaceRule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }
    fn description(&self) -> &'static str {
        "unsafe block/fn without an adjacent // SAFETY: justification"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for entry in &ws.files {
            let file = &entry.source;
            for site in &entry.items.unsafe_sites {
                if safety_justification(file, site.line).is_some() {
                    continue;
                }
                if waived(file, site.line, "unsafe-audit", "unsafe_audit") {
                    continue;
                }
                let kind = if site.is_fn {
                    "unsafe fn"
                } else {
                    "unsafe block"
                };
                out.push(Finding {
                    rule: self.id(),
                    severity: self.severity(),
                    path: file.path.clone(),
                    line: site.line + 1,
                    message: format!(
                        "{kind} without an adjacent `// SAFETY:` comment; state the \
                         invariant that makes this site sound (it also feeds \
                         dev/unsafe_inventory.md)",
                    ),
                    excerpt: file.lines[site.line].trim().to_string(),
                });
            }
        }
    }
}

/// Render the committed unsafe inventory (`dev/unsafe_inventory.md`).
/// Deterministic: files are path-sorted in the workspace, sites are
/// line-sorted by the item parser.
pub fn unsafe_inventory(ws: &Workspace) -> String {
    let mut rows = Vec::new();
    for entry in &ws.files {
        let file = &entry.source;
        for site in &entry.items.unsafe_sites {
            let kind = if site.is_fn { "fn" } else { "block" };
            let context = if site.context.is_empty() {
                "—".to_string()
            } else {
                format!("`{}`", site.context)
            };
            let justification = safety_justification(file, site.line)
                .map(|j| j.replace('|', "\\|"))
                .unwrap_or_else(|| "**MISSING**".to_string());
            rows.push(format!(
                "| {} | {} | {} | {} | {} |",
                file.path.display(),
                site.line + 1,
                kind,
                context,
                justification,
            ));
        }
    }
    let mut out = String::new();
    out.push_str("# Unsafe inventory\n\n");
    out.push_str(
        "Generated by `cargo run -p libra-lint -- --emit-unsafe-inventory`;\n\
         `scripts/ci.sh` regenerates it and fails on drift. Do not edit by\n\
         hand.\n\n\
         Every `unsafe` site in the linted tree (workspace crates plus root\n\
         `src/`, `examples/`, `tests/`, `benches/`), with the first line of\n\
         its `// SAFETY:` justification. The `unsafe-audit` lint denies any\n\
         site without one.\n\n",
    );
    out.push_str("| file | line | kind | context | justification |\n");
    out.push_str("|---|---|---|---|---|\n");
    for row in &rows {
        out.push_str(row);
        out.push('\n');
    }
    out.push_str(&format!("\n{} site(s).\n", rows.len()));
    out
}

// ---------------------------------------------------------------------
// nondeterminism-taint
// ---------------------------------------------------------------------

/// `nondeterminism-taint`: reproducibility dies quietly when a host
/// value (wall clock, thread scheduling, hash seeds) flows through a
/// couple of helpers and lands in a serialized artifact or digest —
/// each helper looks innocent, only the composition is wrong. This rule
/// computes interprocedural taint over the call graph: *sources* are
/// fns that read host clocks (including audited `host-clock` waiver
/// sites — waived reads are still nondeterministic *values*), spawn
/// threads, or use ambient hash state / unordered iteration; taint
/// propagates callee→caller (through return values); *sinks* are serde
/// serialization calls, digest/fingerprint helpers and artifact
/// writers. A tainted fn that feeds a sink is denied.
///
/// A `// lint: allow(nondeterminism_taint)` on a fn *header* is an
/// audited barrier (the fn neither sources nor propagates); on a source
/// or sink line it waives that line only.
pub struct NondeterminismTaint;

const CLOCK_SOURCES: &[&str] = &[
    "std::time::Instant",
    "std::time::SystemTime",
    "SystemTime::now",
    "Instant::now(",
];
const THREAD_SOURCES: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];
const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "RandomState", "getrandom"];
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];
const UNORDERED_ITER: &[&str] = &[".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"];

const SERIALIZE_SINKS: &[&str] = &[
    "serde_json::to_string",
    "serde_json::to_vec",
    "serde_json::to_writer",
    "write_artifact(",
];

const TAINT: &str = "nondeterminism_taint";
const TAINT_HYPHEN: &str = "nondeterminism-taint";

/// The first nondeterministic source in `f`'s body: `(kind, line)`.
fn source_of(file: &SourceFile, f: &FnItem) -> Option<(&'static str, usize)> {
    let (s, e) = f.body?;
    let e = e.min(file.code.len().saturating_sub(1));
    let has_unordered_type = file.code[s..=e]
        .iter()
        .any(|l| UNORDERED_TYPES.iter().any(|p| l.contains(p)));
    for (off, code) in file.code[s..=e].iter().enumerate() {
        let line = s + off;
        if waived(file, line, TAINT_HYPHEN, TAINT) {
            continue;
        }
        if CLOCK_SOURCES.iter().any(|p| code.contains(p)) {
            return Some(("host-clock", line));
        }
        if THREAD_SOURCES.iter().any(|p| code.contains(p)) {
            return Some(("thread-scheduling", line));
        }
        if ENTROPY_SOURCES.iter().any(|p| code.contains(p)) {
            return Some(("ambient-entropy", line));
        }
        if has_unordered_type && UNORDERED_ITER.iter().any(|p| code.contains(p)) {
            return Some(("unordered-iteration", line));
        }
    }
    None
}

/// The first serialization/digest sink in `f`: `(line, description)`.
fn sink_of(file: &SourceFile, f: &FnItem) -> Option<(usize, String)> {
    let (s, e) = f.body?;
    let e = e.min(file.code.len().saturating_sub(1));
    let mut best: Option<(usize, String)> = None;
    for (off, code) in file.code[s..=e].iter().enumerate() {
        let line = s + off;
        if let Some(p) = SERIALIZE_SINKS.iter().find(|p| code.contains(*p)) {
            let what = format!("serializes via `{}`", p.trim_end_matches('('));
            if best.as_ref().is_none_or(|(l, _)| line < *l) {
                best = Some((line, what));
            }
        }
    }
    for c in &f.calls {
        if c.name.contains("digest") || c.name.contains("fingerprint") {
            let what = format!("feeds digest `{}`", c.name);
            if best.as_ref().is_none_or(|(l, _)| c.line < *l) {
                best = Some((c.line, what));
            }
        }
    }
    best
}

impl WorkspaceRule for NondeterminismTaint {
    fn id(&self) -> &'static str {
        "nondeterminism-taint"
    }
    fn description(&self) -> &'static str {
        "nondeterministic source value reaches a digest/serialization sink"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let n = ws.graph.nodes.len();
        let mut base = vec![false; n];
        let mut excluded = vec![false; n];
        let mut kinds: Vec<Option<&'static str>> = vec![None; n];
        for id in 0..n {
            let f = ws.graph.fn_of(&ws.files, id);
            let file = ws.graph.file_of(&ws.files, id);
            let sig = f.sig_line.min(file.is_test.len().saturating_sub(1));
            if file.is_test.get(sig).copied().unwrap_or(false)
                || waived(file, f.sig_line, TAINT_HYPHEN, TAINT)
            {
                excluded[id] = true;
                continue;
            }
            if let Some((kind, line)) = source_of(file, f) {
                base[id] = true;
                kinds[id] = Some(kind);
                let _ = line;
            }
        }
        let tainted = ws.graph.propagate_from_callees(&base, &excluded);
        for id in 0..n {
            if !tainted[id] {
                continue;
            }
            let f = ws.graph.fn_of(&ws.files, id);
            let file = ws.graph.file_of(&ws.files, id);
            let Some((line, what)) = sink_of(file, f) else {
                continue;
            };
            if waived(file, line, TAINT_HYPHEN, TAINT) {
                continue;
            }
            let chain = ws.graph.witness_chain(id, &tainted, &base);
            let kind = chain
                .last()
                .and_then(|&last| kinds[last])
                .unwrap_or("nondeterministic");
            let path: Vec<&str> = chain
                .iter()
                .take(6)
                .map(|&c| ws.graph.qualified[c].as_str())
                .collect();
            let suffix = if chain.len() > 6 { " → …" } else { "" };
            out.push(Finding {
                rule: self.id(),
                severity: self.severity(),
                path: file.path.clone(),
                line: line + 1,
                message: format!(
                    "`{}` {what} while tainted by a {kind} source \
                     (taint path: {}{suffix}); host-dependent values must not \
                     reach serialized artifacts or digests — keep them out of \
                     the serialized shape, or waive an audited flow with \
                     `// lint: allow(nondeterminism_taint)` (on the sink line; \
                     on a fn header it is a taint barrier)",
                    ws.graph.qualified[id],
                    path.join(" → "),
                ),
                excerpt: file.lines[line].trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, t)| SourceFile::from_source(Path::new(p), t))
                .collect(),
        )
    }

    fn run_rule(rule: &dyn WorkspaceRule, files: &[(&str, &str)]) -> Vec<Finding> {
        let w = ws(files);
        let mut out = Vec::new();
        rule.check(&w, &mut out);
        out
    }

    #[test]
    fn lock_held_across_training_call_is_flagged() {
        // The pre-PR8 ModelStore shape: map mutex held across training.
        let hits = run_rule(
            &LockAcrossCall,
            &[(
                "crates/bench/src/models.rs",
                "impl Store {\n    fn get_or_train(&self) -> W {\n        let mut cache = self.cache.lock().expect(\"poisoned\");\n        cache.entry(k).or_insert_with(|| self.load_or_train(k)).clone()\n    }\n    fn load_or_train(&self, k: K) -> W {\n        train_weights(k)\n    }\n}\n",
            )],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "lock-across-call");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn guard_scoped_out_before_call_is_clean() {
        // The post-PR8 shape: guard dies in an inner block, training
        // happens outside it.
        let hits = run_rule(
            &LockAcrossCall,
            &[(
                "crates/bench/src/models.rs",
                "impl Store {\n    fn get_or_train(&self) -> W {\n        let cell = {\n            let mut cache = self.cache.lock().expect(\"poisoned\");\n            cache.fetch(k)\n        };\n        cell.get_or_init(|| self.load_or_train(k)).clone()\n    }\n    fn load_or_train(&self, k: K) -> W {\n        train_weights(k)\n    }\n}\n",
            )],
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn fma_flagged_only_in_kernel_crates() {
        let bad = run_rule(
            &FmaDeterminism,
            &[(
                "crates/nn/src/k.rs",
                "fn f(a: f64) -> f64 {\n    a.mul_add(2.0, 1.0)\n}\n",
            )],
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "fma-determinism");
        let other = run_rule(
            &FmaDeterminism,
            &[(
                "crates/bench/src/k.rs",
                "fn f(a: f64) -> f64 {\n    a.mul_add(2.0, 1.0)\n}\n",
            )],
        );
        assert!(other.is_empty());
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        let bad = run_rule(
            &UnsafeAudit,
            &[(
                "crates/nn/src/k.rs",
                "fn f() {\n    unsafe { fast() };\n}\n",
            )],
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "unsafe-audit");
        let good = run_rule(
            &UnsafeAudit,
            &[(
                "crates/nn/src/k.rs",
                "fn f() {\n    // SAFETY: bounds were checked above.\n    unsafe { fast() };\n}\n",
            )],
        );
        assert!(good.is_empty(), "{good:?}");
        // Through an attribute run (unsafe fn with target_feature).
        let attr = run_rule(
            &UnsafeAudit,
            &[(
                "crates/nn/src/k.rs",
                "// SAFETY: caller verified AVX.\n#[target_feature(enable = \"avx\")]\nunsafe fn kern() {\n}\n",
            )],
        );
        assert!(attr.is_empty(), "{attr:?}");
    }

    #[test]
    fn inventory_lists_sites_with_justifications() {
        let w = ws(&[(
            "crates/nn/src/k.rs",
            "fn f() {\n    // SAFETY: bounds were checked above.\n    unsafe { fast() };\n}\nunsafe fn raw() {\n}\n",
        )]);
        let inv = unsafe_inventory(&w);
        assert!(
            inv.contains("| crates/nn/src/k.rs | 3 | block | `f` | bounds were checked above. |")
        );
        assert!(inv.contains("| crates/nn/src/k.rs | 5 | fn | `raw` | **MISSING** |"));
        assert!(inv.contains("2 site(s)."));
    }

    #[test]
    fn taint_launders_through_two_helpers() {
        // helper1 reads the clock (host-clock-waived — still a source),
        // helper2 launders it, report serializes: flagged at the sink.
        let hits = run_rule(
            &NondeterminismTaint,
            &[(
                "crates/bench/src/r.rs",
                "fn helper1() -> u64 {\n    // lint: allow(host_clock)\n    read(std::time::Instant::now())\n}\nfn helper2() -> u64 {\n    helper1()\n}\nfn report() -> String {\n    let t = helper2();\n    serde_json::to_string(&t).expect(\"json\")\n}\n",
            )],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "nondeterminism-taint");
        assert_eq!(hits[0].line, 10);
        assert!(
            hits[0]
                .message
                .contains("bench::report → bench::helper2 → bench::helper1"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn taint_barrier_on_header_stops_propagation() {
        let hits = run_rule(
            &NondeterminismTaint,
            &[(
                "crates/bench/src/r.rs",
                "fn helper1() -> u64 {\n    // lint: allow(host_clock)\n    read(std::time::Instant::now())\n}\n// lint: allow(nondeterminism_taint) — measurement never leaves compute_ns\nfn helper2() -> u64 {\n    helper1()\n}\nfn report() -> String {\n    let t = helper2();\n    serde_json::to_string(&t).expect(\"json\")\n}\n",
            )],
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
