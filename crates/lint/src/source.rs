//! The source model the rules run against: one Rust file, loaded once,
//! preprocessed into the views every rule needs.
//!
//! The views are deliberately cheap and syntax-light — a full parse is
//! neither available (the registry is offline, so no `syn`) nor needed:
//! every invariant the workspace enforces is expressible as "pattern X
//! appears in *code* (not comments/strings), outside test regions,
//! without annotation Y nearby".
//!
//! * [`SourceFile::code`] — the file with comments and string/char
//!   literal *contents* blanked to spaces (same length per line), so
//!   `"https://…"` or a pattern named in a doc comment never trips a
//!   rule.
//! * [`SourceFile::is_test`] — a per-line mask covering `#[cfg(test)]`
//!   items and `#[test]` functions (brace-tracked over the blanked
//!   text).
//! * Function spans — innermost `fn` bodies, so a rule can demand "a
//!   finite-guard somewhere in the enclosing function".
//! * Annotations — the escape hatch: `// lint: allow(rule-name)` on the
//!   flagged line or the line above, or `// lint: allow-file(rule-name)`
//!   anywhere for a whole-file waiver (reserved for dedicated modules
//!   like `netsim::host_clock`).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One source file, preprocessed for rule matching.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path (e.g. `crates/netsim/src/sim.rs`).
    pub path: PathBuf,
    /// The owning crate's short name (`netsim`, `bench`, …; the root
    /// facade `src/` is `libra`).
    pub krate: String,
    /// Raw lines, as on disk.
    pub lines: Vec<String>,
    /// Lines with comments and string/char-literal contents blanked.
    pub code: Vec<String>,
    /// Per-line: inside a `#[cfg(test)]` item or `#[test]` function.
    pub is_test: Vec<bool>,
    file_allows: BTreeSet<String>,
    line_allows: BTreeMap<usize, BTreeSet<String>>,
    /// `(first_line, last_line)` of each `fn` body, in source order.
    fn_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Load from disk; `path` must be repo-relative for reporting.
    pub fn load(root: &Path, rel: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::from_source(rel, &text))
    }

    /// Build from in-memory source (fixtures and unit tests).
    pub fn from_source(rel: &Path, text: &str) -> SourceFile {
        let krate = crate_of(rel);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let code = blank_noncode(text);
        debug_assert_eq!(lines.len(), code.len());
        let mut is_test = test_mask(&code);
        // Integration-test targets (any `tests/` path component) are test
        // code in their entirety — `#[test]` fns plus their helpers.
        if rel.components().any(|c| c.as_os_str() == "tests") {
            is_test.iter_mut().for_each(|t| *t = true);
        }
        let (file_allows, line_allows) = parse_annotations(&lines);
        let fn_spans = fn_spans(&code);
        SourceFile {
            path: rel.to_path_buf(),
            krate,
            lines,
            code,
            is_test,
            file_allows,
            line_allows,
            fn_spans,
        }
    }

    /// True when `name` is waived at `line` (file-level, same line, or
    /// the line directly above).
    pub fn allowed(&self, line: usize, name: &str) -> bool {
        if self.file_allows.contains(name) {
            return true;
        }
        let hit = |l: usize| self.line_allows.get(&l).is_some_and(|s| s.contains(name));
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// The innermost `fn` body containing `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<(usize, usize)> {
        self.fn_spans
            .iter()
            .filter(|&&(s, e)| s <= line && line <= e)
            .max_by_key(|&&(s, _)| s)
            .copied()
    }

    /// True when the file is a crate's library root (`src/lib.rs`).
    pub fn is_lib_root(&self) -> bool {
        self.path.ends_with(Path::new("src/lib.rs"))
    }

    /// True when the file is a standalone binary target (`src/bin/*.rs`
    /// or `src/main.rs`) — these are separate compilation targets that a
    /// `#![deny]` in the crate's `lib.rs` does *not* cover.
    pub fn is_bin_target(&self) -> bool {
        let s = self.path.to_string_lossy();
        s.contains("/src/bin/") || s.ends_with("/src/main.rs")
    }
}

/// The crate short-name a repo-relative path belongs to.
fn crate_of(rel: &Path) -> String {
    let mut parts = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match parts.next().as_deref() {
        Some("crates") => parts.next().map_or_else(String::new, |s| s.into_owned()),
        Some("src") => "libra".to_string(),
        _ => String::new(),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blank comments and the contents of string/char literals to spaces,
/// preserving line structure, so rules only ever match real code.
fn blank_noncode(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut line = String::new();
    let mut state = Lex::Normal;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            // Line comments end at EOL, and real char literals are
            // single-line: resetting `Char` here keeps an unterminated
            // `'` from swallowing later lines (and from letting a later
            // quote "close" it, which would leave a dangling shell the
            // tokenizer would mis-pair).
            if state == Lex::LineComment || state == Lex::Char {
                state = Lex::Normal;
            }
            out.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            Lex::Normal => match c {
                '/' if next == Some('/') => {
                    state = Lex::LineComment;
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = Lex::BlockComment(1);
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = Lex::Str;
                    line.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            line.push(' ');
                        }
                        state = Lex::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    line.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: 'x' / '\n' are literals,
                    // 'a in `&'a T` is not.
                    let is_char =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char {
                        state = Lex::Char;
                        line.push('\'');
                    } else {
                        line.push(' ');
                    }
                }
                _ => line.push(c),
            },
            Lex::LineComment => line.push(' '),
            Lex::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        Lex::Normal
                    } else {
                        Lex::BlockComment(depth - 1)
                    };
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = Lex::BlockComment(depth + 1);
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                line.push(' ');
            }
            Lex::Str => match c {
                '\\' => {
                    if next == Some('\n') {
                        // Line-continuation escape: keep line structure.
                        line.push(' ');
                        out.push(std::mem::take(&mut line));
                        i += 2;
                        continue;
                    }
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = Lex::Normal;
                    line.push('"');
                }
                _ => line.push(' '),
            },
            Lex::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            line.push(' ');
                        }
                        state = Lex::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                line.push(' ');
            }
            Lex::Char => match c {
                '\\' => {
                    if next == Some('\n') {
                        // `'\` at EOL: char literals are single-line,
                        // so bail to Normal and keep the line break.
                        state = Lex::Normal;
                        line.push(' ');
                        i += 1;
                        continue;
                    }
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    state = Lex::Normal;
                    line.push('\'');
                }
                _ => line.push(' '),
            },
        }
        i += 1;
    }
    if !text.is_empty() && !text.ends_with('\n') {
        out.push(line);
    }
    out
}

/// Mark lines inside `#[cfg(test)]` items and `#[test]` functions.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i32 = 0;
    // Depths at which an open test region's body starts.
    let mut regions: Vec<i32> = Vec::new();
    let mut pending = false;
    for (idx, line) in code.iter().enumerate() {
        if line.contains("#[cfg(test)]") || line.contains("#[test]") {
            pending = true;
        }
        mask[idx] = pending || !regions.is_empty();
        let mut saw_brace = false;
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    saw_brace = true;
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` — attribute on a braceless item.
        if pending && !saw_brace && line.trim_end().ends_with(';') {
            pending = false;
        }
    }
    mask
}

/// Parse `lint: allow(...)` / `lint: allow-file(...)` escape hatches
/// from the raw lines (they live in comments).
fn parse_annotations(lines: &[String]) -> (BTreeSet<String>, BTreeMap<usize, BTreeSet<String>>) {
    let mut file = BTreeSet::new();
    let mut per_line: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (idx, line) in lines.iter().enumerate() {
        for (marker, file_scope) in [("lint: allow-file(", true), ("lint: allow(", false)] {
            let Some(pos) = line.find(marker) else {
                continue;
            };
            let rest = &line[pos + marker.len()..];
            let Some(end) = rest.find(')') else { continue };
            for name in rest[..end].split(',') {
                let name = name.trim().to_string();
                if name.is_empty() {
                    continue;
                }
                if file_scope {
                    file.insert(name);
                } else {
                    per_line.entry(idx).or_default().insert(name);
                }
            }
        }
    }
    (file, per_line)
}

/// Locate `fn` bodies by brace tracking over the blanked text.
fn fn_spans(code: &[String]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut depth: i32 = 0;
    // (start_line, body_depth) of fns whose body is currently open.
    let mut open: Vec<(usize, i32)> = Vec::new();
    // A `fn` header seen, body brace not yet reached.
    let mut header: Option<usize> = None;
    for (idx, line) in code.iter().enumerate() {
        if header.is_none() && find_fn_token(line).is_some() {
            header = Some(idx);
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(start) = header.take() {
                        open.push((start, depth));
                    }
                }
                '}' => {
                    if let Some(&(start, d)) = open.last() {
                        if d == depth {
                            open.pop();
                            spans.push((start, idx));
                        }
                    }
                    depth -= 1;
                }
                ';' if header.is_some() => {
                    // Trait method signature — no body.
                    header = None;
                }
                _ => {}
            }
        }
    }
    spans.sort_unstable();
    spans
}

/// The byte offset of a standalone `fn` keyword on `line`, if any.
pub(crate) fn find_fn_token(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find("fn ") {
        let pos = from + rel;
        let prev_ok =
            pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        if prev_ok {
            return Some(pos);
        }
        from = pos + 3;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, text: &str) -> SourceFile {
        SourceFile::from_source(Path::new(path), text)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = sf(
            "crates/demo/src/a.rs",
            "let x = \"std::time::Instant\"; // std::time::Instant\nlet y = 1; /* HashMap */ let z = 2;\n",
        );
        assert!(!f.code[0].contains("std::time"));
        assert!(f.code[0].contains("let x ="));
        assert!(!f.code[1].contains("HashMap"));
        assert!(f.code[1].contains("let z = 2;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = sf(
            "crates/demo/src/a.rs",
            "fn f<'a>(x: &'a str) -> char { 'x' }\nlet still_code = 1;\n",
        );
        assert!(f.code[1].contains("still_code"));
        assert!(!f.code[0].contains('x') || !f.code[0].contains("'x'"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = sf(
            "crates/demo/src/a.rs",
            "let p = r#\"thread_rng inside\"#; after();\n",
        );
        assert!(!f.code[0].contains("thread_rng"));
        assert!(f.code[0].contains("after();"));
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let f = sf(
            "crates/demo/src/a.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { body(); }\n}\nfn prod2() {}\n",
        );
        assert!(!f.is_test[0]);
        assert!(f.is_test[2] && f.is_test[4] && f.is_test[5]);
        assert!(!f.is_test[6]);
    }

    #[test]
    fn annotations_apply_to_next_line_and_file() {
        let f = sf(
            "crates/demo/src/a.rs",
            "// lint: allow(host_clock)\nlet t = now();\nlet u = later();\n",
        );
        assert!(f.allowed(1, "host_clock"));
        assert!(!f.allowed(2, "host_clock"));
        let g = sf(
            "crates/demo/src/a.rs",
            "// lint: allow-file(host_clock)\nfn f() {}\nfn g() {}\n",
        );
        assert!(g.allowed(2, "host_clock"));
    }

    #[test]
    fn enclosing_fn_finds_innermost_body() {
        let f = sf(
            "crates/demo/src/a.rs",
            "fn outer() {\n    helper();\n    fn inner() {\n        body();\n    }\n}\n",
        );
        let (s, _) = f.enclosing_fn(3).expect("inner span");
        assert_eq!(s, 2);
        let (s, e) = f.enclosing_fn(1).expect("outer span");
        assert_eq!((s, e), (0, 5));
    }

    #[test]
    fn integration_test_targets_are_fully_masked() {
        let f = sf(
            "crates/bench/tests/policy_server.rs",
            "fn helper() { now(); }\n#[test]\nfn t() { helper(); }\n",
        );
        assert!(f.is_test.iter().all(|&t| t));
        let g = sf("crates/bench/src/sweep.rs", "fn helper() { now(); }\n");
        assert!(!g.is_test[0]);
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of(Path::new("crates/netsim/src/sim.rs")), "netsim");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "libra");
    }

    #[test]
    fn bin_targets_are_recognized() {
        let f = sf("crates/bench/src/bin/fig01.rs", "fn main() {}\n");
        assert!(f.is_bin_target());
        let g = sf("crates/bench/src/lib.rs", "\n");
        assert!(g.is_lib_root() && !g.is_bin_target());
    }
}
