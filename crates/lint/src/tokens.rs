// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).

//! The token layer: blanked source → a flat, line-addressed token
//! stream.
//!
//! [`tokenize_lines`] runs over [`crate::SourceFile::code`] — the view
//! with comments and string/char contents already blanked to spaces —
//! so no token ever carries commented-out or quoted text. That makes
//! the stream safe ground for the item parser ([`crate::items`]): a
//! `fn` keyword in a doc example or a `.lock()` inside a string can
//! never mint a symbol or a call edge. The tokenizer is deliberately
//! coarse (identifiers, numbers, blanked string/char shells, single
//! punctuation) — exactly the granularity the item grammar consumes,
//! and nothing a full lexer would need (no float disambiguation beyond
//! `1.max(2)`, no compound operators).
//!
//! Determinism: tokens come back in strict `(line, col)` order, a pure
//! function of the input text — the property the analyzer-determinism
//! test pins alongside the symbol graph.

/// What a token is; just enough classification for item parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `lock`, …).
    Ident,
    /// Numeric literal (integers, floats, suffixed forms).
    Num,
    /// A (blanked) string literal shell: `"   "`.
    Str,
    /// A (blanked) char literal shell: `' '`.
    Char,
    /// One punctuation character.
    Punct,
}

/// One token with its position in the blanked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text. For `Str`/`Char` the contents are spaces (the
    /// blanking preserved only the delimiters); for `Punct` a single
    /// character.
    pub text: String,
    /// 0-based line index into the source the lines came from.
    pub line: usize,
    /// 0-based character column of the token's first character.
    pub col: usize,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenize blanked source lines (see [`crate::SourceFile::code`]).
///
/// Never panics, for any input: unterminated literals simply consume to
/// end of line/file. String shells may span lines (the blanking keeps a
/// multi-line literal's closing quote on its last line); the `Str`
/// token is emitted at the opening quote and carries only the first
/// line's shell.
pub fn tokenize_lines(code: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    // A multi-line (blanked) string literal leaves us inside the shell
    // across line boundaries; skip to its closing quote.
    let mut in_str = false;
    for (line_no, line) in code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        if in_str {
            match chars.iter().position(|&c| c == '"') {
                Some(close) => {
                    in_str = false;
                    i = close + 1;
                }
                None => continue,
            }
        }
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let start = i;
            if c == '_' || c.is_alphabetic() {
                i += 1;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    col: start,
                });
            } else if c.is_ascii_digit() {
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d == '_' || d.is_alphanumeric() {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && !chars[start..i].contains(&'.')
                    {
                        // `1.5` continues the number; `1.max(2)` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Num,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    col: start,
                });
            } else if c == '"' {
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                if i < chars.len() {
                    i += 1; // closing quote on this line
                } else {
                    in_str = true; // shell continues on a later line
                }
                out.push(Token {
                    kind: TokenKind::Str,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    col: start,
                });
            } else if c == '\'' {
                // Blanked char-literal shell (lifetimes lost their quote
                // during blanking, so a surviving quote is a literal).
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                if i < chars.len() {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Char,
                    text: chars[start..i].iter().collect(),
                    line: line_no,
                    col: start,
                });
            } else {
                i += 1;
                out.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line: line_no,
                    col: start,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;
    use std::path::Path;

    fn toks(text: &str) -> Vec<Token> {
        let f = SourceFile::from_source(Path::new("crates/demo/src/a.rs"), text);
        tokenize_lines(&f.code)
    }

    #[test]
    fn idents_numbers_and_punct() {
        let t = toks("fn add(a: u32) -> u32 { a + 1_000 }\n");
        let idents: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "add", "a", "u32", "u32", "a"]);
        assert!(t
            .iter()
            .any(|t| t.kind == TokenKind::Num && t.text == "1_000"));
        assert!(t.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn comments_and_strings_yield_no_idents() {
        let t = toks("let x = \"fn hidden\"; // fn commented\n/* fn blocked */ let y = 2;\n");
        assert!(!t.iter().any(|t| t.is_ident("hidden")));
        assert!(!t.iter().any(|t| t.is_ident("commented")));
        assert!(!t.iter().any(|t| t.is_ident("blocked")));
        assert_eq!(t.iter().filter(|t| t.is_ident("fn")).count(), 0);
        assert!(t.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn float_vs_method_call_on_number() {
        let t = toks("let a = 1.5; let b = 1.max(2);\n");
        assert!(t
            .iter()
            .any(|t| t.kind == TokenKind::Num && t.text == "1.5"));
        assert!(t.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn multiline_string_shell_is_skipped() {
        let t = toks("let s = \"first\nsecond fn not_a_sym\";\nlet after = 1;\n");
        assert!(!t.iter().any(|t| t.is_ident("not_a_sym")));
        assert!(t.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn positions_are_line_col_ordered() {
        let t = toks("fn a() {}\nfn b() {}\n");
        let mut prev = (0usize, 0usize);
        for tok in &t {
            assert!((tok.line, tok.col) >= prev);
            prev = (tok.line, tok.col);
        }
        assert!(t.iter().any(|t| t.is_ident("b") && t.line == 1));
    }
}
