//! Fixture self-tests and the whole-tree smoke test.
//!
//! Every rule has at least one `bad_*` fixture (must flag exactly that
//! rule) and one `good_*` fixture (must be clean), so a rule that stops
//! firing — or starts over-firing — breaks this suite before it breaks
//! CI on a real regression. Fixtures live under `tests/fixtures/` and
//! carry their *virtual* repo path on the first line
//! (`//! lint-fixture: crates/...`), because most rules are scoped by
//! crate or file path.

use libra_lint::{find_workspace_root, lint_file, lint_tree, SourceFile};
use std::path::{Path, PathBuf};

/// `(fixture file, rule id every finding must carry)`.
const BAD: &[(&str, &str)] = &[
    ("bad_host_clock.rs", "host-clock"),
    ("bad_unordered_map.rs", "unordered-map"),
    ("bad_unwrap.rs", "unwrap-audit"),
    ("bad_missing_deny.rs", "unwrap-audit"),
    ("bad_float_guard.rs", "float-guard"),
    ("bad_threads.rs", "thread-discipline"),
    ("bad_entropy.rs", "entropy"),
    ("bad_bounded_retry.rs", "bounded-retry"),
    ("bad_per_packet_alloc.rs", "no-per-packet-alloc"),
    ("bad_lock_across_call.rs", "lock-across-call"),
    ("bad_fma_determinism.rs", "fma-determinism"),
    ("bad_unsafe_audit.rs", "unsafe-audit"),
    ("bad_nondeterminism_taint.rs", "nondeterminism-taint"),
];

const GOOD: &[&str] = &[
    "good_host_clock.rs",
    "good_unordered_map.rs",
    "good_unwrap.rs",
    "good_float_guard.rs",
    "good_threads.rs",
    "good_entropy.rs",
    "good_bounded_retry.rs",
    "good_per_packet_alloc.rs",
    "good_lock_across_call.rs",
    "good_fma_determinism.rs",
    "good_unsafe_audit.rs",
    "good_nondeterminism_taint.rs",
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Load a fixture, resolving its virtual path from the first-line
/// `//! lint-fixture:` marker.
fn load_fixture(name: &str) -> SourceFile {
    let text = std::fs::read_to_string(fixtures_dir().join(name))
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let first = text.lines().next().unwrap_or_default();
    let virt = first
        .strip_prefix("//! lint-fixture: ")
        .unwrap_or_else(|| panic!("fixture {name} lacks a `//! lint-fixture: <path>` first line"));
    SourceFile::from_source(Path::new(virt.trim()), &text)
}

#[test]
fn bad_fixtures_each_flag_their_rule() {
    for &(name, rule) in BAD {
        let findings = lint_file(load_fixture(name));
        assert!(
            !findings.is_empty(),
            "{name}: expected at least one `{rule}` finding, got none"
        );
        for f in &findings {
            assert_eq!(
                f.rule, rule,
                "{name}: stray `{}` finding (expected only `{rule}`): {f}",
                f.rule
            );
        }
    }
}

#[test]
fn good_fixtures_are_clean() {
    for &name in GOOD {
        let findings = lint_file(load_fixture(name));
        assert!(
            findings.is_empty(),
            "{name}: expected clean, got:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn every_rule_has_bad_and_good_coverage() {
    let ids: Vec<&str> = libra_lint::all_rules()
        .iter()
        .map(|r| r.id())
        .chain(libra_lint::workspace_rules().iter().map(|r| r.id()))
        .collect();
    for id in ids {
        assert!(
            BAD.iter().any(|&(_, r)| r == id),
            "rule `{id}` has no bad fixture"
        );
    }
    // Fixture lists stay in sync with the files actually on disk.
    for name in BAD.iter().map(|&(n, _)| n).chain(GOOD.iter().copied()) {
        assert!(
            fixtures_dir().join(name).is_file(),
            "fixture listed but missing on disk: {name}"
        );
    }
}

/// The gate the binary enforces, as a test: the tree at HEAD is clean.
#[test]
fn whole_tree_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let findings = lint_tree(&root).expect("tree walk");
    assert!(
        findings.is_empty(),
        "lint findings on HEAD:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
