//! Property tests for the token layer: the tokenizer must survive
//! arbitrary comment/string nesting without panicking, agree with
//! [`SourceFile`] blanking token-for-token, and never leak text that
//! the blanking hid.
//!
//! Sources are assembled from fragment alphabets rather than raw random
//! bytes so the cases concentrate on the adversarial part of the space:
//! unbalanced block comments, stray quotes, raw strings, escapes and
//! line continuations.

use libra_lint::tokens::{tokenize_lines, Token, TokenKind};
use libra_lint::SourceFile;
use proptest::prelude::*;
use std::path::Path;

/// Chaotic fragments: deliberately unbalanced delimiters allowed.
const CHAOS: &[&str] = &[
    "fn alpha() { beta(); }\n",
    "// line comment\n",
    "/* open block ",
    " close */ ",
    "/*",
    "*/",
    "let s = \"str body\";\n",
    "\"",
    "let r = r#\"raw body\"#;\n",
    "r\"",
    "'x'",
    "'",
    "let c = '\\n';\n",
    "\\",
    "ident_ok ",
    "1.5 1.max(2) 1_000 ",
    "<'a, T>\n",
    "#\n",
    "\n",
];

/// Well-formed fragments: every fragment is self-contained, so the
/// lexer is in the Normal state at every boundary and anything tagged
/// `HIDDEN…` is provably comment/string interior.
const FORMED: &[&str] = &[
    "fn alpha() { beta(); }\n",
    "// HIDDENLINE fn bogus() {}\n",
    "/* HIDDENBLOCK /* nested */ still HIDDENBLOCK */\n",
    "let s = \"HIDDENSTR .lock() unsafe\";\n",
    "let r = r#\"HIDDENRAW \"quoted\" body\"#;\n",
    "let e = \"esc \\\" HIDDENSTR\";\n",
    "let c = 'h';\n",
    "visible_ident();\n",
    "let n = 42;\n",
];

fn assemble(alphabet: &[&str], picks: &[u8]) -> String {
    picks
        .iter()
        .map(|&p| alphabet[p as usize % alphabet.len()])
        .collect()
}

/// Shared structural checks: (line, col) order, positions inside the
/// blanked code, and Ident/Num/Punct text matching the code exactly.
fn check_structure(file: &SourceFile, tokens: &[Token]) {
    let mut prev = (0usize, 0usize);
    for t in tokens {
        assert!((t.line, t.col) >= prev, "tokens out of (line, col) order");
        prev = (t.line, t.col);
        let line: Vec<char> = file.code[t.line].chars().collect();
        assert!(t.col < line.len(), "token col outside its line");
        if matches!(t.kind, TokenKind::Ident | TokenKind::Num | TokenKind::Punct) {
            let got: String = line[t.col..(t.col + t.text.chars().count()).min(line.len())]
                .iter()
                .collect();
            assert_eq!(got, t.text, "token text disagrees with blanked code");
        }
    }
}

/// Every word character surviving the blanking is covered by an
/// Ident/Num token — the tokenizer drops nothing the rules could need.
fn check_coverage(file: &SourceFile, tokens: &[Token]) {
    for (ln, line) in file.code.iter().enumerate() {
        for (col, c) in line.chars().enumerate() {
            if !(c.is_alphanumeric() || c == '_') {
                continue;
            }
            let covered = tokens.iter().any(|t| {
                matches!(t.kind, TokenKind::Ident | TokenKind::Num)
                    && t.line == ln
                    && t.col <= col
                    && col < t.col + t.text.chars().count()
            });
            assert!(
                covered,
                "word char {c:?} at {ln}:{col} not covered by any token"
            );
        }
    }
}

/// Pinned case the chaotic proptest originally shrank to: an
/// unterminated `'` on one line must not leave the blanker in the
/// char-literal state, or a later `'x'` pairs against it and the
/// dangling quote makes the tokenizer swallow the rest of the line.
#[test]
fn unterminated_char_state_does_not_leak_across_lines() {
    let text = "let bad = '\\x oops\n*/'x' fn alpha() { beta(); }\n";
    let file = SourceFile::from_source(Path::new("crates/demo/src/p.rs"), text);
    let tokens = tokenize_lines(&file.code);
    check_structure(&file, &tokens);
    check_coverage(&file, &tokens);
    for name in ["fn", "alpha", "beta"] {
        assert!(tokens.iter().any(|t| t.is_ident(name)), "lost ident {name}");
    }
}

proptest! {
    /// Arbitrary (unbalanced) nesting: never panics, and the stream
    /// stays position-exact and coverage-complete w.r.t. the blanking.
    #[test]
    fn chaotic_nesting_round_trips(picks in proptest::collection::vec(0u8..255, 0..60)) {
        let text = assemble(CHAOS, &picks);
        let file = SourceFile::from_source(Path::new("crates/demo/src/p.rs"), &text);
        prop_assert_eq!(file.lines.len(), file.code.len());
        let tokens = tokenize_lines(&file.code);
        check_structure(&file, &tokens);
        check_coverage(&file, &tokens);
    }

    /// Well-formed nesting: comment and string interiors (everything
    /// tagged `HIDDEN…`) never surface as token text, while real code
    /// idents always do.
    #[test]
    fn masked_text_never_leaks(picks in proptest::collection::vec(0u8..255, 1..60)) {
        let text = assemble(FORMED, &picks);
        let file = SourceFile::from_source(Path::new("crates/demo/src/p.rs"), &text);
        let tokens = tokenize_lines(&file.code);
        check_structure(&file, &tokens);
        for t in &tokens {
            prop_assert!(
                !t.text.contains("HIDDEN"),
                "masked text leaked into a token: {:?}",
                t
            );
        }
        if picks.iter().any(|&p| p as usize % FORMED.len() == 7) {
            prop_assert!(
                tokens.iter().any(|t| t.is_ident("visible_ident")),
                "real code ident lost by the tokenizer"
            );
        }
    }
}
