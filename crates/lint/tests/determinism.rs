//! Analyzer-determinism guard: the lint findings, the symbol graph,
//! and the unsafe inventory must be a pure function of the source
//! *set* — byte-identical across repeated runs and invariant under the
//! order files are fed in. This is the same contract the simulator
//! holds itself to (runs are a pure function of config + seed), applied
//! to the analyzer: CI diffs `dev/unsafe_inventory.md` against a fresh
//! emission, which is only sound if emission is deterministic.

use libra_lint::{
    find_workspace_root, lint_sources, source_files, unsafe_inventory, Finding, SourceFile,
    Workspace,
};
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

fn load_all(root: &Path) -> Vec<SourceFile> {
    source_files(root)
        .expect("workspace sources enumerate")
        .iter()
        .map(|rel| SourceFile::load(root, rel).expect("covered source loads"))
        .collect()
}

fn render(findings: &[Finding]) -> String {
    findings.iter().map(|f| format!("{f}\n")).collect()
}

/// A deterministic "shuffle": reverse, then rotate by a third. Enough
/// to derange every position without pulling in an RNG.
fn scramble(mut sources: Vec<SourceFile>) -> Vec<SourceFile> {
    sources.reverse();
    let by = sources.len() / 3;
    sources.rotate_left(by);
    sources
}

#[test]
fn findings_are_byte_identical_across_runs_and_input_orders() {
    let root = root();
    let baseline = render(&lint_sources(load_all(&root)));
    let rerun = render(&lint_sources(load_all(&root)));
    assert_eq!(baseline, rerun, "two identical runs disagreed");
    let scrambled = render(&lint_sources(scramble(load_all(&root))));
    assert_eq!(
        baseline, scrambled,
        "findings depend on the order sources were fed in"
    );
}

#[test]
fn unsafe_inventory_is_byte_identical_across_runs_and_input_orders() {
    let root = root();
    let baseline = unsafe_inventory(&Workspace::from_sources(load_all(&root)));
    let rerun = unsafe_inventory(&Workspace::from_sources(load_all(&root)));
    assert_eq!(baseline, rerun, "two identical emissions disagreed");
    let scrambled = unsafe_inventory(&Workspace::from_sources(scramble(load_all(&root))));
    assert_eq!(
        baseline, scrambled,
        "inventory depends on the order sources were fed in"
    );
}

/// The committed inventory matches a fresh emission — the same check
/// CI runs via `--emit-unsafe-inventory` + `git diff`, pinned here so
/// `cargo test` alone catches drift.
#[test]
fn committed_unsafe_inventory_is_fresh() {
    let root = root();
    let committed = std::fs::read_to_string(root.join("dev/unsafe_inventory.md"))
        .expect("dev/unsafe_inventory.md is committed");
    let fresh = unsafe_inventory(&Workspace::from_sources(load_all(&root)));
    assert_eq!(
        committed, fresh,
        "dev/unsafe_inventory.md is stale: run `cargo run -p libra-lint -- --emit-unsafe-inventory`"
    );
}

/// The symbol graph's node order is pinned (path, then signature line),
/// so downstream consumers (witness chains, inventory rows) inherit
/// determinism from it.
#[test]
fn symbol_graph_node_order_is_sorted() {
    let ws = Workspace::from_sources(load_all(&root()));
    let keys: Vec<(String, usize)> = ws
        .graph
        .nodes
        .iter()
        .map(|n| {
            let file = &ws.files[n.file];
            (
                file.source.path.to_string_lossy().into_owned(),
                file.items.fns[n.item].sig_line,
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "graph nodes are not in (path, line) order");
}
