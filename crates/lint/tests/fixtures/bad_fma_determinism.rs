//! lint-fixture: crates/nn/src/fastpath.rs
//! (fixture) A fused multiply-add in a kernel crate: `mul_add` rounds
//! once where the scalar kernel rounds twice, silently breaking the
//! batched-vs-sequential bit-identity contract. `fma-determinism` must
//! flag it.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = 0.0;
    for i in 0..n {
        acc = a[i].mul_add(b[i], acc);
    }
    acc
}
