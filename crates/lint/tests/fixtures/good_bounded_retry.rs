//! lint-fixture: crates/bench/src/demo.rs
//! Expect: clean — retry loops either iterate an explicit attempt
//! range, compare a counter against a limit, or carry an audited
//! waiver.

pub fn range_bounded(max_attempts: u32) -> bool {
    for attempt in 1..=max_attempts {
        if try_once(attempt) {
            return true;
        }
        backoff_pause();
    }
    false
}

pub fn counter_bounded(max_attempts: u32) {
    let mut attempts = 0;
    loop {
        attempts += 1;
        if attempts >= max_attempts || try_once(attempts) {
            return;
        }
        backoff_pause();
    }
}

pub fn audited_poll() {
    // lint: allow(bounded-retry) — bounded by the harness-level timeout
    loop {
        if try_once(0) {
            return;
        }
        backoff_pause();
    }
}

fn try_once(_attempt: u32) -> bool {
    true
}

fn backoff_pause() {}
