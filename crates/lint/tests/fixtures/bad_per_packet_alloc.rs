//! lint-fixture: crates/netsim/src/demo.rs
//! Expect: `no-per-packet-alloc` — heap allocation inside a per-packet
//! hot function (the event loop enters `on_ack_packet` once per ACK).

pub struct Demo;

impl Demo {
    pub fn on_ack_packet(&mut self) -> Vec<u64> {
        let mut losses = Vec::new();
        losses.push(1);
        losses
    }
}
