//! lint-fixture: crates/types/src/utility.rs
//! Expect: `float-guard` — powf and a variable divisor with no
//! finite-guard evidence anywhere in the enclosing function.

pub fn throughput_term(x: f64, alpha: f64, scale: f64) -> f64 {
    x.powf(alpha) / scale
}
