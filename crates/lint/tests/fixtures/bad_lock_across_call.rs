//! lint-fixture: crates/bench/src/model_cache.rs
//! (fixture) The pre-PR8 `ModelStore::get_or_train` shape: the cache
//! mutex stays locked across a whole training run, serializing every
//! sweep worker behind one lock. `lock-across-call` must flag the
//! training call inside the guard's live range.

use std::collections::BTreeMap;
use std::sync::Mutex;

pub struct Store {
    cache: Mutex<BTreeMap<String, Vec<u64>>>,
}

impl Store {
    pub fn get_or_train(&self, key: &str) -> Vec<u64> {
        let mut cache = self.cache.lock().expect("model cache poisoned");
        cache
            .entry(key.to_string())
            .or_insert_with(|| self.load_or_train(key))
            .clone()
    }

    fn load_or_train(&self, key: &str) -> Vec<u64> {
        train_weights(key)
    }
}

fn train_weights(key: &str) -> Vec<u64> {
    vec![key.len() as u64]
}
