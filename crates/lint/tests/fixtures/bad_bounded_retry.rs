//! lint-fixture: crates/bench/src/demo.rs
//! Expect: `bounded-retry` — an unbounded loop that retries with
//! backoff and never bounds its attempts.

pub fn poll_until_up() {
    loop {
        if try_once() {
            return;
        }
        backoff_pause();
    }
}

fn try_once() -> bool {
    false
}

fn backoff_pause() {}
