//! lint-fixture: crates/bench/src/sweep.rs
//! Clean: bench/src/sweep.rs is the one sanctioned home for threads
//! (the deterministic index-ordered runner).

pub fn run() {
    let h = std::thread::spawn(|| 42);
    drop(h);
}
