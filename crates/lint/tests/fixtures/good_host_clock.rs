//! lint-fixture: crates/bench/src/demo.rs
//! Clean: the wall-clock read carries an audited waiver.

pub fn measure() -> u128 {
    // lint: allow(host_clock)
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
