//! lint-fixture: crates/rl/src/demo.rs
//! Expect: `entropy` — ambient randomness breaks (configuration, seed)
//! purity.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
