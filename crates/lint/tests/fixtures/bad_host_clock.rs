//! lint-fixture: crates/bench/src/demo.rs
//! Expect: `host-clock` — wall-clock read with no waiver.

pub fn measure() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
