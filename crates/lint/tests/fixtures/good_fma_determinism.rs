//! lint-fixture: crates/nn/src/fastpath.rs
//! (fixture) The bit-identity-preserving form: separate multiply then
//! add, one rounding per operation, ascending index order — the exact
//! addend sequence every batched variant must reproduce.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = 0.0;
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}
