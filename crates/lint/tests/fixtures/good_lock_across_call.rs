//! lint-fixture: crates/bench/src/model_cache.rs
//! (fixture) The post-PR8 shape: the guard dies inside the inner block
//! before any training runs, so workers only contend for the map
//! lookup, never for the training itself.

use std::collections::BTreeMap;
use std::sync::Mutex;

pub struct Store {
    cache: Mutex<BTreeMap<String, Vec<u64>>>,
}

impl Store {
    pub fn get_or_train(&self, key: &str) -> Vec<u64> {
        let cached = {
            let cache = self.cache.lock().expect("model cache poisoned");
            cache.get(key).cloned()
        };
        match cached {
            Some(w) => w,
            None => {
                let w = self.load_or_train(key);
                let mut cache = self.cache.lock().expect("model cache poisoned");
                cache.insert(key.to_string(), w.clone());
                w
            }
        }
    }

    fn load_or_train(&self, key: &str) -> Vec<u64> {
        train_weights(key)
    }
}

fn train_weights(key: &str) -> Vec<u64> {
    vec![key.len() as u64]
}
