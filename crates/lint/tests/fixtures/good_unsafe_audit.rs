//! lint-fixture: crates/nn/src/rawsum.rs
//! (fixture) Every `unsafe` site carries an adjacent `// SAFETY:`
//! justification — above the block/fn or trailing on the same line —
//! so `unsafe-audit` stays quiet and the inventory rows are complete.

pub fn fast_sum(v: &[u64]) -> u64 {
    // SAFETY: v is a valid slice; core_sum only reads v.len() elements.
    unsafe { core_sum(v) }
}

/// # Safety
/// Caller must pass a valid slice.
// SAFETY: pointer arithmetic below stays within v's bounds by the loop
// count; declared unsafe only to document the raw-pointer contract.
unsafe fn core_sum(v: &[u64]) -> u64 {
    let mut acc = 0u64;
    let mut p = v.as_ptr();
    for _ in 0..v.len() {
        acc = acc.wrapping_add(unsafe { *p }); // SAFETY: p < v.as_ptr() + v.len()
        p = unsafe { p.add(1) }; // SAFETY: one-past-end is a valid offset
    }
    acc
}
