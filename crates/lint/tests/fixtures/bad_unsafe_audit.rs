//! lint-fixture: crates/nn/src/rawsum.rs
//! (fixture) `unsafe` without justification: both the block and the
//! declared `unsafe fn` lack an adjacent `// SAFETY:` comment, so
//! `unsafe-audit` must flag both sites (a doc `# Safety` section
//! documents the caller's obligation, not why this site meets it).

pub fn fast_sum(v: &[u64]) -> u64 {
    unsafe { core_sum(v) }
}

/// # Safety
/// Caller must pass a non-empty slice.
unsafe fn core_sum(v: &[u64]) -> u64 {
    let mut acc = 0u64;
    let mut p = v.as_ptr();
    for _ in 0..v.len() {
        acc = acc.wrapping_add(unsafe { *p });
        p = unsafe { p.add(1) };
    }
    acc
}
