//! lint-fixture: crates/bench/src/demo.rs
//! Expect: `unordered-map` — HashMap in an output-producing crate.

use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> HashMap<u32, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
