//! lint-fixture: crates/rl/src/demo.rs
//! Clean: randomness drawn from the seeded, forkable DetRng stream.

use libra_types::DetRng;

pub fn jitter(rng: &mut DetRng) -> f64 {
    rng.next_f64()
}
