//! lint-fixture: crates/bench/src/demo.rs
//! Clean: ordered collection, deterministic iteration.

use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
