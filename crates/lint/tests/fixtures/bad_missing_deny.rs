//! lint-fixture: crates/demo/src/lib.rs
//! Expect: `unwrap-audit` — crate root without the unwrap deny header.

pub fn noop() {}
