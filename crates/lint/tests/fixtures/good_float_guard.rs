//! lint-fixture: crates/types/src/utility.rs
//! Clean: the enclosing function carries finite-guard evidence.

pub fn throughput_term(x: f64, alpha: f64, scale: f64) -> f64 {
    if !x.is_finite() || scale <= 0.0 {
        return 0.0;
    }
    x.powf(alpha) / scale
}
