//! lint-fixture: crates/netsim/src/demo.rs
//! Expect: `thread-discipline` — thread creation outside the
//! deterministic sweep runner.

pub fn run() {
    let h = std::thread::spawn(|| 42);
    drop(h);
}
