//! lint-fixture: crates/netsim/src/demo.rs
//! Clean: hot functions use caller-owned scratch buffers; setup paths
//! may allocate freely; an audited cold branch inside a hot function
//! carries the waiver.

pub struct Demo {
    scratch: Vec<u64>,
}

impl Demo {
    pub fn new() -> Demo {
        // Setup path: allocation is fine outside the hot set.
        Demo {
            scratch: Vec::with_capacity(64),
        }
    }

    pub fn try_emit(&mut self, out: &mut Vec<u64>) {
        // Hot path: writes into the caller-owned buffer, no allocation.
        out.extend_from_slice(&self.scratch);
        self.scratch.clear();
    }

    pub fn dequeue(&mut self, poisoned: bool) -> Option<u64> {
        if poisoned {
            // Audited cold branch: runs once per fault window, not per
            // packet.
            // lint: allow(no-per-packet-alloc)
            let drained: Vec<u64> = Vec::new();
            drop(drained);
        }
        self.scratch.pop()
    }
}
