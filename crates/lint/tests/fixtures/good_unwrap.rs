//! lint-fixture: crates/demo/src/lib.rs
//! Clean: deny header present; the audited panic site uses `expect`
//! with an invariant message; test unwraps are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller passes a validated numeral")
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::parse("4"), "4".parse::<u64>().unwrap());
    }
}
