//! lint-fixture: crates/bench/src/report_glue.rs
//! (fixture) A clock read laundered through two helpers into a
//! serialized artifact. The read itself carries an audited
//! `host_clock` waiver — the *value* is still nondeterministic, and
//! `nondeterminism-taint` must follow it interprocedurally to the
//! `serde_json` sink.

pub fn stamp_ms() -> u64 {
    // lint: allow(host_clock) — (fixture) audited read, value still taints
    let t = std::time::SystemTime::now();
    t.elapsed().map_or(0, |d| d.as_millis() as u64)
}

fn launder() -> u64 {
    stamp_ms()
}

pub fn emit_report() -> String {
    let generated_at = launder();
    serde_json::to_string(&generated_at).expect("report row serializes")
}
