//! lint-fixture: crates/bench/src/bin/demo.rs
//! Expect: `unwrap-audit` — bare unwrap in non-test binary code (the
//! crate root's deny attribute does not reach bin targets).

pub fn parse(s: &str) -> u64 {
    s.parse().unwrap()
}
