//! lint-fixture: crates/bench/src/report_glue.rs
//! (fixture) The correct shape: the wall-clock value gates a local
//! abort decision and never flows into anything serialized, so the
//! source and the sink coexist with no taint path between them.

pub struct Report {
    pub rows: u64,
}

pub fn emit_report(report: &Report) -> String {
    serde_json::to_string(&report.rows).expect("report row serializes")
}

pub fn wall_budget_tripped(limit_ms: u64) -> bool {
    // lint: allow(host_clock) — (fixture) audited watchdog read
    let t0 = std::time::Instant::now();
    spin_once();
    (t0.elapsed().as_millis() as u64) > limit_ms
}

fn spin_once() {
    std::hint::spin_loop();
}
