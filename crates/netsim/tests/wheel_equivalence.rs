//! Wheel-vs-heap scheduler equivalence: the hierarchical timer wheel
//! must reproduce the binary heap's `(at, seq)` pop order *exactly*,
//! so the same scenario run under either backend is byte-identical.
//!
//! The in-crate `wheel` unit tests replay synthetic event streams; this
//! integration test replays whole simulations — multi-flow, AQM,
//! jitter, stochastic loss, fault injection (the merge-ack path) — and
//! fingerprints every report field down to float bit patterns.

use libra_netsim::{
    FaultKind, FaultPlan, FlowConfig, LinkConfig, QueueConfig, SchedulerKind, SimConfig, SimReport,
    Simulation,
};
use libra_types::{AckEvent, CongestionControl, Duration, Instant, LossEvent, Rate};
use std::fmt::Write as _;

/// A minimal AIMD responder: enough dynamics to exercise loss recovery,
/// RTO scheduling, and pacer wakes without pulling in a CCA crate.
struct MiniAimd {
    cwnd: f64,
}

impl CongestionControl for MiniAimd {
    fn name(&self) -> &'static str {
        "mini-aimd"
    }
    fn on_ack(&mut self, ev: &AckEvent) {
        self.cwnd += ev.bytes as f64 / 1500.0 / self.cwnd;
    }
    fn on_loss(&mut self, _: &LossEvent) {
        self.cwnd = (self.cwnd / 2.0).max(2.0);
    }
    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * 1500.0) as u64
    }
}

/// Byte-exact fingerprint of a report: integers in decimal, floats as
/// IEEE bit patterns (a formatting round-trip could mask a 1-ulp
/// divergence; bits cannot).
fn fingerprint(report: &SimReport) -> String {
    let mut s = String::new();
    let _ = write!(s, "dur={};", report.duration.nanos());
    for f in &report.flows {
        let _ = write!(
            s,
            "flow[{} sent={} delivered={} acked={} lost={} goodput={:016x} \
             loss_frac={:016x} p95={:016x} ecn={} rtt_n={} rtt_mean={:016x}",
            f.id.0,
            f.sent_bytes,
            f.delivered_bytes,
            f.acked_packets,
            f.lost_packets,
            f.avg_goodput.mbps().to_bits(),
            f.loss_fraction.to_bits(),
            f.rtt_p95_ms.to_bits(),
            f.ecn_echoes,
            f.rtt_ms.count(),
            f.rtt_ms.mean().to_bits(),
        );
        for &(t, v) in f.goodput_series.iter().chain(&f.rtt_series) {
            let _ = write!(s, " {:016x}:{:016x}", t.to_bits(), v.to_bits());
        }
        s.push_str("];");
    }
    let l = &report.link;
    let _ = write!(
        s,
        "link[util={:016x} meanq={:016x} tail={} stoch={} admitted={} dropped={} \
         dequeued={} aqm={} residual={}]",
        l.utilization.to_bits(),
        l.mean_queue_bytes.to_bits(),
        l.tail_drops,
        l.stochastic_drops,
        l.queue_admitted_bytes,
        l.queue_dropped_bytes,
        l.queue_dequeued_bytes,
        l.queue_aqm_dropped_bytes,
        l.queue_residual_bytes,
    );
    s
}

fn run_with(link: LinkConfig, flows: usize, secs: u64, seed: u64, kind: SchedulerKind) -> String {
    let until = Instant::from_secs(secs);
    let mut sim = Simulation::with_config(link, seed, SimConfig::default().with_scheduler(kind));
    for i in 0..flows {
        // Staggered starts so flow activations interleave with steady
        // traffic (distinct timer-wheel levels get exercised).
        let start = Instant::ZERO + Duration::from_millis(200 * i as u64);
        sim.add_flow(FlowConfig::new(
            Box::new(MiniAimd { cwnd: 10.0 }),
            start,
            until,
        ));
    }
    fingerprint(&sim.run(until))
}

fn assert_equivalent(name: &str, link: impl Fn() -> LinkConfig, flows: usize, secs: u64) {
    for seed in [1u64, 42, 9001] {
        let wheel = run_with(link(), flows, secs, seed, SchedulerKind::Wheel);
        let heap = run_with(link(), flows, secs, seed, SchedulerKind::Heap);
        assert_eq!(wheel, heap, "{name}: wheel/heap diverged at seed {seed}");
    }
}

#[test]
fn clean_droptail_runs_are_identical() {
    assert_equivalent(
        "droptail",
        || LinkConfig::constant(Rate::from_mbps(48.0), Duration::from_millis(40), 1.0),
        4,
        8,
    );
}

#[test]
fn codel_runs_are_identical() {
    assert_equivalent(
        "codel",
        || {
            LinkConfig::constant(Rate::from_mbps(24.0), Duration::from_millis(40), 4.0)
                .with_queue(QueueConfig::codel_default())
        },
        3,
        8,
    );
}

#[test]
fn jittered_lossy_runs_are_identical() {
    // ACK jitter arms the merge-ack path; stochastic loss adds
    // retransmission timers. Both schedulers must agree through it.
    assert_equivalent(
        "jitter+loss",
        || {
            let mut link =
                LinkConfig::constant(Rate::from_mbps(24.0), Duration::from_millis(60), 1.0);
            link.ack_jitter = Duration::from_millis(2);
            link.stochastic_loss = 0.005;
            link
        },
        3,
        8,
    );
}

#[test]
fn faulted_runs_are_identical() {
    // Reordering + duplication + a flap: the densest event soup the
    // simulator produces (held-back ACKs, duplicate deliveries, dead
    // link windows) — and the batched-ACK bookkeeping runs throughout.
    assert_equivalent(
        "faults",
        || {
            let faults = FaultPlan::default()
                .with(
                    Instant::from_secs(2),
                    Instant::from_secs(4),
                    FaultKind::Reorder {
                        probability: 0.1,
                        extra_delay: Duration::from_millis(8),
                    },
                )
                .with(
                    Instant::from_secs(3),
                    Instant::from_secs(5),
                    FaultKind::Duplicate { probability: 0.05 },
                )
                .with(
                    Instant::from_secs(6),
                    Instant::from_millis(6400),
                    FaultKind::LinkFlap,
                );
            LinkConfig::constant(Rate::from_mbps(36.0), Duration::from_millis(40), 1.0)
                .with_faults(faults)
        },
        4,
        8,
    );
}

#[test]
fn incast_fan_in_is_identical() {
    // 64 synchronized flows on a short-RTT link: deep event-queue
    // occupancy with heavy same-instant ties, the regime where a
    // tie-break bug between the schedulers would surface first.
    for seed in [7u64, 77] {
        let link = || LinkConfig::constant(Rate::from_mbps(400.0), Duration::from_millis(4), 0.5);
        let wheel = run_with(link(), 64, 3, seed, SchedulerKind::Wheel);
        let heap = run_with(link(), 64, 3, seed, SchedulerKind::Heap);
        assert_eq!(wheel, heap, "incast: wheel/heap diverged at seed {seed}");
    }
}
