//! Property tests for the slab packet pool's aliasing guarantee: no
//! live handle is ever invalidated or redirected by other allocations,
//! releases, or slot recycling — a recycled slot's new generation makes
//! every stale handle detectably dead rather than silently aliased.
//!
//! The model is a shadow map of live handles to the packet contents
//! they were allocated with. After every operation in a random
//! alloc/release interleaving, every live handle must still resolve to
//! exactly its own packet.

use libra_netsim::{FlowId, Packet, PacketHandle, PacketPool};
use libra_types::Instant;
use proptest::prelude::*;

/// A packet whose fields encode its allocation ordinal `k`, so any
/// aliasing between two live slots is visible in every field at once.
fn tagged_packet(k: u64) -> Packet {
    Packet {
        flow: FlowId((k % 97) as u32),
        seq: k,
        bytes: 1000 + k,
        sent_at: Instant::from_micros(k),
        delivered_at_send: k.wrapping_mul(3),
        app_limited: k.is_multiple_of(2),
        ecn: k.is_multiple_of(3),
    }
}

fn assert_matches_tag(pool: &PacketPool, h: PacketHandle, k: u64) {
    let p = pool.get(h);
    assert_eq!(p.seq, k, "live handle resolved to another packet's seq");
    assert_eq!(p.bytes, 1000 + k, "live handle resolved to foreign bytes");
    assert_eq!(p.flow, FlowId((k % 97) as u32), "foreign flow id");
    assert_eq!(p.delivered_at_send, k.wrapping_mul(3), "foreign counter");
}

proptest! {
    /// Random interleavings of alloc and release: every live handle
    /// keeps resolving to exactly the packet it was allocated with, and
    /// the pool's live/byte ledgers track the shadow model.
    #[test]
    fn live_handles_never_alias(ops in proptest::collection::vec(0u8..4, 1..400)) {
        let mut pool = PacketPool::with_capacity(8);
        let mut live: Vec<(PacketHandle, u64)> = Vec::new();
        let mut next_tag = 0u64;
        for op in ops {
            if op == 0 || live.is_empty() {
                let tag = next_tag;
                next_tag += 1;
                let h = pool.alloc(tagged_packet(tag));
                live.push((h, tag));
            } else {
                // Deterministic position derived from the op byte: hits
                // front, back, and middle slots across the sequence.
                let pos = (op as usize * 31 + live.len()) % live.len();
                let (h, tag) = live.swap_remove(pos);
                let p = pool.release(h);
                prop_assert_eq!(p.seq, tag, "release returned a foreign packet");
            }
            // The aliasing property proper: every survivor unchanged.
            for &(h, tag) in &live {
                assert_matches_tag(&pool, h, tag);
            }
            prop_assert_eq!(pool.live(), live.len());
            let expect_bytes: u64 = live.iter().map(|&(_, t)| 1000 + t).sum();
            prop_assert_eq!(pool.live_bytes(), expect_bytes);
        }
    }

    /// Slot recycling must bump generations: a handle released while
    /// its slot is later reused never resolves to the new resident.
    #[test]
    fn recycled_slots_detect_stale_handles(churn in 1usize..64) {
        let mut pool = PacketPool::with_capacity(4);
        let stale = pool.alloc(tagged_packet(0));
        pool.release(stale);
        // Re-populate; the freed slot is recycled with a new generation.
        let fresh: Vec<PacketHandle> =
            (1..=churn as u64).map(|k| pool.alloc(tagged_packet(k))).collect();
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.get(stale).seq
        }));
        prop_assert!(hit.is_err(), "stale handle resolved after its slot was recycled");
        for (i, &h) in fresh.iter().enumerate() {
            assert_matches_tag(&pool, h, i as u64 + 1);
        }
    }

    /// Handle identity survives slab growth: pushing the pool past its
    /// initial capacity (slab reallocation) must not move or corrupt
    /// packets reachable through existing handles.
    #[test]
    fn slab_growth_preserves_existing_handles(extra in 1usize..512) {
        let mut pool = PacketPool::with_capacity(2);
        let early: Vec<(PacketHandle, u64)> =
            (0..4u64).map(|k| (pool.alloc(tagged_packet(k)), k)).collect();
        for k in 0..extra as u64 {
            pool.alloc(tagged_packet(1000 + k));
        }
        prop_assert!(pool.slab_size() >= 4 + extra);
        for &(h, tag) in &early {
            assert_matches_tag(&pool, h, tag);
        }
    }
}

/// Double release of the same handle must panic (not corrupt the free
/// list into handing the same slot to two owners).
#[test]
#[should_panic(expected = "stale packet handle")]
fn double_release_panics() {
    let mut pool = PacketPool::with_capacity(2);
    let h = pool.alloc(tagged_packet(1));
    pool.release(h);
    pool.release(h);
}
