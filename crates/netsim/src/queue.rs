//! The bottleneck's droptail (FIFO, byte-capacity) queue.
//!
//! Resident packets live in the simulation's [`PacketPool`] slab; the
//! queue itself holds 8-byte [`PacketHandle`]s, so enqueue/dequeue moves
//! one machine word per packet no matter how deep the backlog gets.

use crate::packet::Packet;
use crate::pool::{PacketHandle, PacketPool};
use libra_types::Bytes;
use std::collections::VecDeque;

/// ECN marking policy: packets admitted while the queue holds more than
/// `threshold` bytes get the CE mark (DCTCP-style step marking).
#[derive(Debug, Clone, Copy)]
pub struct EcnConfig {
    /// Marking threshold in bytes.
    pub threshold: Bytes,
}

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// The packet was admitted.
    Accepted,
    /// The buffer was full; the packet was dropped at the tail.
    Dropped,
}

/// A byte-limited FIFO queue — the droptail discipline Theorem 4.1 assumes.
#[derive(Debug)]
pub struct DroptailQueue {
    capacity: Bytes,
    occupied: u64,
    packets: VecDeque<PacketHandle>,
    /// Total packets dropped at the tail since construction.
    pub drops: u64,
    /// Total packets admitted since construction.
    pub admitted: u64,
    /// Total packets CE-marked since construction.
    pub ecn_marks: u64,
    /// Total bytes admitted since construction.
    pub admitted_bytes: u64,
    /// Total bytes dropped at the tail since construction.
    pub dropped_bytes: u64,
    /// Total bytes dequeued since construction.
    pub dequeued_bytes: u64,
    /// Running integral of queue occupancy (byte·ns) for mean-occupancy
    /// reporting; updated lazily at each mutation.
    occupancy_integral: u128,
    last_change_ns: u64,
}

impl DroptailQueue {
    /// A queue holding at most `capacity` bytes.
    pub fn new(capacity: Bytes) -> Self {
        DroptailQueue {
            capacity,
            occupied: 0,
            packets: VecDeque::new(),
            drops: 0,
            admitted: 0,
            ecn_marks: 0,
            admitted_bytes: 0,
            dropped_bytes: 0,
            dequeued_bytes: 0,
            occupancy_integral: 0,
            last_change_ns: 0,
        }
    }

    fn advance_clock(&mut self, now_ns: u64) {
        debug_assert!(now_ns >= self.last_change_ns, "queue clock went backwards");
        #[cfg(feature = "checked-invariants")]
        assert!(now_ns >= self.last_change_ns, "queue clock went backwards");
        let span = now_ns.saturating_sub(self.last_change_ns);
        self.occupancy_integral += span as u128 * self.occupied as u128;
        self.last_change_ns = now_ns;
    }

    /// Byte-conservation invariant (`checked-invariants` feature): the
    /// counter ledger must balance — every admitted byte is either
    /// dequeued or still resident — and the occupancy counter must agree
    /// with the packets actually queued. Runs after every mutation; the
    /// O(len) resident sum is acceptable because the feature is a
    /// test/CI mode, never a bench mode.
    #[cfg(feature = "checked-invariants")]
    fn check_conservation(&self, pool: &PacketPool) {
        assert_eq!(
            self.admitted_bytes,
            self.dequeued_bytes + self.occupied,
            "droptail queue leaked bytes (admitted != dequeued + resident)"
        );
        let resident: u64 = self.packets.iter().map(|&h| pool.get(h).bytes).sum();
        assert_eq!(
            resident, self.occupied,
            "droptail occupancy counter drifted from resident packets"
        );
    }

    #[cfg(not(feature = "checked-invariants"))]
    #[inline(always)]
    fn check_conservation(&self, _pool: &PacketPool) {}

    /// Try to admit `packet` at time `now_ns`; applies the ECN mark when
    /// a policy is given and the standing queue exceeds its threshold.
    /// An accepted packet moves into `pool`; a refused packet never
    /// touches the slab.
    pub fn enqueue_with_ecn(
        &mut self,
        mut packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue {
        self.advance_clock(now_ns);
        if self.occupied + packet.bytes > self.capacity.get() {
            self.drops += 1;
            self.dropped_bytes += packet.bytes;
            self.check_conservation(pool);
            return Enqueue::Dropped;
        }
        if let Some(cfg) = ecn {
            if self.occupied > cfg.threshold.get() {
                packet.ecn = true;
                self.ecn_marks += 1;
            }
        }
        self.occupied += packet.bytes;
        self.admitted += 1;
        self.admitted_bytes += packet.bytes;
        self.packets.push_back(pool.alloc(packet));
        self.check_conservation(pool);
        Enqueue::Accepted
    }

    /// Try to admit `packet` at time `now_ns` (no ECN).
    pub fn enqueue(&mut self, packet: Packet, pool: &mut PacketPool, now_ns: u64) -> Enqueue {
        self.enqueue_with_ecn(packet, pool, now_ns, None)
    }

    /// Remove the head-of-line packet at time `now_ns`. The handle stays
    /// live in the pool (the link holds it while the packet is in
    /// service); the caller releases it.
    pub fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle> {
        self.advance_clock(now_ns);
        let h = self.packets.pop_front()?;
        let bytes = pool.get(h).bytes;
        self.occupied -= bytes;
        self.dequeued_bytes += bytes;
        self.check_conservation(pool);
        Some(h)
    }

    /// Bytes currently queued.
    pub fn occupied_bytes(&self) -> u64 {
        self.occupied
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when no packet is queued.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Time-averaged occupancy in bytes over `[0, now_ns]`.
    pub fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        self.advance_clock(now_ns);
        if now_ns == 0 {
            return self.occupied as f64;
        }
        self.occupancy_integral as f64 / now_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::Instant;

    fn pkt(flow: u32, seq: u64, bytes: u64) -> Packet {
        Packet {
            flow: crate::packet::FlowId(flow),
            seq,
            bytes,
            sent_at: Instant::ZERO,
            delivered_at_send: 0,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn fifo_order() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(10_000));
        q.enqueue(pkt(0, 1, 1500), &mut pool, 0);
        q.enqueue(pkt(0, 2, 1500), &mut pool, 10);
        let a = q.dequeue(&mut pool, 20).unwrap();
        assert_eq!(pool.release(a).seq, 1);
        let b = q.dequeue(&mut pool, 30).unwrap();
        assert_eq!(pool.release(b).seq, 2);
        assert!(q.dequeue(&mut pool, 40).is_none());
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn droptail_drops_when_full() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(3000));
        assert_eq!(q.enqueue(pkt(0, 1, 1500), &mut pool, 0), Enqueue::Accepted);
        assert_eq!(q.enqueue(pkt(0, 2, 1500), &mut pool, 0), Enqueue::Accepted);
        assert_eq!(q.enqueue(pkt(0, 3, 1500), &mut pool, 0), Enqueue::Dropped);
        assert_eq!(q.drops, 1);
        assert_eq!(q.admitted, 2);
        assert_eq!(q.occupied_bytes(), 3000);
        assert_eq!(pool.live(), 2, "refused packets never enter the pool");
        // Draining frees space.
        let h = q.dequeue(&mut pool, 5).unwrap();
        pool.release(h);
        assert_eq!(q.enqueue(pkt(0, 4, 1500), &mut pool, 6), Enqueue::Accepted);
    }

    #[test]
    fn byte_accounting_conserved() {
        let mut pool = PacketPool::with_capacity(32);
        let mut q = DroptailQueue::new(Bytes::new(100_000));
        for s in 0..20 {
            q.enqueue(pkt(0, s, 1000 + s * 10), &mut pool, s);
        }
        let mut total = 0;
        while let Some(h) = q.dequeue(&mut pool, 100) {
            total += pool.release(h).bytes;
        }
        let expect: u64 = (0..20u64).map(|s| 1000 + s * 10).sum();
        assert_eq!(total, expect);
        assert_eq!(q.occupied_bytes(), 0);
        assert_eq!(q.admitted_bytes, expect);
        assert_eq!(q.dequeued_bytes, expect);
        assert_eq!(q.dropped_bytes, 0);
        assert_eq!(pool.live_bytes(), 0);
    }

    #[test]
    fn byte_counters_track_drops_and_inflight() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(3000));
        q.enqueue(pkt(0, 1, 1500), &mut pool, 0);
        q.enqueue(pkt(0, 2, 1500), &mut pool, 0);
        q.enqueue(pkt(0, 3, 1500), &mut pool, 0); // dropped
        let h = q.dequeue(&mut pool, 5).unwrap();
        pool.release(h);
        assert_eq!(q.admitted_bytes, 3000);
        assert_eq!(q.dropped_bytes, 1500);
        assert_eq!(q.dequeued_bytes, 1500);
        assert_eq!(
            q.admitted_bytes - q.dequeued_bytes,
            q.occupied_bytes(),
            "enqueued - dequeued must equal in-flight"
        );
        assert_eq!(pool.live_bytes(), q.occupied_bytes());
    }

    #[cfg(feature = "checked-invariants")]
    #[test]
    #[should_panic(expected = "leaked bytes")]
    fn checked_mode_catches_ledger_drift() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(10_000));
        q.enqueue(pkt(0, 1, 1500), &mut pool, 0);
        q.admitted_bytes += 1; // corrupt the ledger
        q.dequeue(&mut pool, 1);
    }

    #[test]
    fn mean_occupancy_integrates() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(10_000));
        // 1500 bytes resident for the whole first half, empty after.
        q.enqueue(pkt(0, 1, 1500), &mut pool, 0);
        let h = q.dequeue(&mut pool, 500).unwrap();
        pool.release(h);
        assert!((q.mean_occupancy(1000) - 750.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod ecn_tests {
    use super::*;
    use libra_types::Instant;

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: crate::packet::FlowId(0),
            seq,
            bytes: 1500,
            sent_at: Instant::ZERO,
            delivered_at_send: 0,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn marks_above_threshold_only() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(30_000));
        let ecn = Some(EcnConfig {
            threshold: Bytes::new(3000),
        });
        for s in 0..6 {
            q.enqueue_with_ecn(pkt(s), &mut pool, 0, ecn);
        }
        // Occupancy at admit time: 0,1500,3000,4500,6000,7500 → marks for
        // packets admitted at 4500+ (occupied > 3000): seq 3,4,5.
        assert_eq!(q.ecn_marks, 3);
        let marks: Vec<bool> = (0..6)
            .map(|_| {
                let h = q.dequeue(&mut pool, 1).unwrap();
                pool.release(h).ecn
            })
            .collect();
        assert_eq!(marks, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn no_policy_never_marks() {
        let mut pool = PacketPool::with_capacity(8);
        let mut q = DroptailQueue::new(Bytes::new(30_000));
        for s in 0..6 {
            q.enqueue(pkt(s), &mut pool, 0);
        }
        assert_eq!(q.ecn_marks, 0);
    }
}
