//! Mahimahi trace-file compatibility.
//!
//! Mahimahi (and Pantheon, and the paper's evaluation) describe variable
//! links as text files with one integer per line: the millisecond
//! timestamp of a single MTU-sized (1500 B) *packet delivery
//! opportunity*. This module converts such traces into a
//! [`CapacitySchedule`], so users with real recorded traces (e.g. the
//! Verizon/TMobile traces shipped with Mahimahi) can drive this simulator
//! with them directly.

use crate::capacity::CapacitySchedule;
use libra_types::{Duration, Instant, Rate};

/// Bytes per delivery opportunity in the Mahimahi format.
const MTU_BYTES: f64 = 1500.0;

/// Error parsing a Mahimahi trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file contained no usable timestamps.
    Empty,
    /// A line could not be parsed as a non-negative integer.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// Timestamps must be non-decreasing.
    NotMonotonic {
        /// 1-based line number of the offending timestamp.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no timestamps"),
            TraceError::BadLine { line } => write!(f, "line {line}: not a timestamp"),
            TraceError::NotMonotonic { line } => {
                write!(f, "line {line}: timestamps must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse Mahimahi trace text into per-ms delivery-opportunity counts.
fn parse_timestamps(text: &str) -> Result<Vec<u64>, TraceError> {
    let mut out = Vec::new();
    let mut prev = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ts: u64 = line
            .parse()
            .map_err(|_| TraceError::BadLine { line: i + 1 })?;
        if ts < prev {
            return Err(TraceError::NotMonotonic { line: i + 1 });
        }
        prev = ts;
        out.push(ts);
    }
    if out.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(out)
}

/// Convert Mahimahi trace text into a capacity schedule.
///
/// Delivery opportunities are binned at `bin` granularity (Mahimahi's
/// own replay loops the trace; pass `repeat_to` to tile the trace until
/// that time).
pub fn capacity_from_mahimahi(
    text: &str,
    bin: Duration,
    repeat_to: Duration,
) -> Result<CapacitySchedule, TraceError> {
    let stamps = parse_timestamps(text)?;
    // Invariant: parse_timestamps returns Err(TraceError::Empty) rather
    // than an empty vector.
    let trace_ms = *stamps.last().expect("non-empty") + 1;
    let bin_ms = (bin.nanos() / 1_000_000).max(1);
    let n_bins = trace_ms.div_ceil(bin_ms);
    let mut counts = vec![0u64; n_bins as usize];
    for ts in &stamps {
        counts[(ts / bin_ms) as usize] += 1;
    }
    // One full pass of segments, then tiled until `repeat_to`.
    let bin_secs = bin_ms as f64 / 1e3;
    let mut segments = Vec::new();
    let mut t = Instant::ZERO;
    while t.nanos() < repeat_to.nanos() {
        for (i, &c) in counts.iter().enumerate() {
            let rate = Rate::from_bps(c as f64 * MTU_BYTES * 8.0 / bin_secs);
            let at = t + Duration::from_millis(i as u64 * bin_ms);
            if at.nanos() >= repeat_to.nanos() {
                break;
            }
            segments.push((at, rate));
        }
        t += Duration::from_millis(trace_ms);
        if trace_ms == 0 {
            break;
        }
    }
    Ok(CapacitySchedule::from_segments(segments))
}

/// Render a capacity schedule *back* into Mahimahi trace text (one
/// delivery-opportunity timestamp per line) — lets experiments built on
/// synthetic traces be replayed on real Mahimahi installations.
pub fn capacity_to_mahimahi(schedule: &CapacitySchedule, total: Duration) -> String {
    let mut out = String::new();
    let mut carry = 0.0f64;
    let step = Duration::from_millis(1);
    let mut t = Instant::ZERO;
    while t.nanos() < total.nanos() {
        let rate = schedule.rate_at(t);
        carry += rate.bytes_per_sec() * 1e-3 / MTU_BYTES;
        while carry >= 1.0 {
            out.push_str(&format!("{}\n", t.nanos() / 1_000_000));
            carry -= 1.0;
        }
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_trace_round_trips() {
        // 12 Mbps = one 1500 B opportunity per ms.
        let text: String = (0..1000u64).map(|ms| format!("{ms}\n")).collect();
        let sched =
            capacity_from_mahimahi(&text, Duration::from_millis(100), Duration::from_secs(2))
                .expect("parse");
        let r = sched.rate_at(Instant::from_millis(500));
        assert!((r.mbps() - 12.0).abs() < 0.5, "{r}");
        // Tiled past the trace length.
        let r2 = sched.rate_at(Instant::from_millis(1500));
        assert!((r2.mbps() - 12.0).abs() < 0.5, "{r2}");
    }

    #[test]
    fn bursty_trace_has_fast_and_slow_bins() {
        // 5 opportunities at ms 0..5, nothing until ms 999.
        let mut text = String::new();
        for ms in 0..5 {
            text.push_str(&format!("{ms}\n"));
        }
        text.push_str("999\n");
        let sched =
            capacity_from_mahimahi(&text, Duration::from_millis(100), Duration::from_secs(1))
                .expect("parse");
        assert!(sched.rate_at(Instant::from_millis(50)).mbps() > 0.5);
        assert!(sched.rate_at(Instant::from_millis(500)).mbps() < 0.1);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# mahimahi trace\n\n0\n1\n2\n";
        assert!(
            capacity_from_mahimahi(text, Duration::from_millis(1), Duration::from_millis(3))
                .is_ok()
        );
    }

    #[test]
    fn bad_lines_are_reported() {
        let err = |text: &str| {
            capacity_from_mahimahi(text, Duration::from_millis(1), Duration::from_secs(1))
                .expect_err("should fail")
        };
        assert_eq!(err("0\nxyz\n"), TraceError::BadLine { line: 2 });
        assert_eq!(err("5\n3\n"), TraceError::NotMonotonic { line: 2 });
        assert_eq!(err("# only comments\n"), TraceError::Empty);
    }

    #[test]
    fn export_then_import_preserves_mean_rate() {
        let sched = CapacitySchedule::constant(Rate::from_mbps(24.0));
        let text = capacity_to_mahimahi(&sched, Duration::from_secs(2));
        let back =
            capacity_from_mahimahi(&text, Duration::from_millis(100), Duration::from_secs(2))
                .expect("parse");
        let mean = back.mean_rate(Instant::ZERO, Instant::from_secs(2));
        assert!((mean.mbps() - 24.0).abs() < 1.0, "{mean}");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            TraceError::Empty.to_string(),
            "trace contains no timestamps"
        );
        assert!(TraceError::BadLine { line: 7 }
            .to_string()
            .contains("line 7"));
    }
}
