//! Deterministic fault injection for the bottleneck link.
//!
//! A [`FaultPlan`] schedules composable fault events over simulated time:
//! first-class link flaps (trains of down/up cycles), packet-reordering
//! windows, packet duplication, ACK compression/batching, one-way-delay
//! spikes, and Gilbert–Elliott burst-loss episodes. Every fault draws
//! from an RNG stream forked off the simulation seed, so a run with a
//! plan is exactly as reproducible as one without; and every fault type
//! increments a counter in [`FaultReport`] so tests can assert the fault
//! actually fired.
//!
//! Semantics at the simulator:
//!
//! - **LinkFlap** windows are overlaid on the capacity schedule as
//!   zero-rate segments before the run starts — packets in service wait
//!   the outage out exactly like a trace-driven blackout.
//! - **Reorder** delays a packet's ACK by `extra_delay` with probability
//!   `probability`, so later packets' ACKs overtake it (exercising the
//!   sender's dup-ACK/reorder-window machinery).
//! - **Duplicate** delivers a second copy of the ACK shortly after the
//!   first; receivers must tolerate the duplicate.
//! - **AckCompression** quantizes ACK arrival times up to multiples of
//!   `flush_every`, batching ACKs into bursts (a cable/Wi-Fi uplink
//!   aggregation artifact).
//! - **DelaySpike** adds `extra` to the round trip of packets serviced
//!   during the window (a routing change or bufferbloat episode
//!   elsewhere on the path).
//! - **BurstLoss** runs a dedicated Gilbert–Elliott process over the
//!   window, on top of the link's base loss process.

use crate::loss::GilbertElliott;
use libra_types::{DetRng, Duration, Instant};

/// One kind of injectable fault.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// The link is dead for the whole event window.
    LinkFlap,
    /// ACKs are delayed by `extra_delay` with probability `probability`,
    /// letting later ACKs overtake them.
    Reorder {
        /// Per-packet probability of being held back.
        probability: f64,
        /// How long a held-back ACK is delayed.
        extra_delay: Duration,
    },
    /// A second copy of the ACK arrives `1 ms` after the first with
    /// probability `probability`.
    Duplicate {
        /// Per-packet duplication probability.
        probability: f64,
    },
    /// ACK arrival times are rounded up to multiples of `flush_every`
    /// (measured from the window start), arriving in batches.
    AckCompression {
        /// Batch flush interval.
        flush_every: Duration,
    },
    /// Every round trip in the window is `extra` longer.
    DelaySpike {
        /// Added one-way delay.
        extra: Duration,
    },
    /// A Gilbert–Elliott burst-loss episode on top of the base loss
    /// process.
    BurstLoss(GilbertElliott),
}

impl FaultKind {
    /// Stable lowercase label used in trace events and tables.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkFlap => "link-flap",
            FaultKind::Reorder { .. } => "reorder",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::AckCompression { .. } => "ack-compression",
            FaultKind::DelaySpike { .. } => "delay-spike",
            FaultKind::BurstLoss(_) => "burst-loss",
        }
    }
}

/// A fault active on `[from, to)`.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Window start (inclusive).
    pub from: Instant,
    /// Window end (exclusive).
    pub to: Instant,
    /// What happens inside the window.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Is the event active at `t`?
    pub fn active_at(&self, t: Instant) -> bool {
        self.from <= t && t < self.to
    }
}

/// A schedule of fault events attached to a [`crate::LinkConfig`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add one event (builder style).
    pub fn with(mut self, from: Instant, to: Instant, kind: FaultKind) -> Self {
        self.push(from, to, kind);
        self
    }

    /// Add one event.
    pub fn push(&mut self, from: Instant, to: Instant, kind: FaultKind) {
        debug_assert!(from <= to, "fault window ends before it starts");
        self.events.push(FaultEvent { from, to, kind });
    }

    /// Append a train of `count` link flaps: down for `down`, up for
    /// `up`, starting at `start`.
    pub fn flap_train(
        mut self,
        start: Instant,
        down: Duration,
        up: Duration,
        count: usize,
    ) -> Self {
        let mut t = start;
        for _ in 0..count {
            self = self.with(t, t + down, FaultKind::LinkFlap);
            t += down + up;
        }
        self
    }

    /// The flap outage windows, for overlaying on a capacity schedule.
    pub fn outage_windows(&self) -> Vec<(Instant, Instant)> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkFlap))
            .map(|e| (e.from, e.to))
            .collect()
    }
}

/// Per-fault-type counters, reported in [`crate::SimReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Link-flap outages that began within the simulated horizon.
    pub link_flaps: u64,
    /// ACKs held back by a reorder window.
    pub reordered_acks: u64,
    /// ACKs delivered twice.
    pub duplicated_acks: u64,
    /// ACKs whose arrival was quantized by an ACK-compression window.
    pub compressed_acks: u64,
    /// ACKs delayed by a delay-spike window.
    pub delay_spiked_acks: u64,
    /// Packets dropped by burst-loss episodes.
    pub burst_loss_drops: u64,
}

impl FaultReport {
    /// Total fault activations across all types.
    pub fn total(&self) -> u64 {
        self.link_flaps
            + self.reordered_acks
            + self.duplicated_acks
            + self.compressed_acks
            + self.delay_spiked_acks
            + self.burst_loss_drops
    }
}

/// Runtime state for a fault plan: mutable per-episode processes plus the
/// dedicated RNG stream. Owned by the simulation.
#[derive(Debug)]
pub(crate) struct FaultEngine {
    events: Vec<FaultEvent>,
    rng: DetRng,
    pub(crate) report: FaultReport,
}

/// How the ACK for a just-serviced packet is affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AckFate {
    /// Drop the packet entirely (burst loss).
    pub(crate) dropped: bool,
    /// Extra delay to add to the ACK arrival time.
    pub(crate) extra_delay: Duration,
    /// Schedule a second copy of the ACK this much after the first.
    pub(crate) duplicate_after: Option<Duration>,
}

impl AckFate {
    pub(crate) const CLEAN: AckFate = AckFate {
        dropped: false,
        extra_delay: Duration::ZERO,
        duplicate_after: None,
    };
}

impl FaultEngine {
    /// Build runtime state from a plan. Link-flap counting happens in the
    /// simulation's `finalize` (only flaps inside the simulated horizon
    /// count), so the report starts all-zero here.
    pub(crate) fn new(plan: &FaultPlan, rng: DetRng) -> Self {
        FaultEngine {
            events: plan.events.clone(),
            rng,
            report: FaultReport::default(),
        }
    }

    /// Decide the fate of the ACK for a packet leaving service at `now`
    /// whose undisturbed arrival would be `ack_at`. Returns the fate and
    /// the (possibly shifted) arrival time.
    pub(crate) fn ack_fate(&mut self, now: Instant, ack_at: Instant) -> (AckFate, Instant) {
        if self.events.is_empty() {
            return (AckFate::CLEAN, ack_at);
        }
        let mut fate = AckFate::CLEAN;
        let mut when = ack_at;
        // Each event type draws from the shared fault stream only while
        // its window is active, in schedule order — deterministic under
        // the run seed.
        for i in 0..self.events.len() {
            if !self.events[i].active_at(now) {
                continue;
            }
            match &mut self.events[i].kind {
                FaultKind::LinkFlap => {}
                FaultKind::Reorder {
                    probability,
                    extra_delay,
                } => {
                    if self.rng.chance(*probability) {
                        fate.extra_delay += *extra_delay;
                        when += *extra_delay;
                        self.report.reordered_acks += 1;
                    }
                }
                FaultKind::Duplicate { probability } => {
                    if self.rng.chance(*probability) {
                        fate.duplicate_after = Some(Duration::from_millis(1));
                        self.report.duplicated_acks += 1;
                    }
                }
                FaultKind::DelaySpike { extra } => {
                    fate.extra_delay += *extra;
                    when += *extra;
                    self.report.delay_spiked_acks += 1;
                }
                FaultKind::BurstLoss(ge) => {
                    if ge.drop(&mut self.rng) {
                        fate.dropped = true;
                        self.report.burst_loss_drops += 1;
                    }
                }
                FaultKind::AckCompression { .. } => {
                    // Applied last, below, so it also batches the delays
                    // added by reorder/spike windows.
                }
            }
        }
        if fate.dropped {
            return (fate, when);
        }
        for event in &self.events {
            if !event.active_at(now) {
                continue;
            }
            if let FaultKind::AckCompression { flush_every } = event.kind {
                if flush_every.is_zero() {
                    continue;
                }
                let offset = when.saturating_since(event.from).nanos();
                let step = flush_every.nanos();
                let rem = offset % step;
                if rem != 0 {
                    when += Duration::from_nanos(step - rem);
                    self.report.compressed_acks += 1;
                }
            }
        }
        (fate, when)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_train_builds_windows() {
        let plan = FaultPlan::none().flap_train(
            Instant::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(2),
            3,
        );
        let w = plan.outage_windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (Instant::from_secs(5), Instant::from_secs(6)));
        assert_eq!(w[1], (Instant::from_secs(8), Instant::from_secs(9)));
        assert_eq!(w[2], (Instant::from_secs(11), Instant::from_secs(12)));
    }

    #[test]
    fn event_window_is_half_open() {
        let e = FaultEvent {
            from: Instant::from_secs(1),
            to: Instant::from_secs(2),
            kind: FaultKind::LinkFlap,
        };
        assert!(!e.active_at(Instant::ZERO));
        assert!(e.active_at(Instant::from_secs(1)));
        assert!(!e.active_at(Instant::from_secs(2)));
    }

    #[test]
    fn delay_spike_shifts_every_ack_in_window() {
        let plan = FaultPlan::none().with(
            Instant::ZERO,
            Instant::from_secs(10),
            FaultKind::DelaySpike {
                extra: Duration::from_millis(50),
            },
        );
        let mut eng = FaultEngine::new(&plan, DetRng::new(1));
        let base = Instant::from_millis(100);
        let (fate, when) = eng.ack_fate(Instant::from_millis(60), base);
        assert!(!fate.dropped);
        assert_eq!(when, base + Duration::from_millis(50));
        assert_eq!(eng.report.delay_spiked_acks, 1);
        // Outside the window: untouched.
        let (fate2, when2) = eng.ack_fate(Instant::from_secs(11), base);
        assert_eq!((fate2, when2), (AckFate::CLEAN, base));
    }

    #[test]
    fn ack_compression_quantizes_up() {
        let plan = FaultPlan::none().with(
            Instant::ZERO,
            Instant::from_secs(1),
            FaultKind::AckCompression {
                flush_every: Duration::from_millis(10),
            },
        );
        let mut eng = FaultEngine::new(&plan, DetRng::new(2));
        let (_, when) = eng.ack_fate(Instant::from_millis(1), Instant::from_millis(13));
        assert_eq!(when, Instant::from_millis(20));
        // Already on a boundary: untouched, not counted.
        let before = eng.report.compressed_acks;
        let (_, when2) = eng.ack_fate(Instant::from_millis(2), Instant::from_millis(30));
        assert_eq!(when2, Instant::from_millis(30));
        assert_eq!(eng.report.compressed_acks, before);
    }

    #[test]
    fn burst_loss_drops_and_counts() {
        let plan = FaultPlan::none().with(
            Instant::ZERO,
            Instant::from_secs(1),
            FaultKind::BurstLoss(GilbertElliott::new(1.0, 0.0, 1.0, 1.0)),
        );
        let mut eng = FaultEngine::new(&plan, DetRng::new(3));
        let (fate, _) = eng.ack_fate(Instant::from_millis(5), Instant::from_millis(50));
        assert!(fate.dropped);
        assert_eq!(eng.report.burst_loss_drops, 1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let plan = FaultPlan::none().with(
            Instant::ZERO,
            Instant::from_secs(1),
            FaultKind::Reorder {
                probability: 0.5,
                extra_delay: Duration::from_millis(20),
            },
        );
        let run = |seed| {
            let mut eng = FaultEngine::new(&plan, DetRng::new(seed));
            (0..64)
                .map(|i| {
                    eng.ack_fate(Instant::from_millis(i), Instant::from_millis(i + 40))
                        .1
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
