// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Slab-allocated packet storage with generation-tagged handles.
//!
//! The queue disciplines and the link's in-service slot used to move
//! 48-byte [`Packet`] structs by value through `VecDeque`s. At O(1000)
//! flows a congested bottleneck holds thousands of resident packets, and
//! every enqueue/dequeue shuffled those bytes around. The [`PacketPool`]
//! arena fixes the cost: packets live in one reusable slab, everything
//! else passes 8-byte [`PacketHandle`]s, and a freed slot is recycled
//! without touching the allocator — zero heap traffic per packet in
//! steady state.
//!
//! Use-after-free is a real hazard with index recycling, so every handle
//! carries the slot's *generation*: [`PacketPool::release`] bumps it, and
//! any later access through a stale handle panics instead of silently
//! aliasing whatever packet now occupies the slot. The generation check
//! is always on — it is one predictable compare on a line already being
//! loaded — and `tests/pool_aliasing.rs` proptests the guarantee.
//!
//! Byte-ledger identity: the pool tracks the byte sum of live packets
//! (`live_bytes`). Under `checked-invariants` the simulator asserts after
//! every event that this equals queue-resident bytes plus the packet in
//! service, so a leaked or double-freed packet trips immediately.

use crate::packet::Packet;

/// An 8-byte reference to a pooled packet: slot index plus the slot
/// generation at allocation time. Stale handles (outliving a release)
/// fail the generation check on every access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHandle {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot {
    /// Bumped on every release; a handle is valid iff its `gen` matches.
    gen: u32,
    /// Whether the slot currently holds a live packet (mirrors the free
    /// list; used for the double-free check).
    live: bool,
    packet: Packet,
}

/// Reusable arena for in-network packets (queued or in service).
#[derive(Debug)]
pub struct PacketPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    live_bytes: u64,
}

/// Placeholder stored in freed slots; never readable through a handle.
const TOMBSTONE: Packet = Packet {
    flow: crate::packet::FlowId(u32::MAX),
    seq: u64::MAX,
    bytes: 0,
    sent_at: libra_types::Instant::FAR_FUTURE,
    delivered_at_send: 0,
    app_limited: false,
    ecn: false,
};

impl PacketPool {
    /// An empty pool. `capacity` hints the expected peak of resident
    /// packets (queue + in service); the slab grows past it on demand.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketPool {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            live_bytes: 0,
        }
    }

    /// Store `packet`, returning its handle. O(1); allocates only when
    /// the slab has never been this full before.
    pub fn alloc(&mut self, packet: Packet) -> PacketHandle {
        self.live += 1;
        self.live_bytes += packet.bytes;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(!slot.live, "free list pointed at a live slot");
            slot.live = true;
            slot.packet = packet;
            return PacketHandle { idx, gen: slot.gen };
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot {
            gen: 0,
            live: true,
            packet,
        });
        PacketHandle { idx, gen: 0 }
    }

    #[inline]
    fn slot(&self, h: PacketHandle) -> &Slot {
        let slot = &self.slots[h.idx as usize];
        assert!(
            slot.gen == h.gen && slot.live,
            "stale packet handle: slot {} generation {} vs handle generation {}",
            h.idx,
            slot.gen,
            h.gen
        );
        slot
    }

    /// Read the packet behind `h`. Panics on a stale handle.
    #[inline]
    pub fn get(&self, h: PacketHandle) -> &Packet {
        &self.slot(h).packet
    }

    /// Mutate the packet behind `h`. Panics on a stale handle.
    #[inline]
    pub fn get_mut(&mut self, h: PacketHandle) -> &mut Packet {
        let slot = &mut self.slots[h.idx as usize];
        assert!(
            slot.gen == h.gen && slot.live,
            "stale packet handle: slot {} generation {} vs handle generation {}",
            h.idx,
            slot.gen,
            h.gen
        );
        &mut slot.packet
    }

    /// Free the slot behind `h`, returning the packet by value. The
    /// slot's generation is bumped so `h` (and any copy of it) is dead
    /// from here on. Panics on a stale handle (double free included).
    pub fn release(&mut self, h: PacketHandle) -> Packet {
        let slot = &mut self.slots[h.idx as usize];
        assert!(
            slot.gen == h.gen && slot.live,
            "stale packet handle released: slot {} generation {} vs handle generation {}",
            h.idx,
            slot.gen,
            h.gen
        );
        let packet = std::mem::replace(&mut slot.packet, TOMBSTONE);
        slot.live = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        self.live_bytes -= packet.bytes;
        packet
    }

    /// Number of live packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Byte sum of live packets — the pool's side of the conservation
    /// ledger the simulator checks under `checked-invariants`.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Total slots ever allocated (live + recycled).
    pub fn slab_size(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use libra_types::Instant;

    fn pkt(seq: u64, bytes: u64) -> Packet {
        Packet {
            flow: FlowId(0),
            seq,
            bytes,
            sent_at: Instant::ZERO,
            delivered_at_send: 0,
            app_limited: false,
            ecn: false,
        }
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut pool = PacketPool::with_capacity(4);
        let h = pool.alloc(pkt(7, 1500));
        assert_eq!(pool.get(h).seq, 7);
        assert_eq!(pool.live(), 1);
        assert_eq!(pool.live_bytes(), 1500);
        let p = pool.release(h);
        assert_eq!(p.seq, 7);
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.live_bytes(), 0);
    }

    #[test]
    fn slots_are_recycled_without_slab_growth() {
        let mut pool = PacketPool::with_capacity(2);
        for round in 0..100u64 {
            let a = pool.alloc(pkt(round, 1500));
            let b = pool.alloc(pkt(round + 1000, 500));
            assert_eq!(pool.get(a).seq, round);
            pool.release(a);
            pool.release(b);
        }
        assert_eq!(pool.slab_size(), 2, "steady state must reuse slots");
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_read_panics() {
        let mut pool = PacketPool::with_capacity(1);
        let h = pool.alloc(pkt(1, 1500));
        pool.release(h);
        // The slot is re-occupied by a different packet; the old handle
        // must NOT alias it.
        let _h2 = pool.alloc(pkt(2, 1500));
        let _ = pool.get(h);
    }

    #[test]
    #[should_panic(expected = "stale packet handle released")]
    fn double_free_panics() {
        let mut pool = PacketPool::with_capacity(1);
        let h = pool.alloc(pkt(1, 1500));
        pool.release(h);
        let _ = pool.release(h);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut pool = PacketPool::with_capacity(1);
        let h = pool.alloc(pkt(1, 1500));
        pool.get_mut(h).ecn = true;
        assert!(pool.get(h).ecn);
    }
}
