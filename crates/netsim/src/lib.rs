// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! A deterministic, packet-level, discrete-event network simulator — the
//! workspace's substitute for the paper's Mahimahi/Pantheon emulation.
//!
//! The topology is a dumbbell: any number of flows share one droptail
//! queue feeding a (possibly trace-driven) bottleneck link; ACKs return on
//! an uncongested reverse path with optional jitter. Everything is driven
//! from a hierarchical timer-wheel event queue (see [`wheel`]) with
//! integer-nanosecond timestamps, so a run is a pure function of
//! `(configuration, seed)`.
//!
//! # Quick example
//!
//! ```
//! use libra_netsim::{FlowConfig, LinkConfig, Simulation};
//! use libra_types::{CongestionControl, Duration, Instant, Rate};
//!
//! // A fixed-rate "controller" for illustration.
//! struct Fixed(Rate);
//! impl CongestionControl for Fixed {
//!     fn name(&self) -> &'static str { "fixed" }
//!     fn on_ack(&mut self, _: &libra_types::AckEvent) {}
//!     fn on_loss(&mut self, _: &libra_types::LossEvent) {}
//!     fn cwnd_bytes(&self) -> u64 { u64::MAX / 2 }
//!     fn pacing_rate(&self) -> Option<Rate> { Some(self.0) }
//! }
//!
//! let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
//! let until = Instant::from_secs(5);
//! let mut sim = Simulation::new(link, 42);
//! sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(Rate::from_mbps(8.0))), until));
//! let report = sim.run(until);
//! assert!(report.link.utilization > 0.7);
//! ```

pub mod aqm;
pub mod capacity;
pub mod cross_traffic;
pub mod faults;
pub mod host_clock;
pub mod loss;
pub mod mahimahi;
pub mod packet;
pub mod pool;
pub mod queue;
pub mod sender;
pub mod sim;
pub mod trace;
pub mod wheel;

pub use aqm::{
    AnyQueue, CodelQueue, PieQueue, QueueConfig, QueueCounters, QueueDiscipline, TokenBucketQueue,
};
pub use capacity::CapacitySchedule;
pub use cross_traffic::{CbrSource, OnOffSource};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultReport};
pub use loss::{GilbertElliott, LossProcess};
pub use mahimahi::{capacity_from_mahimahi, capacity_to_mahimahi, TraceError};
pub use packet::{AckPacket, FlowId, Packet};
pub use pool::{PacketHandle, PacketPool};
pub use queue::{DroptailQueue, EcnConfig, Enqueue};
pub use sender::{BinSeries, FlowSender};
pub use sim::{
    BudgetKind, BudgetTrip, FlowConfig, FlowReport, LinkConfig, LinkReport, SchedulerKind,
    SimBudget, SimConfig, SimReport, Simulation,
};
pub use trace::{
    datacenter_link, fiveg_link, leo_link, lte_link, lte_trace, satellite_link, step_link,
    wan_link, wired_link, LteScenario, WanScenario,
};
pub use wheel::{TimedEntry, TimerWheel};
