//! Loss processes for the bottleneck's wire: independent (Bernoulli)
//! loss and bursty (Gilbert–Elliott) loss. Real radio links lose packets
//! in bursts — fades — rather than independently; the two-state model
//! captures that with a *good* state (rare loss) and a *bad* state
//! (frequent loss) with geometric dwell times.

use libra_types::DetRng;

/// A packet-loss process applied at link egress.
#[derive(Debug, Clone)]
pub enum LossProcess {
    /// No stochastic loss.
    None,
    /// Independent loss with fixed probability.
    Bernoulli {
        /// Per-packet drop probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott model.
    GilbertElliott(GilbertElliott),
}

impl LossProcess {
    /// Convenience constructor preserving the old `stochastic_loss`
    /// scalar: 0 means none.
    pub fn bernoulli(p: f64) -> Self {
        if p <= 0.0 {
            LossProcess::None
        } else {
            LossProcess::Bernoulli { p: p.min(1.0) }
        }
    }

    /// Should the current packet be dropped?
    pub fn drop(&mut self, rng: &mut DetRng) -> bool {
        match self {
            LossProcess::None => false,
            LossProcess::Bernoulli { p } => rng.chance(*p),
            LossProcess::GilbertElliott(ge) => ge.drop(rng),
        }
    }

    /// Long-run average loss rate of the process.
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossProcess::None => 0.0,
            LossProcess::Bernoulli { p } => *p,
            LossProcess::GilbertElliott(ge) => ge.mean_loss(),
        }
    }
}

/// The Gilbert–Elliott two-state Markov loss model.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(good → bad) per packet.
    pub p_enter_bad: f64,
    /// P(bad → good) per packet.
    pub p_leave_bad: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Construct with explicit transition and loss probabilities.
    pub fn new(p_enter_bad: f64, p_leave_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_enter_bad));
        assert!((0.0..=1.0).contains(&p_leave_bad));
        GilbertElliott {
            p_enter_bad,
            p_leave_bad,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// A radio-fade preset: mean burst of `burst_pkts` packets at
    /// `loss_bad` loss, tuned so the long-run loss rate is `target`.
    pub fn bursty(target: f64, burst_pkts: f64) -> Self {
        let loss_bad: f64 = 0.5;
        let p_leave_bad = 1.0 / burst_pkts.max(1.0);
        // Stationary bad-state probability π_b needed for the target:
        // target = π_b·loss_bad → π_b = target/loss_bad, and
        // π_b = p_enter/(p_enter + p_leave).
        let pi_b = (target / loss_bad).clamp(0.0, 0.9);
        let p_enter_bad = if pi_b >= 1.0 {
            1.0
        } else {
            (pi_b * p_leave_bad / (1.0 - pi_b)).min(1.0)
        };
        GilbertElliott::new(p_enter_bad, p_leave_bad, 0.0, loss_bad)
    }

    /// Should the current packet be dropped? Advances the Markov chain.
    pub fn drop(&mut self, rng: &mut DetRng) -> bool {
        // Transition first, then sample loss in the new state.
        if self.in_bad {
            if rng.chance(self.p_leave_bad) {
                self.in_bad = false;
            }
        } else if rng.chance(self.p_enter_bad) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.chance(p)
    }

    /// Long-run mean loss rate.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_leave_bad;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_b = self.p_enter_bad / denom;
        pi_b * self.loss_bad + (1.0 - pi_b) * self.loss_good
    }

    /// Whether the process is currently in the bad (fade) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut p = LossProcess::None;
        let mut rng = DetRng::new(1);
        assert!((0..1000).all(|_| !p.drop(&mut rng)));
        assert_eq!(p.mean_loss(), 0.0);
    }

    #[test]
    fn bernoulli_hits_target_rate() {
        let mut p = LossProcess::bernoulli(0.1);
        let mut rng = DetRng::new(2);
        let drops = (0..50_000).filter(|_| p.drop(&mut rng)).count();
        let rate = drops as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_zero_is_none() {
        assert!(matches!(LossProcess::bernoulli(0.0), LossProcess::None));
    }

    #[test]
    fn gilbert_elliott_long_run_rate() {
        let ge = GilbertElliott::bursty(0.05, 20.0);
        assert!((ge.mean_loss() - 0.05).abs() < 1e-9, "{}", ge.mean_loss());
        let mut p = LossProcess::GilbertElliott(ge);
        let mut rng = DetRng::new(3);
        let drops = (0..200_000).filter(|_| p.drop(&mut rng)).count();
        let rate = drops as f64 / 200_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare run-length distribution of drops: GE at the same mean
        // rate as Bernoulli must produce longer drop bursts.
        let run_lengths = |mut p: LossProcess, seed: u64| -> f64 {
            let mut rng = DetRng::new(seed);
            let (mut bursts, mut total, mut cur) = (0u64, 0u64, 0u64);
            for _ in 0..300_000 {
                if p.drop(&mut rng) {
                    cur += 1;
                } else if cur > 0 {
                    bursts += 1;
                    total += cur;
                    cur = 0;
                }
            }
            if bursts == 0 {
                0.0
            } else {
                total as f64 / bursts as f64
            }
        };
        let bernoulli = run_lengths(LossProcess::bernoulli(0.05), 4);
        let ge = run_lengths(
            LossProcess::GilbertElliott(GilbertElliott::bursty(0.05, 20.0)),
            4,
        );
        assert!(ge > 1.3 * bernoulli, "GE {ge} vs Bernoulli {bernoulli}");
    }

    #[test]
    fn fade_state_is_visible() {
        let mut ge = GilbertElliott::new(1.0, 0.0, 0.0, 1.0);
        let mut rng = DetRng::new(5);
        assert!(!ge.in_bad_state());
        ge.drop(&mut rng);
        assert!(ge.in_bad_state());
    }
}
