//! Cross-traffic sources: unresponsive constant-bit-rate and on/off
//! senders used as background load in experiments (competing flows the
//! Sec. 4.1 discussion mentions among the dynamics Libra must react to).

use libra_types::{
    cca::rate_based_cwnd, AckEvent, CongestionControl, Duration, Instant, LossEvent, MiStats, Rate,
};

/// An unresponsive constant-bit-rate source (UDP-like): it ignores every
/// congestion signal and paces at a fixed rate.
pub struct CbrSource {
    rate: Rate,
    srtt: Duration,
}

impl CbrSource {
    /// A CBR source at `rate`.
    pub fn new(rate: Rate) -> Self {
        CbrSource {
            rate,
            srtt: Duration::from_millis(100),
        }
    }
}

impl CongestionControl for CbrSource {
    fn name(&self) -> &'static str {
        "CBR"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
    }

    fn on_loss(&mut self, _ev: &LossEvent) {}

    fn cwnd_bytes(&self) -> u64 {
        rate_based_cwnd(self.rate, self.srtt, 1500)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        Some(self.rate)
    }
}

/// An on/off burst source: alternates between sending at `rate` for
/// `on` and silence for `off` — the classic model for interfering web
/// or video traffic.
pub struct OnOffSource {
    rate: Rate,
    on: Duration,
    off: Duration,
    srtt: Duration,
    now: Instant,
}

impl OnOffSource {
    /// Build with the given burst rate and on/off durations.
    pub fn new(rate: Rate, on: Duration, off: Duration) -> Self {
        assert!(!on.is_zero(), "on period must be positive");
        OnOffSource {
            rate,
            on,
            off,
            srtt: Duration::from_millis(100),
            now: Instant::ZERO,
        }
    }

    fn is_on(&self) -> bool {
        let period = (self.on + self.off).nanos().max(1);
        (self.now.nanos() % period) < self.on.nanos()
    }
}

impl CongestionControl for OnOffSource {
    fn name(&self) -> &'static str {
        "OnOff"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        self.srtt = ev.srtt;
        self.now = ev.now;
    }

    fn on_mi(&mut self, stats: &MiStats) {
        self.now = stats.end;
    }

    fn on_loss(&mut self, _ev: &LossEvent) {}

    fn mi_duration(&self, _srtt: Duration) -> Duration {
        // Tick fast enough to observe phase boundaries.
        self.on.min(self.off.max(Duration::from_millis(10))) / 2
    }

    fn cwnd_bytes(&self) -> u64 {
        rate_based_cwnd(self.rate, self.srtt, 1500)
    }

    fn pacing_rate(&self) -> Option<Rate> {
        if self.is_on() {
            Some(self.rate)
        } else {
            Some(Rate::ZERO)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FlowConfig, LinkConfig, Simulation};

    #[test]
    fn cbr_holds_its_rate() {
        let link = LinkConfig::constant(Rate::from_mbps(20.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(10);
        let mut sim = Simulation::new(link, 1);
        sim.add_flow(FlowConfig::whole_run(
            Box::new(CbrSource::new(Rate::from_mbps(6.0))),
            until,
        ));
        let rep = sim.run(until);
        assert!((rep.flows[0].avg_goodput.mbps() - 6.0).abs() < 0.5);
    }

    #[test]
    fn cbr_squeezes_a_responsive_flow() {
        /// A minimal AIMD responder for the test.
        struct MiniAimd {
            cwnd: f64,
        }
        impl CongestionControl for MiniAimd {
            fn name(&self) -> &'static str {
                "mini-aimd"
            }
            fn on_ack(&mut self, ev: &AckEvent) {
                self.cwnd += ev.bytes as f64 / 1500.0 / self.cwnd;
            }
            fn on_loss(&mut self, _: &LossEvent) {
                self.cwnd = (self.cwnd / 2.0).max(2.0);
            }
            fn cwnd_bytes(&self) -> u64 {
                (self.cwnd * 1500.0) as u64
            }
        }
        let link = LinkConfig::constant(Rate::from_mbps(20.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(20);
        let mut sim = Simulation::new(link, 2);
        sim.add_flow(FlowConfig::whole_run(
            Box::new(MiniAimd { cwnd: 10.0 }),
            until,
        ));
        sim.add_flow(FlowConfig::whole_run(
            Box::new(CbrSource::new(Rate::from_mbps(12.0))),
            until,
        ));
        let rep = sim.run(until);
        // The unresponsive source keeps its 12 Mbps; AIMD takes the rest.
        assert!((rep.flows[1].avg_goodput.mbps() - 12.0).abs() < 1.0);
        assert!(rep.flows[0].avg_goodput.mbps() < 10.0);
    }

    #[test]
    fn on_off_source_alternates() {
        let link = LinkConfig::constant(Rate::from_mbps(50.0), Duration::from_millis(20), 1.0);
        let until = Instant::from_secs(10);
        let mut sim = Simulation::new(link, 3);
        sim.add_flow(FlowConfig::whole_run(
            Box::new(OnOffSource::new(
                Rate::from_mbps(10.0),
                Duration::from_secs(1),
                Duration::from_secs(1),
            )),
            until,
        ));
        let rep = sim.run(until);
        // Duty cycle 50 % → ~5 Mbps average.
        let g = rep.flows[0].avg_goodput.mbps();
        assert!((g - 5.0).abs() < 1.5, "goodput {g}");
        // The series must contain both busy and idle bins.
        let bins = &rep.flows[0].goodput_series;
        assert!(bins.iter().any(|&(_, v)| v > 8.0));
        assert!(bins
            .iter()
            .filter(|&&(t, _)| t > 1.0)
            .any(|&(_, v)| v < 1.0));
    }
}
