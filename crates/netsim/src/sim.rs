//! The discrete-event simulation: a dumbbell topology with one bottleneck
//! link shared by any number of flows.
//!
//! Topology (the Mahimahi model):
//!
//! ```text
//! sender(s) ──► droptail queue ──► bottleneck (trace-driven rate)
//!                                        │  propagation delay
//!                                        ▼
//!                                    receiver ──► ACK path (delay + jitter)
//! ```
//!
//! Data packets from all flows share the FIFO queue; the link serializes
//! them at the (possibly time-varying) capacity; ACKs return on an
//! uncongested reverse path. Stochastic loss is applied at link egress so
//! a lost packet still consumed queue space and capacity.

use crate::aqm::{AnyQueue, QueueConfig, QueueDiscipline};
use crate::capacity::CapacitySchedule;
use crate::faults::{FaultEngine, FaultPlan, FaultReport};
use crate::loss::LossProcess;
use crate::packet::{AckPacket, FlowId, Packet};
use crate::pool::{PacketHandle, PacketPool};
use crate::queue::{EcnConfig, Enqueue};
use crate::sender::FlowSender;
use crate::wheel::{TimedEntry, TimerWheel};
use libra_types::{
    Bytes, CongestionControl, DetRng, Duration, Instant, PolicyRequest, PolicyService, Rate,
    RingRecorder, TraceEvent, TraceSink, Tracer, Welford, LINK_FLOW,
};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

/// Bottleneck-link configuration.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Capacity profile.
    pub capacity: CapacitySchedule,
    /// One-way propagation delay (minimum RTT = 2 × this).
    pub one_way_delay: Duration,
    /// Droptail buffer size in bytes.
    pub buffer: Bytes,
    /// Bernoulli stochastic loss probability applied at link egress.
    /// For bursty (Gilbert–Elliott) loss set [`LinkConfig::loss_process`]
    /// instead, which takes precedence when present.
    pub stochastic_loss: f64,
    /// Uniform jitter added to the ACK path, `[0, ack_jitter]`.
    pub ack_jitter: Duration,
    /// Optional explicit loss process (overrides `stochastic_loss`).
    pub loss_process: Option<LossProcess>,
    /// Optional ECN step-marking at the queue (DCTCP-style).
    pub ecn: Option<EcnConfig>,
    /// Scheduled fault injection (flaps, reordering, duplication, ACK
    /// compression, delay spikes, burst loss). Empty by default.
    pub faults: FaultPlan,
    /// Queue discipline at the bottleneck buffer (droptail by default;
    /// CoDel/PIE/token-bucket for the scenario zoo).
    pub queue: QueueConfig,
}

impl LinkConfig {
    /// A constant-rate link with the given RTT and a buffer of `bdp_mult`
    /// bandwidth-delay products — the most common experimental setup in
    /// the paper ("1 BDP buffer").
    pub fn constant(rate: Rate, min_rtt: Duration, bdp_mult: f64) -> Self {
        let bdp = Bytes::bdp(rate, min_rtt);
        LinkConfig {
            capacity: CapacitySchedule::constant(rate),
            one_way_delay: min_rtt / 2,
            buffer: Bytes::new(((bdp.get() as f64 * bdp_mult) as u64).max(3000)),
            stochastic_loss: 0.0,
            ack_jitter: Duration::ZERO,
            loss_process: None,
            ecn: None,
            faults: FaultPlan::default(),
            queue: QueueConfig::Droptail,
        }
    }

    /// Same, but with an explicit byte buffer (e.g. the paper's 150 KB).
    pub fn constant_with_buffer(rate: Rate, min_rtt: Duration, buffer: Bytes) -> Self {
        LinkConfig {
            capacity: CapacitySchedule::constant(rate),
            one_way_delay: min_rtt / 2,
            buffer,
            stochastic_loss: 0.0,
            ack_jitter: Duration::ZERO,
            loss_process: None,
            ecn: None,
            faults: FaultPlan::default(),
            queue: QueueConfig::Droptail,
        }
    }

    /// Attach a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Swap the bottleneck queue discipline (builder style).
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }
}

/// Which event-scheduler backend the simulation uses. Both produce
/// byte-identical runs — the wheel's pop order is exactly the heap's
/// `(at, seq)` order (see [`crate::wheel`]) — so this knob exists for the
/// equivalence tests and as an escape hatch, not as a semantic choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel: O(1) amortized, the default.
    #[default]
    Wheel,
    /// The original global binary heap: O(log n) per op, kept as the
    /// reference implementation.
    Heap,
}

/// Simulation-level knobs that are not properties of the link.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Record structured trace events (cycle decisions, guardrail moves,
    /// RTOs, MI closes, fault windows). Off by default: the disabled path
    /// is a single branch per emit site and never constructs an event.
    pub trace: bool,
    /// Per-flow ring-recorder capacity; the oldest events are evicted
    /// (and counted) beyond this.
    pub trace_capacity: usize,
    /// Livelock/event-storm watchdog budgets. Inactive by default: the
    /// default hot loop carries a single boolean branch per pop.
    pub budget: SimBudget,
    /// Event-scheduler backend (timer wheel by default).
    pub scheduler: SchedulerKind,
    /// Align decision ticks to a time grid: each flow's next MI tick is
    /// rounded *up* to the next multiple of this quantum, so the ticks of
    /// many flows land on the same instant and can share one batched
    /// policy inference. `None` (the default) keeps every tick exactly
    /// where the controller asked for it. Applied identically with and
    /// without an attached policy service, so batched and per-flow runs
    /// under the same quantum stay comparable.
    pub mi_quantum: Option<Duration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace: false,
            trace_capacity: 65_536,
            budget: SimBudget::default(),
            scheduler: SchedulerKind::default(),
            mi_quantum: None,
        }
    }
}

impl SimConfig {
    /// Tracing enabled at the default capacity.
    pub fn traced() -> Self {
        SimConfig {
            trace: true,
            ..SimConfig::default()
        }
    }

    /// Watchdogs armed at the [`SimBudget::standard`] limits.
    pub fn supervised() -> Self {
        SimConfig {
            budget: SimBudget::standard(),
            ..SimConfig::default()
        }
    }

    /// Swap the event-scheduler backend (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Align decision ticks to a grid (builder style); see
    /// [`SimConfig::mi_quantum`].
    pub fn with_mi_quantum(mut self, quantum: Duration) -> Self {
        self.mi_quantum = Some(quantum);
        self
    }
}

/// Round `next` up to the next multiple of `quantum` (identity when it
/// already sits on the grid). A zero quantum is treated as "no grid".
fn quantize_mi(next: Instant, quantum: Duration) -> Instant {
    let q = quantum.nanos();
    if q == 0 {
        return next;
    }
    let n = next.nanos();
    let rem = n % q;
    if rem == 0 {
        next
    } else {
        Instant::from_nanos(n - rem + q)
    }
}

/// Watchdog budgets for one simulation run. Every limit is optional and
/// `None` by default, so an unsupervised run pays one branch per event
/// pop and can never trip. A healthy run at the paper's scales sits
/// orders of magnitude under the [`SimBudget::standard`] limits; a
/// livelocked or event-storming controller hits them in bounded time
/// instead of spinning forever.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimBudget {
    /// Maximum events dispatched inside any one sim-second.
    pub max_events_per_sim_sec: Option<u64>,
    /// Maximum outstanding events in the heap at any point.
    pub max_heap_events: Option<usize>,
    /// Maximum consecutive pops that do not advance the sim clock.
    pub max_zero_progress_pops: Option<u64>,
    /// Wall-clock budget for the whole run, in milliseconds. Reads go
    /// through the audited [`crate::host_clock`] waiver and are checked
    /// every few thousand pops, so enforcement granularity is coarse.
    pub wall_limit_ms: Option<u64>,
}

impl SimBudget {
    /// Generous production limits: far above anything a sane run needs
    /// (a saturated 100 Mbps link generates ~5 × 10⁴ events per
    /// sim-second; these trip at 5 × 10⁷), tight enough to bound a
    /// runaway controller. No wall limit — that is a per-job decision.
    pub fn standard() -> Self {
        SimBudget {
            max_events_per_sim_sec: Some(50_000_000),
            max_heap_events: Some(8_000_000),
            max_zero_progress_pops: Some(5_000_000),
            wall_limit_ms: None,
        }
    }

    /// Attach a wall-clock limit (builder style).
    pub fn with_wall_limit_ms(mut self, ms: u64) -> Self {
        self.wall_limit_ms = Some(ms);
        self
    }

    /// Whether any limit is armed.
    pub fn is_active(&self) -> bool {
        self.max_events_per_sim_sec.is_some()
            || self.max_heap_events.is_some()
            || self.max_zero_progress_pops.is_some()
            || self.wall_limit_ms.is_some()
    }
}

/// Which watchdog budget a run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Too many events dispatched inside one sim-second.
    EventStorm,
    /// The event heap outgrew its cap.
    HeapGrowth,
    /// Too many consecutive pops without the sim clock advancing.
    Livelock,
    /// The run exceeded its wall-clock budget.
    WallDeadline,
}

impl BudgetKind {
    /// Stable lower-case label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            BudgetKind::EventStorm => "event-storm",
            BudgetKind::HeapGrowth => "heap-growth",
            BudgetKind::Livelock => "livelock",
            BudgetKind::WallDeadline => "wall-deadline",
        }
    }
}

/// Diagnostic record of a tripped watchdog, returned by
/// [`Simulation::try_run`] (and carried as the panic payload by
/// [`Simulation::run`] so supervisors can downcast it). All fields
/// except a [`BudgetKind::WallDeadline`]'s timing are deterministic
/// functions of `(configuration, seed)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetTrip {
    /// Which budget tripped.
    pub kind: BudgetKind,
    /// Sim time of the trip, in nanoseconds.
    pub at_ns: u64,
    /// The configured limit that was exceeded.
    pub limit: u64,
    /// Human-readable description (deterministic: no host readings).
    pub detail: String,
}

impl std::fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sim budget trip [{}] at t={:.3}s: {}",
            self.kind.label(),
            self.at_ns as f64 / 1e9,
            self.detail
        )
    }
}

/// Per-flow experiment configuration.
pub struct FlowConfig {
    /// The congestion controller under test.
    pub cca: Box<dyn CongestionControl>,
    /// First transmission time.
    pub start: Instant,
    /// Transmissions cease at this time.
    pub stop: Instant,
    /// Segment size (default 1500).
    pub mss: u64,
    /// Whether to time controller callbacks (CPU-overhead metric).
    pub measure_compute: bool,
}

impl FlowConfig {
    /// A bulk flow running from `start` to `stop` with default MSS.
    pub fn new(cca: Box<dyn CongestionControl>, start: Instant, stop: Instant) -> Self {
        FlowConfig {
            cca,
            start,
            stop,
            mss: 1500,
            measure_compute: true,
        }
    }

    /// A bulk flow covering the whole experiment.
    pub fn whole_run(cca: Box<dyn CongestionControl>, until: Instant) -> Self {
        FlowConfig::new(cca, Instant::ZERO, until)
    }
}

#[derive(Debug)]
enum Event {
    FlowStart(FlowId),
    FlowStop(FlowId),
    PacerWake(FlowId),
    ServiceDone,
    AckArrive(AckPacket),
    /// Deliver the batch of same-timestamp ACKs queued for this flow at
    /// the event's time (see [`AckBatch`]). Only scheduled when ACK
    /// merging is enabled (fault plans or ACK jitter).
    AckBatch(FlowId),
    MiTick(FlowId),
    RtoCheck(FlowId, u64),
    QueueSample,
}

/// The event scheduler: the timer wheel by default, with the original
/// binary heap retained as the reference backend (the equivalence tests
/// replay runs through both and require identical results).
enum EventQueue {
    Heap(BinaryHeap<Reverse<TimedEntry<Event>>>),
    Wheel(Box<TimerWheel<Event>>),
}

impl EventQueue {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            // Outstanding events scale with flows × window, not duration;
            // a few KiB of headroom removes regrowth from the hot loop.
            SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(4096)),
            SchedulerKind::Wheel => EventQueue::Wheel(Box::default()),
        }
    }

    #[inline]
    fn push(&mut self, entry: TimedEntry<Event>) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(entry)),
            EventQueue::Wheel(w) => w.push(entry),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<TimedEntry<Event>> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| e),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }
}

/// ACKs for one flow that all arrive at the same instant, delivered by a
/// single [`Event::AckBatch`] pop instead of one heap event each.
///
/// Exactness: merging ACK `b` into an earlier ACK `a`'s batch (same flow,
/// same arrival time `t`) reproduces the heap's dispatch order iff no
/// other event was scheduled at exactly `t` between `a`'s scheduling and
/// `b`'s — otherwise that event's sequence number would interleave
/// between them. [`Simulation::schedule`] therefore closes every open
/// batch at time `t` whenever *any* event is scheduled at `t` (the
/// conservative dirty rule); a closed batch stops accepting merges and a
/// later same-`(flow, t)` ACK opens a fresh batch behind the intervening
/// event. Batching is only enabled when fault plans or ACK jitter can
/// actually produce same-instant ACKs — the clean path's arrival times
/// strictly increase, so it schedules plain [`Event::AckArrive`]s.
struct AckBatch {
    at: Instant,
    /// Accepting merges. Cleared by the dirty rule or at dispatch.
    open: bool,
    first: AckPacket,
    rest: Vec<AckPacket>,
}

/// Results for one flow after a run.
pub struct FlowReport {
    /// Flow identity.
    pub id: FlowId,
    /// Controller name.
    pub name: &'static str,
    /// Configured start/stop.
    pub start: Instant,
    /// Configured stop.
    pub stop: Instant,
    /// Bytes handed to the network.
    pub sent_bytes: u64,
    /// Bytes acknowledged.
    pub delivered_bytes: u64,
    /// Packets acknowledged.
    pub acked_packets: u64,
    /// Packets declared lost.
    pub lost_packets: u64,
    /// Average goodput over the flow's configured lifetime.
    pub avg_goodput: Rate,
    /// RTT sample statistics (milliseconds).
    pub rtt_ms: Welford,
    /// Fraction of resolved packets that were lost.
    pub loss_fraction: f64,
    /// `(seconds, Mbps)` goodput series.
    pub goodput_series: Vec<(f64, f64)>,
    /// Sparse `(seconds, ms)` RTT series.
    pub rtt_series: Vec<(f64, f64)>,
    /// Streaming P² estimate of the 95th-percentile RTT in milliseconds
    /// (0 when no RTT samples were observed).
    pub rtt_p95_ms: f64,
    /// ECN congestion echoes received.
    pub ecn_echoes: u64,
    /// Wall-clock nanoseconds spent inside the controller.
    pub compute_ns: u64,
    /// Policy responses touched by an injected boundary fault (0 without
    /// a policy fault plan).
    pub policy_faults: u64,
    /// Policy requests quarantined for invalid state vectors.
    pub policy_quarantines: u64,
    /// Structured trace events for this flow, in emit order (empty when
    /// tracing is disabled).
    pub trace: Vec<TraceEvent>,
    /// Events evicted from the flow's ring recorder (0 = complete stream).
    pub trace_dropped: u64,
    /// The controller itself, returned for post-run inspection.
    pub cca: Box<dyn CongestionControl>,
}

/// Results for the bottleneck link.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Bytes the capacity profile could have carried.
    pub capacity_bytes: f64,
    /// Bytes actually delivered to receivers (all flows).
    pub delivered_bytes: u64,
    /// `delivered / capacity` (clamped to [0, 1] against rounding).
    pub utilization: f64,
    /// Time-averaged queue occupancy in bytes.
    pub mean_queue_bytes: f64,
    /// Queue-occupancy samples (bytes) at the sampling cadence.
    pub queue_samples: Welford,
    /// Packets dropped by the queue discipline (tail, AQM early, and AQM
    /// head drops together).
    pub tail_drops: u64,
    /// Packets dropped by the stochastic loss process.
    pub stochastic_drops: u64,
    /// Bytes offered to (admitted into) the bottleneck queue.
    pub queue_admitted_bytes: u64,
    /// Bytes refused at enqueue (tail drop, PIE early drop, policer).
    pub queue_dropped_bytes: u64,
    /// Bytes dequeued into the link.
    pub queue_dequeued_bytes: u64,
    /// Bytes admitted and later shed from the head by an AQM control law
    /// (CoDel). Always zero for droptail.
    pub queue_aqm_dropped_bytes: u64,
    /// Bytes still sitting in the queue when the run ended.
    pub queue_residual_bytes: u64,
}

/// Results of one simulation run.
pub struct SimReport {
    /// Duration simulated.
    pub duration: Duration,
    /// One report per flow, in `add_flow` order.
    pub flows: Vec<FlowReport>,
    /// Link-level aggregates.
    pub link: LinkReport,
    /// Per-fault-type activation counters (all zero without a fault plan).
    pub faults: FaultReport,
    /// Link-level trace events (scheduled fault windows), tagged
    /// [`LINK_FLOW`]; empty when tracing is disabled.
    pub link_trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Jain's fairness index over flow goodputs (allocation-free; same
    /// formula and edge cases as [`libra_types::jain_index`]).
    pub fn jain_index(&self) -> f64 {
        if self.flows.is_empty() {
            return 1.0;
        }
        let (mut sum, mut sumsq) = (0.0_f64, 0.0_f64);
        for f in &self.flows {
            let x = f.avg_goodput.mbps();
            sum += x;
            sumsq += x * x;
        }
        if sumsq <= 0.0 {
            return 1.0;
        }
        sum * sum / (self.flows.len() as f64 * sumsq)
    }

    /// Mean RTT across flows, weighted by sample counts.
    pub fn mean_rtt_ms(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0u64);
        for f in &self.flows {
            sum += f.rtt_ms.mean() * f.rtt_ms.count() as f64;
            n += f.rtt_ms.count();
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// The simulation itself. Build with [`Simulation::new`], add flows, then
/// [`run`](Simulation::run).
pub struct Simulation {
    now: Instant,
    events: EventQueue,
    eseq: u64,
    // Link state.
    capacity: CapacitySchedule,
    queue: AnyQueue,
    /// Slab arena for every packet resident in the network (queued or in
    /// service); disciplines store 8-byte handles into it.
    pool: PacketPool,
    busy: bool,
    in_service: Option<PacketHandle>,
    one_way_delay: Duration,
    loss: LossProcess,
    ecn: Option<EcnConfig>,
    ack_jitter: Duration,
    loss_rng: DetRng,
    jitter_rng: DetRng,
    faults: FaultEngine,
    /// False when the fault plan is empty — lets the per-packet ACK path
    /// skip the fault engine entirely.
    faults_active: bool,
    flap_windows: Vec<(Instant, Instant)>,
    /// Cached capacity-segment index for the service loop. Service starts
    /// are monotone in time, so the segment advances amortized-O(1)
    /// instead of re-binary-searching the schedule per packet.
    cap_cursor: usize,
    // Flows.
    flows: Vec<FlowSender>,
    /// Scratch buffer for [`FlowSender::try_emit`], reused across pumps
    /// so the emit path never allocates.
    emit_scratch: Vec<Packet>,
    /// Whether same-instant ACKs are merged into [`AckBatch`]es. Enabled
    /// only when fault plans or ACK jitter can produce ties; the clean
    /// path keeps its original one-event-per-ACK schedule untouched.
    merge_acks: bool,
    /// Pending ACK batches per flow (index-aligned with `flows`), in
    /// creation order. Not time-ordered under jitter — dispatch scans for
    /// the first batch matching the event's timestamp.
    ack_batches: Vec<VecDeque<AckBatch>>,
    /// `(at_nanos, flow)` of batches still accepting merges — the dirty
    /// list the close-on-schedule rule walks. Nearly always tiny.
    open_ats: Vec<(u64, u32)>,
    /// Shared batched-inference service for learned controllers. When
    /// attached, decision ticks go through the two-phase submit/resolve
    /// boundary and same-instant ticks share one forward pass.
    policy: Option<Rc<RefCell<dyn PolicyService>>>,
    /// An event popped one step too far by the decision-tick gather;
    /// the main loop consumes it before touching the queue again.
    stashed: Option<TimedEntry<Event>>,
    /// Reused policy-request pool (inner buffers keep their capacity).
    policy_requests: Vec<PolicyRequest>,
    /// Reused gather buffers for one batched decision tick.
    batch_ids: Vec<FlowId>,
    batch_submitted: Vec<bool>,
    // Tracing.
    cfg: SimConfig,
    /// One recorder per flow when tracing is on (index-aligned with
    /// `flows`); empty when tracing is off.
    recorders: Vec<Rc<RefCell<RingRecorder>>>,
    link_recorder: Option<Rc<RefCell<RingRecorder>>>,
    // Metrics.
    delivered_link_bytes: u64,
    stochastic_drops: u64,
    queue_samples: Welford,
    sample_period: Duration,
    metrics_bin: Duration,
}

impl Simulation {
    /// Create a simulation over `link`, seeded for determinism.
    pub fn new(link: LinkConfig, seed: u64) -> Self {
        Simulation::with_config(link, seed, SimConfig::default())
    }

    /// Like [`Simulation::new`], with explicit simulation-level knobs.
    pub fn with_config(link: LinkConfig, seed: u64, cfg: SimConfig) -> Self {
        let mut root = DetRng::new(seed);
        let flap_windows = link.faults.outage_windows();
        let faults_active = !link.faults.is_empty();
        // Scheduled fault windows are known up front; record them once at
        // construction so the timeline shows what the link will do without
        // any per-packet tracing cost.
        let link_recorder = if cfg.trace && faults_active {
            let rec = Rc::new(RefCell::new(RingRecorder::new(cfg.trace_capacity)));
            {
                let mut r = rec.borrow_mut();
                for ev in &link.faults.events {
                    r.emit(TraceEvent::FaultWindow {
                        flow: LINK_FLOW,
                        at_ns: ev.from.nanos(),
                        until_ns: ev.to.nanos(),
                        fault: ev.kind.label().to_string(),
                    });
                }
            }
            Some(rec)
        } else {
            None
        };
        // Forked in a fixed order; the first three streams predate the AQM
        // layer, so droptail runs replay byte-identically. The AQM stream
        // only feeds PIE's early-drop coin flips.
        let loss_rng = root.fork("link-loss");
        let jitter_rng = root.fork("ack-jitter");
        let faults_rng = root.fork("faults");
        let aqm_rng = root.fork("aqm");
        let merge_acks = faults_active || !link.ack_jitter.is_zero();
        Simulation {
            now: Instant::ZERO,
            events: EventQueue::new(cfg.scheduler),
            eseq: 0,
            // Link-flap faults become zero-capacity windows on the schedule:
            // packets in service wait the outage out like a trace blackout.
            capacity: link.capacity.with_outages(&flap_windows),
            queue: AnyQueue::build(link.queue, link.buffer, aqm_rng),
            // Resident packets are bounded by buffer bytes / MSS plus the
            // one in service; pre-size for a typical BDP-scale buffer.
            pool: PacketPool::with_capacity(256),
            busy: false,
            in_service: None,
            one_way_delay: link.one_way_delay,
            loss: link
                .loss_process
                .unwrap_or_else(|| LossProcess::bernoulli(link.stochastic_loss)),
            ecn: link.ecn,
            ack_jitter: link.ack_jitter,
            loss_rng,
            jitter_rng,
            faults: FaultEngine::new(&link.faults, faults_rng),
            faults_active,
            flap_windows,
            cap_cursor: 0,
            flows: Vec::new(),
            emit_scratch: Vec::with_capacity(64),
            merge_acks,
            ack_batches: Vec::new(),
            open_ats: Vec::new(),
            policy: None,
            stashed: None,
            policy_requests: Vec::new(),
            batch_ids: Vec::new(),
            batch_submitted: Vec::new(),
            cfg,
            recorders: Vec::new(),
            link_recorder,
            delivered_link_bytes: 0,
            stochastic_drops: 0,
            queue_samples: Welford::new(),
            sample_period: Duration::from_millis(50),
            metrics_bin: Duration::from_millis(100),
        }
    }

    /// Override the goodput-series bin width (default 100 ms).
    pub fn set_metrics_bin(&mut self, bin: Duration) {
        self.metrics_bin = bin;
    }

    /// Attach a shared policy service (e.g. `libra_rl::PolicyServer`).
    /// Decision ticks then run through the two-phase submit/resolve
    /// boundary: every MI tick scheduled for the same instant submits its
    /// state first, the service evaluates all submissions in one batched
    /// forward pass, and each tick completes in the original dispatch
    /// order — byte-identical to per-flow inference (see
    /// [`Simulation::dispatch_mi_batch`]). Evaluation is synchronous
    /// inside the event loop; no threads are involved.
    pub fn attach_policy(&mut self, policy: Rc<RefCell<dyn PolicyService>>) {
        self.policy = Some(policy);
    }

    /// Add a flow; returns its id.
    pub fn add_flow(&mut self, cfg: FlowConfig) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        let init_rtt = self.one_way_delay * 2;
        let mut sender = FlowSender::new(
            id,
            cfg.cca,
            cfg.mss,
            cfg.start,
            cfg.stop,
            init_rtt,
            self.metrics_bin,
        );
        sender.measure_compute = cfg.measure_compute;
        if self.cfg.trace {
            let (tracer, rec) = Tracer::ring(self.cfg.trace_capacity, id.0);
            // The controller and the transport share the flow's recorder,
            // so cycle decisions interleave with RTOs/MI closes in emit
            // order.
            sender.cca.attach_tracer(tracer.clone());
            sender.tracer = tracer;
            self.recorders.push(rec);
        }
        self.schedule(cfg.start, Event::FlowStart(id));
        self.schedule(cfg.stop, Event::FlowStop(id));
        // MI clock starts one init-RTT after the flow starts.
        self.schedule(cfg.start + init_rtt, Event::MiTick(id));
        self.schedule(
            cfg.start + Duration::from_millis(200),
            Event::RtoCheck(id, 0),
        );
        self.flows.push(sender);
        self.ack_batches.push(VecDeque::new());
        id
    }

    fn schedule(&mut self, at: Instant, event: Event) {
        // The dirty rule behind exact ACK batching: scheduling *any*
        // event at time `t` seals every batch still open at `t`, because
        // this event's sequence number now sits between the batch's
        // existing members and any future merge candidate (see
        // [`AckBatch`]). `open_ats` is empty on the clean path.
        if !self.open_ats.is_empty() {
            self.close_open_batches_at(at);
        }
        self.eseq += 1;
        self.events.push(TimedEntry {
            at,
            seq: self.eseq,
            event,
        });
    }

    /// Seal every ACK batch still open at exactly `at` (cold path: only
    /// reached when fault plans or jitter have batches in flight).
    fn close_open_batches_at(&mut self, at: Instant) {
        let nanos = at.nanos();
        let mut i = 0;
        while i < self.open_ats.len() {
            let (t, flow) = self.open_ats[i];
            if t == nanos {
                for batch in self.ack_batches[flow as usize].iter_mut() {
                    if batch.open && batch.at == at {
                        batch.open = false;
                    }
                }
                self.open_ats.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Run until `until`; consumes the simulation and returns the report.
    ///
    /// If a [`SimBudget`] watchdog trips, panics via
    /// `std::panic::panic_any` with the [`BudgetTrip`] as payload so a
    /// supervising `catch_unwind` can downcast and classify it. Callers
    /// that want the trip as a value use [`Simulation::try_run`].
    pub fn run(self, until: Instant) -> SimReport {
        match self.try_run(until) {
            Ok(report) => report,
            Err(trip) => std::panic::panic_any(trip),
        }
    }

    /// Like [`Simulation::run`], but a tripped watchdog budget aborts
    /// the run and comes back as `Err(BudgetTrip)` instead of a panic.
    // Audited taint barrier: the wall stamp only arms the watchdog
    // abort; it never enters the SimReport.
    // lint: allow(nondeterminism_taint)
    pub fn try_run(mut self, until: Instant) -> Result<SimReport, BudgetTrip> {
        self.schedule(
            Instant::ZERO + Duration::from_millis(25),
            Event::QueueSample,
        );
        let budget = self.cfg.budget.clone();
        let budget_active = budget.is_active();
        // Watchdog state: consecutive same-timestamp pops, events inside
        // the current sim-second, total pops (wall-check cadence), and
        // the wall stamp (taken only when a wall limit is armed).
        let mut zero_progress: u64 = 0;
        let mut window_sec: u64 = u64::MAX;
        let mut window_events: u64 = 0;
        let mut pops: u64 = 0;
        let wall_start = budget.wall_limit_ms.map(|_| crate::host_clock::stamp());
        // The decision-tick gather may pop one event too far; it parks
        // that event in `stashed`, which must drain before the queue.
        while let Some(entry) = self.stashed.take().or_else(|| self.events.pop()) {
            if entry.at > until {
                break;
            }
            debug_assert!(entry.at >= self.now, "event time went backwards");
            // `checked-invariants`: the monotonic-sim-clock promise is a
            // hard assert, not just a debug check — a backwards event
            // would silently corrupt every downstream time integral.
            #[cfg(feature = "checked-invariants")]
            assert!(entry.at >= self.now, "event time went backwards");
            if budget_active {
                if let Some(trip) = self.check_budget(
                    &budget,
                    entry.at,
                    &mut zero_progress,
                    &mut window_sec,
                    &mut window_events,
                    &mut pops,
                    wall_start.as_ref(),
                ) {
                    return Err(trip);
                }
            }
            self.now = entry.at;
            self.dispatch(entry.event, until);
            // `checked-invariants`: the packet-pool byte ledger must
            // balance after every event — every live slab byte is either
            // queued or in service, so a leak or double free trips here.
            #[cfg(feature = "checked-invariants")]
            {
                let in_service_bytes = self.in_service.map_or(0, |h| self.pool.get(h).bytes);
                assert_eq!(
                    self.pool.live_bytes(),
                    self.queue.occupied_bytes() + in_service_bytes,
                    "packet-pool byte ledger out of balance"
                );
            }
        }
        self.now = until;
        Ok(self.finalize(until))
    }

    /// One watchdog tick: update counters for the event about to be
    /// dispatched at `at` and return a trip if any armed limit is
    /// exceeded. Kept out of line so the unsupervised hot loop stays a
    /// single branch.
    #[allow(clippy::too_many_arguments)]
    fn check_budget(
        &self,
        budget: &SimBudget,
        at: Instant,
        zero_progress: &mut u64,
        window_sec: &mut u64,
        window_events: &mut u64,
        pops: &mut u64,
        wall_start: Option<&crate::host_clock::HostStamp>,
    ) -> Option<BudgetTrip> {
        *pops += 1;
        if at == self.now {
            *zero_progress += 1;
        } else {
            *zero_progress = 0;
        }
        if let Some(limit) = budget.max_zero_progress_pops {
            if *zero_progress > limit {
                return Some(BudgetTrip {
                    kind: BudgetKind::Livelock,
                    at_ns: at.nanos(),
                    limit,
                    detail: format!(
                        "{} consecutive events without the sim clock advancing (limit {limit})",
                        *zero_progress
                    ),
                });
            }
        }
        if let Some(limit) = budget.max_events_per_sim_sec {
            let sec = at.nanos() / 1_000_000_000;
            if sec != *window_sec {
                *window_sec = sec;
                *window_events = 0;
            }
            *window_events += 1;
            if *window_events > limit {
                return Some(BudgetTrip {
                    kind: BudgetKind::EventStorm,
                    at_ns: at.nanos(),
                    limit,
                    detail: format!("more than {limit} events inside sim-second {sec}"),
                });
            }
        }
        if let Some(limit) = budget.max_heap_events {
            if self.events.len() > limit {
                return Some(BudgetTrip {
                    kind: BudgetKind::HeapGrowth,
                    at_ns: at.nanos(),
                    limit: limit as u64,
                    detail: format!(
                        "{} outstanding events in the heap (limit {limit})",
                        self.events.len()
                    ),
                });
            }
        }
        if let (Some(limit_ms), Some(start)) = (budget.wall_limit_ms, wall_start) {
            // Wall reads are comparatively expensive and nondeterministic;
            // amortize them over 4096 pops (plus the very first, so a zero
            // budget trips immediately).
            if *pops & 0xFFF == 1 && start.elapsed_ms() > limit_ms as f64 {
                return Some(BudgetTrip {
                    kind: BudgetKind::WallDeadline,
                    at_ns: at.nanos(),
                    limit: limit_ms,
                    detail: format!("exceeded wall budget of {limit_ms} ms"),
                });
            }
        }
        None
    }

    fn dispatch(&mut self, event: Event, until: Instant) {
        match event {
            Event::FlowStart(id) => {
                self.flows[id.index()].activate(self.now);
                self.pump_flow(id);
            }
            Event::FlowStop(id) => {
                self.flows[id.index()].deactivate();
            }
            Event::PacerWake(id) => {
                let flow = &mut self.flows[id.index()];
                if flow.pending_wake.is_some_and(|t| t <= self.now) {
                    flow.pending_wake = None;
                }
                self.pump_flow(id);
            }
            Event::ServiceDone => {
                self.on_service_done();
            }
            Event::AckArrive(ack) => {
                let id = ack.flow;
                let _losses = self.flows[id.index()].on_ack_packet(&ack, self.now);
                self.pump_flow(id);
            }
            Event::AckBatch(id) => {
                // Jitter can schedule a later batch for an earlier time,
                // so the per-flow deque is not time-ordered: find the
                // first batch due now (creation order matches event seq
                // order among equal timestamps) rather than pop_front.
                let deque = &mut self.ack_batches[id.index()];
                let pos = deque
                    .iter()
                    .position(|b| b.at == self.now)
                    .expect("AckBatch event without a matching batch");
                let batch = deque.remove(pos).expect("position() verified the index");
                if batch.open {
                    // Still on the dirty list: retire its entry.
                    let nanos = self.now.nanos();
                    self.open_ats.retain(|&(t, f)| t != nanos || f != id.0);
                }
                // Per-ACK processing is identical to the unbatched world:
                // each ACK is followed by its own pump (coalescing the
                // pumps would diverge from the heap's dispatch order).
                self.flows[id.index()].on_ack_packet(&batch.first, self.now);
                self.pump_flow(id);
                for ack in &batch.rest {
                    self.flows[id.index()].on_ack_packet(ack, self.now);
                    self.pump_flow(id);
                }
            }
            Event::MiTick(id) => {
                if self.policy.is_some() {
                    self.dispatch_mi_batch(id, until);
                    return;
                }
                let mut next = self.flows[id.index()].on_mi_tick(self.now);
                if let Some(q) = self.cfg.mi_quantum {
                    next = quantize_mi(next, q);
                }
                if next <= until {
                    self.schedule(next, Event::MiTick(id));
                }
                self.pump_flow(id);
            }
            Event::RtoCheck(id, generation) => {
                let flow = &mut self.flows[id.index()];
                if generation < flow.rto_generation {
                    return; // stale
                }
                let fired = flow.on_rto_check(self.now);
                flow.rto_generation += 1;
                let gen = flow.rto_generation;
                let next = if fired {
                    self.now + self.flows[id.index()].rto()
                } else {
                    self.flows[id.index()].last_progress() + self.flows[id.index()].rto()
                };
                let next = next.max(self.now + Duration::from_millis(10));
                if next <= until {
                    self.schedule(next, Event::RtoCheck(id, gen));
                }
                if fired {
                    self.pump_flow(id);
                }
            }
            Event::QueueSample => {
                self.queue_samples
                    .update(self.queue.occupied_bytes() as f64);
                let next = self.now + self.sample_period;
                if next <= until {
                    self.schedule(next, Event::QueueSample);
                }
            }
        }
    }

    /// One batched decision tick: gather every `MiTick` scheduled for
    /// this exact instant, close all intervals and collect policy
    /// submissions (phase 1, in pop order), serve the submissions in one
    /// batched forward pass (phase 2), then complete each tick — resolve,
    /// next-tick scheduling, pump — in the same pop order (phase 3).
    ///
    /// ## Why this is byte-identical to sequential dispatch
    ///
    /// * The gather preserves pop order: same-instant events dispatch in
    ///   sequence-number order, and anything newly scheduled at the same
    ///   instant gets a *higher* sequence number than every gathered
    ///   tick, so pulling the run of `MiTick`s forward reorders nothing.
    ///   The one event popped too far is stashed for the main loop.
    /// * Closing interval k+1 before completing tick k is safe because
    ///   `close_mi` and the controller's submit half read only flow-local
    ///   state — never the queue or the link.
    /// * All `schedule()` calls (next ticks, pacer wakes, service
    ///   completions from pumping) still happen in exactly the sequential
    ///   path's order, so every event gets the identical sequence number.
    /// * Eval-mode batched inference is bit-identical to per-flow
    ///   inference (`libra-nn`'s `matmat` contract), so the resolved
    ///   actions match the inline path bit for bit.
    ///
    /// Wall-clock inference time is split evenly across the batch into
    /// the members' `compute_ns` (wall time is excluded from determinism
    /// guarantees); the `PolicyBatch` trace event carries only the
    /// deterministic batch size.
    // Audited taint barrier: the wall stamp feeds only compute_ns, the
    // one report field documented as a host measurement and excluded
    // from determinism guarantees.
    // lint: allow(nondeterminism_taint)
    fn dispatch_mi_batch(&mut self, first: FlowId, until: Instant) {
        let mut ids = std::mem::take(&mut self.batch_ids);
        let mut submitted = std::mem::take(&mut self.batch_submitted);
        let mut requests = std::mem::take(&mut self.policy_requests);
        ids.clear();
        submitted.clear();
        ids.push(first);
        while let Some(entry) = self.events.pop() {
            match entry.event {
                Event::MiTick(id) if entry.at == self.now => ids.push(id),
                _ => {
                    debug_assert!(self.stashed.is_none(), "gather with a stash in flight");
                    self.stashed = Some(entry);
                    break;
                }
            }
        }
        // Phase 1: close every interval; learned controllers submit their
        // state vectors into the reused request pool.
        let mut used = 0usize;
        for &id in &ids {
            if requests.len() == used {
                requests.push(PolicyRequest::default());
            }
            let req = &mut requests[used];
            req.reset(id.0);
            req.at = self.now;
            let sub = self.flows[id.index()].mi_tick_submit(self.now, &mut req.state);
            submitted.push(sub);
            if sub {
                used += 1;
            }
        }
        // Phase 2: one batched forward pass over all submissions, sorted
        // by flow id (the policy service's composition contract).
        let mut share_ns = 0u64;
        if used > 0 {
            requests[..used].sort_unstable_by_key(|r| r.flow);
            let policy = Rc::clone(self.policy.as_ref().expect("batched tick without a policy"));
            let measure = ids.iter().any(|&id| self.flows[id.index()].measure_compute);
            let t0 = measure.then(crate::host_clock::stamp);
            policy.borrow_mut().evaluate(&mut requests[..used]);
            // The batch's cost amortizes across its members — that
            // amortization *is* the number the batched entries report.
            share_ns = t0.map_or(0, |t| t.elapsed_ns() / used as u64);
            let rep = requests[0].flow as usize;
            let at_ns = self.now.nanos();
            let size = used as u32;
            self.flows[rep]
                .tracer
                .emit_with(|| TraceEvent::PolicyBatch {
                    flow: LINK_FLOW,
                    at_ns,
                    size,
                });
        }
        // Phase 3: complete each tick in pop order.
        for (k, &id) in ids.iter().enumerate() {
            if submitted[k] {
                let row = requests[..used]
                    .binary_search_by_key(&id.0, |r| r.flow)
                    .expect("submitted flow missing from policy batch");
                let req = &requests[row];
                let at_ns = self.now.nanos();
                let flow = &mut self.flows[id.index()];
                // Harvest per-flow fault/quarantine marks before the
                // resolve consumes the (possibly fallback) action.
                if let Some(fault) = req.fault {
                    flow.policy_faults += 1;
                    flow.tracer.emit_with(|| TraceEvent::PolicyFault {
                        flow: id.0,
                        at_ns,
                        fault: fault.to_string(),
                    });
                }
                if req.quarantined {
                    flow.policy_quarantines += 1;
                    flow.tracer
                        .emit_with(|| TraceEvent::Quarantine { flow: id.0, at_ns });
                }
                flow.mi_tick_resolve(&req.action);
                if flow.measure_compute {
                    flow.compute_ns += share_ns;
                }
            }
            let mut next = self.flows[id.index()].mi_tick_finish(self.now);
            if let Some(q) = self.cfg.mi_quantum {
                next = quantize_mi(next, q);
            }
            if next <= until {
                self.schedule(next, Event::MiTick(id));
            }
            self.pump_flow(id);
        }
        self.batch_ids = ids;
        self.batch_submitted = submitted;
        self.policy_requests = requests;
    }

    /// Let `id` emit whatever its pacer allows, feed the bottleneck, and
    /// schedule the next pacer wake.
    fn pump_flow(&mut self, id: FlowId) {
        // Borrow dance: `admit_packet` needs `&mut self`, so the scratch
        // buffer is temporarily moved out (both moves are pointer swaps).
        let mut scratch = std::mem::take(&mut self.emit_scratch);
        scratch.clear();
        let next_wake = self.flows[id.index()].try_emit(self.now, &mut scratch);
        for packet in scratch.drain(..) {
            self.admit_packet(packet);
        }
        self.emit_scratch = scratch;
        if let Some(wake) = next_wake {
            let flow = &mut self.flows[id.index()];
            // Skip if an earlier-or-equal wake is already queued.
            if flow.pending_wake.is_none_or(|t| t > wake) {
                flow.pending_wake = Some(wake);
                self.schedule(wake, Event::PacerWake(id));
            }
        }
    }

    fn admit_packet(&mut self, packet: Packet) {
        match self
            .queue
            .enqueue_with_ecn(packet, &mut self.pool, self.now.nanos(), self.ecn)
        {
            Enqueue::Dropped => {
                // Tail drop: silently vanishes; the sender finds out via
                // the reordering rule or RTO. (Refused packets never touch
                // the pool — the discipline allocates only on accept.)
            }
            Enqueue::Accepted => {
                if !self.busy {
                    self.start_service();
                }
            }
        }
    }

    fn start_service(&mut self) {
        debug_assert!(!self.busy);
        if let Some(handle) = self.queue.dequeue(&mut self.pool, self.now.nanos()) {
            let bytes = self.pool.get(handle).bytes;
            let finish = self
                .capacity
                .service_finish_hinted(&mut self.cap_cursor, self.now, bytes);
            self.busy = true;
            self.in_service = Some(handle);
            if finish != Instant::FAR_FUTURE {
                self.schedule(finish, Event::ServiceDone);
            }
            // A permanently dead link never completes service; packets pile
            // up in the queue and flows time out — exactly the blackout
            // behaviour we want.
        }
    }

    fn on_service_done(&mut self) {
        // Invariant: a ServiceDone event is only ever scheduled by
        // start_service, which sets `in_service` first.
        let handle = self.in_service.take().expect("service done without packet");
        let packet = self.pool.release(handle);
        self.busy = false;
        // Stochastic loss on the wire (after consuming capacity).
        if self.loss.drop(&mut self.loss_rng) {
            self.stochastic_drops += 1;
        } else {
            let jitter = if self.ack_jitter.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_nanos(self.jitter_rng.uniform_u64(0, self.ack_jitter.nanos() + 1))
            };
            let ack_at = self.now + self.one_way_delay * 2 + jitter;
            // Active fault windows may drop the packet (burst loss), shift
            // the ACK (reorder / delay spike / compression), or duplicate
            // it. With an empty plan, skip the engine entirely — this is
            // per-packet work.
            let (fate, ack_at) = if self.faults_active {
                self.faults.ack_fate(self.now, ack_at)
            } else {
                (crate::faults::AckFate::CLEAN, ack_at)
            };
            if !fate.dropped {
                self.delivered_link_bytes += packet.bytes;
                let ack = AckPacket {
                    flow: packet.flow,
                    seq: packet.seq,
                    bytes: packet.bytes,
                    sent_at: packet.sent_at,
                    delivered_at_send: packet.delivered_at_send,
                    app_limited: packet.app_limited,
                    ecn: packet.ecn,
                };
                if let Some(after) = fate.duplicate_after {
                    self.schedule(ack_at + after, Event::AckArrive(ack));
                }
                if self.merge_acks {
                    self.enqueue_ack(ack, ack_at);
                } else {
                    // Clean path: arrival times strictly increase, so
                    // merging is impossible — keep the original schedule.
                    self.schedule(ack_at, Event::AckArrive(ack));
                }
            }
        }
        if !self.queue.is_empty() {
            self.start_service();
        }
    }

    /// Route an ACK through the batching layer: merge into the flow's
    /// open batch at `at` if one survives, else open a fresh batch (its
    /// dispatch event is scheduled *before* the batch is marked open, so
    /// the dirty rule cannot seal it prematurely — but it does seal any
    /// other batch still open at `at`, as exactness demands).
    fn enqueue_ack(&mut self, ack: AckPacket, at: Instant) {
        let fi = ack.flow.index();
        if let Some(batch) = self.ack_batches[fi]
            .iter_mut()
            .find(|b| b.open && b.at == at)
        {
            batch.rest.push(ack);
            return;
        }
        self.schedule(at, Event::AckBatch(ack.flow));
        self.ack_batches[fi].push_back(AckBatch {
            at,
            open: true,
            first: ack,
            rest: Vec::new(),
        });
        self.open_ats.push((at.nanos(), ack.flow.0));
    }

    fn finalize(mut self, until: Instant) -> SimReport {
        let capacity_bytes = self.capacity.capacity_bytes(Instant::ZERO, until);
        let mean_queue = self.queue.mean_occupancy(until.nanos());
        let counters = self.queue.counters();
        let link = LinkReport {
            capacity_bytes,
            delivered_bytes: self.delivered_link_bytes,
            utilization: if capacity_bytes > 0.0 {
                (self.delivered_link_bytes as f64 / capacity_bytes).min(1.0)
            } else {
                0.0
            },
            mean_queue_bytes: mean_queue,
            queue_samples: self.queue_samples,
            tail_drops: counters.drops,
            stochastic_drops: self.stochastic_drops,
            queue_admitted_bytes: counters.admitted_bytes,
            queue_dropped_bytes: counters.dropped_bytes,
            queue_dequeued_bytes: counters.dequeued_bytes,
            queue_aqm_dropped_bytes: counters.aqm_dropped_bytes,
            queue_residual_bytes: self.queue.occupied_bytes(),
        };
        let mut fault_report = self.faults.report;
        fault_report.link_flaps = self
            .flap_windows
            .iter()
            .filter(|&&(from, _)| from < until)
            .count() as u64;
        let recorders = self.recorders;
        let flows = self
            .flows
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                let span = f.stop.min(until).saturating_since(f.start);
                let (trace, trace_dropped) = match recorders.get(i) {
                    Some(rec) => {
                        let mut rec = rec.borrow_mut();
                        let dropped = rec.dropped();
                        (rec.drain(), dropped)
                    }
                    None => (Vec::new(), 0),
                };
                FlowReport {
                    id: f.id,
                    name: f.cca.name(),
                    start: f.start,
                    stop: f.stop,
                    sent_bytes: f.sent_bytes,
                    delivered_bytes: f.delivered_bytes,
                    acked_packets: f.acked_packets,
                    lost_packets: f.lost_packets,
                    avg_goodput: f.avg_goodput(span),
                    rtt_ms: f.rtt_stats,
                    loss_fraction: f.loss_fraction(),
                    goodput_series: f.goodput_bins.points_as_mbps(),
                    rtt_series: f.rtt_series,
                    rtt_p95_ms: f.rtt_p95.get(),
                    ecn_echoes: f.ecn_echoes,
                    compute_ns: f.compute_ns,
                    policy_faults: f.policy_faults,
                    policy_quarantines: f.policy_quarantines,
                    trace,
                    trace_dropped,
                    cca: f.cca,
                }
            })
            .collect();
        let link_trace = match self.link_recorder {
            Some(rec) => rec.borrow_mut().drain(),
            None => Vec::new(),
        };
        SimReport {
            duration: until.saturating_since(Instant::ZERO),
            flows,
            link,
            faults: fault_report,
            link_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::{AckEvent, LossEvent};

    /// Fixed-cwnd controller: fills the pipe if the window is big enough.
    struct Fixed(u64);
    impl CongestionControl for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            self.0
        }
    }

    /// Fixed-rate controller.
    struct FixedRate(Rate);
    impl CongestionControl for FixedRate {
        fn name(&self) -> &'static str {
            "fixed-rate"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            u64::MAX / 2
        }
        fn pacing_rate(&self) -> Option<Rate> {
            Some(self.0)
        }
    }

    fn run_single(
        cca: Box<dyn CongestionControl>,
        rate_mbps: f64,
        rtt_ms: u64,
        secs: u64,
    ) -> SimReport {
        let link = LinkConfig::constant(
            Rate::from_mbps(rate_mbps),
            Duration::from_millis(rtt_ms),
            1.0,
        );
        let until = Instant::from_secs(secs);
        let mut sim = Simulation::new(link, 1);
        sim.add_flow(FlowConfig::whole_run(cca, until));
        sim.run(until)
    }

    #[test]
    fn big_window_fills_constant_link() {
        // 10 Mbps, 40 ms RTT → BDP = 50 kB. cwnd 2 BDP saturates the link.
        let rep = run_single(Box::new(Fixed(100_000)), 10.0, 40, 10);
        assert!(rep.link.utilization > 0.9, "util {}", rep.link.utilization);
        assert!(rep.flows[0].avg_goodput.mbps() > 9.0);
    }

    #[test]
    fn tiny_window_underutilizes() {
        // 1 packet per RTT ≈ 0.3 Mbps on a 10 Mbps link.
        let rep = run_single(Box::new(Fixed(1500)), 10.0, 40, 10);
        assert!(rep.link.utilization < 0.1, "util {}", rep.link.utilization);
        // RTT stays at propagation (no queue).
        assert!((rep.flows[0].rtt_ms.mean() - 40.0).abs() < 3.0);
    }

    #[test]
    fn rate_above_capacity_builds_queue_and_drops() {
        let rep = run_single(Box::new(FixedRate(Rate::from_mbps(20.0))), 10.0, 40, 10);
        assert!(rep.link.tail_drops > 0, "drops {}", rep.link.tail_drops);
        assert!(rep.flows[0].lost_packets > 0);
        // Queue is full most of the time → RTT ≈ prop + buffer/capacity
        //   = 40 ms + 50 kB / 10 Mbps = 80 ms.
        assert!(
            rep.flows[0].rtt_ms.mean() > 60.0,
            "rtt {}",
            rep.flows[0].rtt_ms.mean()
        );
        assert!(rep.link.utilization > 0.9);
    }

    #[test]
    fn stochastic_loss_reported() {
        let link = LinkConfig {
            stochastic_loss: 0.1,
            ..LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
        };
        let until = Instant::from_secs(10);
        let mut sim = Simulation::new(link, 3);
        sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(100_000)), until));
        let rep = sim.run(until);
        assert!(rep.link.stochastic_drops > 0);
        let f = &rep.flows[0];
        // Around 10 % of packets lost.
        assert!(
            f.loss_fraction > 0.05 && f.loss_fraction < 0.2,
            "{}",
            f.loss_fraction
        );
    }

    #[test]
    fn two_flows_share_link() {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(20);
        let mut sim = Simulation::new(link, 4);
        sim.add_flow(FlowConfig::whole_run(
            Box::new(FixedRate(Rate::from_mbps(4.0))),
            until,
        ));
        sim.add_flow(FlowConfig::whole_run(
            Box::new(FixedRate(Rate::from_mbps(4.0))),
            until,
        ));
        let rep = sim.run(until);
        assert!(rep.jain_index() > 0.99, "jain {}", rep.jain_index());
        assert!((rep.flows[0].avg_goodput.mbps() - 4.0).abs() < 0.5);
        assert!((rep.flows[1].avg_goodput.mbps() - 4.0).abs() < 0.5);
    }

    #[test]
    fn staggered_flow_starts_late() {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(10);
        let mut sim = Simulation::new(link, 5);
        sim.add_flow(FlowConfig::whole_run(
            Box::new(FixedRate(Rate::from_mbps(2.0))),
            until,
        ));
        sim.add_flow(FlowConfig::new(
            Box::new(FixedRate(Rate::from_mbps(2.0))),
            Instant::from_secs(5),
            until,
        ));
        let rep = sim.run(until);
        // Late flow delivered roughly half of what the early one did.
        let r = rep.flows[1].delivered_bytes as f64 / rep.flows[0].delivered_bytes as f64;
        assert!((r - 0.5).abs() < 0.1, "ratio {r}");
        // Its goodput series is empty before 5 s.
        let early_bytes: f64 = rep.flows[1]
            .goodput_series
            .iter()
            .filter(|(t, _)| *t < 4.5)
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(early_bytes, 0.0);
    }

    #[test]
    fn step_capacity_is_followed_by_aggressive_sender() {
        let caps = CapacitySchedule::step(
            &[Rate::from_mbps(5.0), Rate::from_mbps(15.0)],
            Duration::from_secs(5),
            Duration::from_secs(20),
        );
        let link = LinkConfig {
            capacity: caps,
            one_way_delay: Duration::from_millis(20),
            buffer: Bytes::from_kb(75),
            stochastic_loss: 0.0,
            ack_jitter: Duration::ZERO,
            loss_process: None,
            ecn: None,
            faults: FaultPlan::default(),
            queue: QueueConfig::Droptail,
        };
        let until = Instant::from_secs(20);
        let mut sim = Simulation::new(link, 6);
        sim.add_flow(FlowConfig::whole_run(
            Box::new(FixedRate(Rate::from_mbps(50.0))),
            until,
        ));
        let rep = sim.run(until);
        // Overdriving the link achieves ~full utilization with heavy loss.
        assert!(rep.link.utilization > 0.95);
        assert!(rep.flows[0].loss_fraction > 0.5);
    }

    #[test]
    fn conservation_packets_accounted() {
        let rep = run_single(Box::new(FixedRate(Rate::from_mbps(20.0))), 10.0, 40, 5);
        let f = &rep.flows[0];
        // Every sent packet is acked, lost, or still in flight/queue.
        let resolved = f.acked_packets + f.lost_packets;
        assert!(resolved <= f.sent_bytes / 1500);
        let outstanding = f.sent_bytes / 1500 - resolved;
        // Outstanding is bounded by queue + pipe (generous bound).
        assert!(outstanding < 200, "outstanding {outstanding}");
    }

    #[test]
    fn ack_jitter_does_not_break_accounting() {
        let link = LinkConfig {
            ack_jitter: Duration::from_millis(5),
            loss_process: None,
            ecn: None,
            ..LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
        };
        let until = Instant::from_secs(5);
        let mut sim = Simulation::new(link, 7);
        sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(60_000)), until));
        let rep = sim.run(until);
        assert!(rep.flows[0].delivered_bytes > 0);
        assert!(rep.flows[0].rtt_ms.mean() >= 40.0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = run_single(Box::new(FixedRate(Rate::from_mbps(9.0))), 10.0, 40, 5);
        let b = run_single(Box::new(FixedRate(Rate::from_mbps(9.0))), 10.0, 40, 5);
        assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        assert_eq!(a.flows[0].lost_packets, b.flows[0].lost_packets);
        assert_eq!(a.link.tail_drops, b.link.tail_drops);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::faults::FaultKind;
    use crate::loss::GilbertElliott;
    use libra_types::{AckEvent, LossEvent};

    struct Fixed(u64);
    impl CongestionControl for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            self.0
        }
    }

    fn kitchen_sink_plan() -> FaultPlan {
        FaultPlan::none()
            .flap_train(
                Instant::from_secs(2),
                Duration::from_millis(500),
                Duration::from_millis(1500),
                2,
            )
            .with(
                Instant::from_secs(6),
                Instant::from_secs(8),
                FaultKind::Reorder {
                    probability: 0.3,
                    extra_delay: Duration::from_millis(30),
                },
            )
            .with(
                Instant::from_secs(8),
                Instant::from_secs(10),
                FaultKind::Duplicate { probability: 0.2 },
            )
            .with(
                Instant::from_secs(10),
                Instant::from_secs(12),
                FaultKind::AckCompression {
                    flush_every: Duration::from_millis(15),
                },
            )
            .with(
                Instant::from_secs(12),
                Instant::from_secs(14),
                FaultKind::DelaySpike {
                    extra: Duration::from_millis(40),
                },
            )
            .with(
                Instant::from_secs(14),
                Instant::from_secs(16),
                FaultKind::BurstLoss(GilbertElliott::bursty(0.2, 10.0)),
            )
    }

    fn run_with_plan(seed: u64) -> SimReport {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
            .with_faults(kitchen_sink_plan());
        let until = Instant::from_secs(18);
        let mut sim = Simulation::new(link, seed);
        sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(100_000)), until));
        sim.run(until)
    }

    #[test]
    fn every_fault_type_fires_and_is_counted() {
        let rep = run_with_plan(11);
        let f = rep.faults;
        assert_eq!(f.link_flaps, 2, "flaps {f:?}");
        assert!(f.reordered_acks > 0, "reorder {f:?}");
        assert!(f.duplicated_acks > 0, "duplicate {f:?}");
        assert!(f.compressed_acks > 0, "compression {f:?}");
        assert!(f.delay_spiked_acks > 0, "spike {f:?}");
        assert!(f.burst_loss_drops > 0, "burst {f:?}");
        // The flow survives the whole gauntlet and keeps moving data.
        assert!(rep.flows[0].delivered_bytes > 0);
        assert!(rep.link.utilization > 0.2, "util {}", rep.link.utilization);
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let a = run_with_plan(11);
        let b = run_with_plan(11);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        assert_eq!(a.flows[0].lost_packets, b.flows[0].lost_packets);
        let c = run_with_plan(12);
        assert!(
            c.faults != a.faults || c.flows[0].delivered_bytes != a.flows[0].delivered_bytes,
            "different seeds should perturb the run"
        );
    }

    #[test]
    fn flaps_only_count_inside_horizon() {
        let plan = FaultPlan::none().flap_train(
            Instant::from_secs(2),
            Duration::from_millis(200),
            Duration::from_secs(20),
            4,
        );
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
            .with_faults(plan);
        let until = Instant::from_secs(10);
        let mut sim = Simulation::new(link, 1);
        sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(50_000)), until));
        let rep = sim.run(until);
        // Flaps start at 2 s, 22.2 s, 42.4 s, 62.6 s — only the first is
        // inside the 10 s horizon.
        assert_eq!(rep.faults.link_flaps, 1);
    }

    #[test]
    fn flap_blackout_reduces_delivery_then_recovers() {
        let clean = {
            let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
            let until = Instant::from_secs(10);
            let mut sim = Simulation::new(link, 5);
            sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(100_000)), until));
            sim.run(until)
        };
        let flapped = {
            let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
                .with_faults(FaultPlan::none().flap_train(
                    Instant::from_secs(3),
                    Duration::from_secs(2),
                    Duration::from_secs(1),
                    1,
                ));
            let until = Instant::from_secs(10);
            let mut sim = Simulation::new(link, 5);
            sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(100_000)), until));
            sim.run(until)
        };
        assert!(flapped.flows[0].delivered_bytes < clean.flows[0].delivered_bytes);
        // Data still flows after the outage ends at 5 s.
        let post: f64 = flapped.flows[0]
            .goodput_series
            .iter()
            .filter(|&&(t, _)| t > 6.0)
            .map(|&(_, v)| v)
            .sum();
        assert!(post > 0.0, "no traffic after the flap");
    }

    #[test]
    fn traced_run_records_transport_and_link_events() {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
            .with_faults(kitchen_sink_plan());
        let until = Instant::from_secs(18);
        let mut sim = Simulation::with_config(link, 11, SimConfig::traced());
        sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(100_000)), until));
        let rep = sim.run(until);
        let trace = &rep.flows[0].trace;
        assert!(
            trace
                .iter()
                .any(|e| matches!(e, TraceEvent::MiClose { .. })),
            "no MI closes traced"
        );
        assert!(
            trace
                .iter()
                .any(|e| matches!(e, TraceEvent::FastRetransmit { .. })),
            "no fast-retransmits traced despite drops"
        );
        assert_eq!(rep.flows[0].trace_dropped, 0);
        // Emit order is time order for a single flow.
        assert!(trace.windows(2).all(|w| w[0].at_ns() <= w[1].at_ns()));
        // One link-level window per scheduled fault, tagged LINK_FLOW.
        assert_eq!(rep.link_trace.len(), kitchen_sink_plan().events.len());
        assert!(rep.link_trace.iter().all(|e| e.flow() == LINK_FLOW));
        // The default config records nothing.
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0)
            .with_faults(kitchen_sink_plan());
        let mut sim = Simulation::new(link, 11);
        sim.add_flow(FlowConfig::whole_run(Box::new(Fixed(100_000)), until));
        let rep = sim.run(until);
        assert!(rep.flows[0].trace.is_empty());
        assert!(rep.link_trace.is_empty());
    }

    #[test]
    fn queue_byte_accounting_exposed_in_report() {
        let rep = run_with_plan(11);
        let l = &rep.link;
        assert!(l.queue_admitted_bytes > 0);
        assert_eq!(
            l.queue_admitted_bytes - l.queue_dequeued_bytes,
            l.queue_residual_bytes,
            "queue byte conservation violated"
        );
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use libra_types::{AckEvent, LossEvent};

    /// A hostile controller reporting an absurd window and rate.
    struct Absurd;
    impl CongestionControl for Absurd {
        fn name(&self) -> &'static str {
            "absurd"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            u64::MAX / 4
        }
        fn pacing_rate(&self) -> Option<Rate> {
            Some(Rate::from_bps(1e18)) // an exabit per second
        }
    }

    #[test]
    fn absurd_controller_cannot_blow_up_the_simulator() {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(2);
        let mut sim = Simulation::new(link, 1);
        sim.add_flow(FlowConfig::whole_run(Box::new(Absurd), until));
        // Must terminate quickly with bounded memory; the burst cap turns
        // the absurd rate into repeated bounded pumps.
        let t0 = crate::host_clock::stamp();
        let rep = sim.run(until);
        assert!(
            t0.elapsed_secs_f64() < 30.0,
            "took {:.1}s",
            t0.elapsed_secs_f64()
        );
        // Virtually everything was tail-dropped, the link stayed sane.
        assert!(rep.link.utilization <= 1.0);
        assert!(rep.link.tail_drops > 0);
    }

    /// Unwrap the `Err` side (`SimReport` has no `Debug`, so
    /// `expect_err` is unavailable).
    fn trip_of(result: Result<SimReport, BudgetTrip>, what: &str) -> BudgetTrip {
        match result {
            Ok(_) => panic!("{what}: expected a budget trip"),
            Err(trip) => trip,
        }
    }

    fn budget_run(budget: SimBudget) -> Result<SimReport, BudgetTrip> {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(5);
        let cfg = SimConfig {
            budget,
            ..SimConfig::default()
        };
        let mut sim = Simulation::with_config(link, 1, cfg);
        sim.add_flow(FlowConfig::whole_run(Box::new(Absurd), until));
        sim.try_run(until)
    }

    #[test]
    fn inactive_budget_never_trips() {
        assert!(!SimBudget::default().is_active());
        let rep = match budget_run(SimBudget::default()) {
            Ok(rep) => rep,
            Err(trip) => panic!("no budget armed, yet tripped: {trip}"),
        };
        assert!(rep.link.utilization <= 1.0);
    }

    /// Well-behaved fixed-rate controller for the sane-run checks.
    struct Steady(Rate);
    impl CongestionControl for Steady {
        fn name(&self) -> &'static str {
            "steady"
        }
        fn on_ack(&mut self, _: &AckEvent) {}
        fn on_loss(&mut self, _: &LossEvent) {}
        fn cwnd_bytes(&self) -> u64 {
            u64::MAX / 2
        }
        fn pacing_rate(&self) -> Option<Rate> {
            Some(self.0)
        }
    }

    #[test]
    fn standard_budget_passes_a_sane_run() {
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(5);
        let mut sim = Simulation::with_config(link, 1, SimConfig::supervised());
        sim.add_flow(FlowConfig::whole_run(
            Box::new(Steady(Rate::from_mbps(8.0))),
            until,
        ));
        let rep = match sim.try_run(until) {
            Ok(rep) => rep,
            Err(trip) => panic!("sane run tripped the standard budget: {trip}"),
        };
        assert!(rep.link.utilization > 0.5);
    }

    #[test]
    fn event_storm_budget_trips_on_absurd_sender() {
        let budget = SimBudget {
            max_events_per_sim_sec: Some(1_000),
            ..SimBudget::default()
        };
        let trip = trip_of(budget_run(budget), "storm");
        assert_eq!(trip.kind, BudgetKind::EventStorm);
        assert_eq!(trip.limit, 1_000);
        assert!(trip.detail.contains("1000 events"), "{}", trip.detail);
        // Deterministic: same config, same trip.
        let again = trip_of(
            budget_run(SimBudget {
                max_events_per_sim_sec: Some(1_000),
                ..SimBudget::default()
            }),
            "storm rerun",
        );
        assert_eq!(again, trip);
    }

    #[test]
    fn heap_budget_trips_when_events_pile_up() {
        let budget = SimBudget {
            max_heap_events: Some(16),
            ..SimBudget::default()
        };
        let trip = trip_of(budget_run(budget), "heap growth");
        assert_eq!(trip.kind, BudgetKind::HeapGrowth);
        assert_eq!(trip.limit, 16);
    }

    #[test]
    fn zero_progress_budget_trips_on_same_timestamp_churn() {
        // Twenty flows all starting at t = 0 give twenty consecutive
        // pops that never advance the sim clock.
        let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(5);
        let cfg = SimConfig {
            budget: SimBudget {
                max_zero_progress_pops: Some(8),
                ..SimBudget::default()
            },
            ..SimConfig::default()
        };
        let mut sim = Simulation::with_config(link, 1, cfg);
        for _ in 0..20 {
            sim.add_flow(FlowConfig::whole_run(
                Box::new(Steady(Rate::from_mbps(0.1))),
                until,
            ));
        }
        let trip = trip_of(sim.try_run(until), "livelock");
        assert_eq!(trip.kind, BudgetKind::Livelock);
        assert_eq!(trip.limit, 8);
        assert_eq!(trip.at_ns, 0);
    }

    #[test]
    fn zero_wall_budget_trips_immediately() {
        let budget = SimBudget::default().with_wall_limit_ms(0);
        let trip = trip_of(budget_run(budget), "zero wall budget");
        assert_eq!(trip.kind, BudgetKind::WallDeadline);
        assert_eq!(trip.limit, 0);
    }

    #[test]
    fn run_panics_with_downcastable_trip() {
        let result = std::panic::catch_unwind(|| {
            let link = LinkConfig::constant(Rate::from_mbps(10.0), Duration::from_millis(40), 1.0);
            let until = Instant::from_secs(5);
            let cfg = SimConfig {
                budget: SimBudget {
                    max_events_per_sim_sec: Some(1_000),
                    ..SimBudget::default()
                },
                ..SimConfig::default()
            };
            let mut sim = Simulation::with_config(link, 1, cfg);
            sim.add_flow(FlowConfig::whole_run(Box::new(Absurd), until));
            sim.run(until)
        });
        let payload = match result {
            Ok(_) => panic!("run should panic on a tripped budget"),
            Err(payload) => payload,
        };
        let trip = payload
            .downcast_ref::<BudgetTrip>()
            .expect("payload should be a BudgetTrip");
        assert_eq!(trip.kind, BudgetKind::EventStorm);
    }
}
