//! Alternative bottleneck queue disciplines: CoDel, PIE, and a
//! token-bucket policer, behind the [`QueueDiscipline`] trait.
//!
//! The droptail FIFO ([`crate::queue::DroptailQueue`]) is the discipline
//! Theorem 4.1 assumes and the default everywhere; these variants exist so
//! the scenario zoo can probe Libra against the AQMs and policers real
//! paths deploy. All three reuse the droptail byte ledger and extend it
//! with one counter — bytes admitted and later dropped from the head by
//! the AQM control law — so a single conservation identity holds for
//! every discipline:
//!
//! ```text
//! admitted_bytes == dequeued_bytes + aqm_dropped_bytes + resident_bytes
//! ```
//!
//! Drops that refuse a packet at enqueue (droptail overflow, PIE early
//! drop, non-conforming policer arrivals) never enter the ledger; CoDel
//! head drops are the only post-admission losses. Under the
//! `checked-invariants` feature the identity (plus resident-sum
//! agreement and the monotonic-clock assert) is enforced after every
//! mutation, exactly like the droptail queue.
//!
//! Determinism: CoDel and the token bucket are pure functions of the
//! arrival/departure sequence. PIE draws its early-drop coin flips from a
//! [`DetRng`] forked off the simulation root, so runs remain pure
//! functions of `(config, seed)`.

use crate::packet::Packet;
use crate::pool::{PacketHandle, PacketPool};
use crate::queue::{DroptailQueue, EcnConfig, Enqueue};
use libra_types::{Bytes, DetRng, Duration, Rate};
use std::collections::VecDeque;

/// Which discipline the bottleneck buffer runs. Part of
/// [`crate::LinkConfig`]; defaults to [`QueueConfig::Droptail`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QueueConfig {
    /// Byte-capacity FIFO with tail drop (the paper's model).
    #[default]
    Droptail,
    /// CoDel (RFC 8289): sojourn-time controlled drop-from-head.
    Codel {
        /// Acceptable standing sojourn time (RFC default 5 ms).
        target: Duration,
        /// Sliding window over which sojourn must stay above target
        /// before dropping starts (RFC default 100 ms).
        interval: Duration,
    },
    /// PIE (RFC 8033): probabilistic enqueue drop from a delay estimate.
    Pie {
        /// Target queueing delay (RFC default 15 ms).
        target: Duration,
        /// Drop-probability update period (RFC default 15 ms).
        update_period: Duration,
    },
    /// Ingress token-bucket policer in front of a FIFO: arrivals beyond
    /// `rate` (with `burst` credit) are dropped, conforming packets
    /// queue as usual.
    TokenBucket {
        /// Sustained conforming rate.
        rate: Rate,
        /// Bucket depth (burst credit) in bytes.
        burst: Bytes,
    },
}

impl QueueConfig {
    /// CoDel at the RFC 8289 defaults (5 ms target, 100 ms interval).
    pub fn codel_default() -> Self {
        QueueConfig::Codel {
            target: Duration::from_millis(5),
            interval: Duration::from_millis(100),
        }
    }

    /// PIE at the RFC 8033 defaults (15 ms target, 15 ms update period).
    pub fn pie_default() -> Self {
        QueueConfig::Pie {
            target: Duration::from_millis(15),
            update_period: Duration::from_millis(15),
        }
    }

    /// Short display label ("droptail", "codel", ...).
    pub fn label(&self) -> &'static str {
        match self {
            QueueConfig::Droptail => "droptail",
            QueueConfig::Codel { .. } => "codel",
            QueueConfig::Pie { .. } => "pie",
            QueueConfig::TokenBucket { .. } => "token-bucket",
        }
    }
}

/// Snapshot of a discipline's drop/admission ledger, uniform across
/// disciplines so [`crate::LinkReport`] can be filled without knowing
/// which queue ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Packets dropped by the discipline (tail, early, and head drops).
    pub drops: u64,
    /// Packets admitted into the buffer.
    pub admitted: u64,
    /// Packets CE-marked at admission.
    pub ecn_marks: u64,
    /// Bytes admitted into the buffer.
    pub admitted_bytes: u64,
    /// Bytes refused at enqueue (tail drop, PIE early drop, policer).
    pub dropped_bytes: u64,
    /// Bytes dequeued into the link.
    pub dequeued_bytes: u64,
    /// Packets admitted and later dropped from the head (CoDel).
    pub aqm_drops: u64,
    /// Bytes admitted and later dropped from the head (CoDel).
    pub aqm_dropped_bytes: u64,
}

/// The interface every bottleneck queue discipline provides to the
/// simulator's service loop. [`DroptailQueue`] and the AQMs in this
/// module all implement it; the simulator dispatches statically through
/// [`AnyQueue`] so the droptail hot path stays a single match arm.
pub trait QueueDiscipline {
    /// Try to admit `packet` at `now_ns`, CE-marking per `ecn`. An
    /// accepted packet moves into `pool`; a refused one never touches
    /// the slab.
    fn enqueue_with_ecn(
        &mut self,
        packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue;
    /// Remove the next packet to serve at `now_ns` (applying any
    /// head-drop control law first). The returned handle stays live in
    /// the pool until the caller releases it.
    fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle>;
    /// Bytes currently resident.
    fn occupied_bytes(&self) -> u64;
    /// Packets currently resident.
    fn len(&self) -> usize;
    /// True when nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Time-averaged occupancy in bytes over `[0, now_ns]`.
    fn mean_occupancy(&mut self, now_ns: u64) -> f64;
    /// Current ledger snapshot.
    fn counters(&self) -> QueueCounters;
}

impl QueueDiscipline for DroptailQueue {
    #[inline]
    fn enqueue_with_ecn(
        &mut self,
        packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue {
        DroptailQueue::enqueue_with_ecn(self, packet, pool, now_ns, ecn)
    }
    #[inline]
    fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle> {
        DroptailQueue::dequeue(self, pool, now_ns)
    }
    #[inline]
    fn occupied_bytes(&self) -> u64 {
        DroptailQueue::occupied_bytes(self)
    }
    #[inline]
    fn len(&self) -> usize {
        DroptailQueue::len(self)
    }
    #[inline]
    fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        DroptailQueue::mean_occupancy(self, now_ns)
    }
    fn counters(&self) -> QueueCounters {
        QueueCounters {
            drops: self.drops,
            admitted: self.admitted,
            ecn_marks: self.ecn_marks,
            admitted_bytes: self.admitted_bytes,
            dropped_bytes: self.dropped_bytes,
            dequeued_bytes: self.dequeued_bytes,
            aqm_drops: 0,
            aqm_dropped_bytes: 0,
        }
    }
}

/// Shared occupancy + counter ledger for the AQM queues; mirrors the
/// droptail bookkeeping (lazy occupancy integral, monotonic-clock
/// assert, `checked-invariants` conservation check).
#[derive(Debug)]
struct Ledger {
    capacity: u64,
    occupied: u64,
    stats: QueueCounters,
    occupancy_integral: u128,
    last_change_ns: u64,
}

impl Ledger {
    fn new(capacity: Bytes) -> Self {
        Ledger {
            capacity: capacity.get(),
            occupied: 0,
            stats: QueueCounters::default(),
            occupancy_integral: 0,
            last_change_ns: 0,
        }
    }

    fn advance_clock(&mut self, now_ns: u64) {
        debug_assert!(now_ns >= self.last_change_ns, "queue clock went backwards");
        #[cfg(feature = "checked-invariants")]
        assert!(now_ns >= self.last_change_ns, "queue clock went backwards");
        let span = now_ns.saturating_sub(self.last_change_ns);
        self.occupancy_integral += span as u128 * self.occupied as u128;
        self.last_change_ns = now_ns;
    }

    /// True when admitting `bytes` would overflow the buffer.
    fn would_overflow(&self, bytes: u64) -> bool {
        self.occupied + bytes > self.capacity
    }

    fn refuse(&mut self, bytes: u64) {
        self.stats.drops += 1;
        self.stats.dropped_bytes += bytes;
    }

    fn admit(&mut self, bytes: u64) {
        self.occupied += bytes;
        self.stats.admitted += 1;
        self.stats.admitted_bytes += bytes;
    }

    fn dequeue(&mut self, bytes: u64) {
        self.occupied -= bytes;
        self.stats.dequeued_bytes += bytes;
    }

    fn head_drop(&mut self, bytes: u64) {
        self.occupied -= bytes;
        self.stats.drops += 1;
        self.stats.aqm_drops += 1;
        self.stats.aqm_dropped_bytes += bytes;
    }

    /// Conservation check (`checked-invariants` only): the ledger must
    /// balance and agree with the resident packets, whose byte sum the
    /// caller supplies lazily so unchecked builds never compute it.
    #[cfg(feature = "checked-invariants")]
    fn check(&self, resident: impl FnOnce() -> u64) {
        assert_eq!(
            self.stats.admitted_bytes,
            self.stats.dequeued_bytes + self.stats.aqm_dropped_bytes + self.occupied,
            "aqm queue leaked bytes (admitted != dequeued + head-dropped + resident)"
        );
        assert_eq!(
            resident(),
            self.occupied,
            "aqm occupancy counter drifted from resident packets"
        );
    }

    #[cfg(not(feature = "checked-invariants"))]
    #[inline(always)]
    fn check(&self, _resident: impl FnOnce() -> u64) {}

    fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        self.advance_clock(now_ns);
        if now_ns == 0 {
            return self.occupied as f64;
        }
        self.occupancy_integral as f64 / now_ns as f64
    }
}

/// Mark `packet` CE when the standing queue exceeds the ECN threshold
/// (same step-marking rule as the droptail queue).
fn maybe_mark(packet: &mut Packet, occupied: u64, ecn: Option<EcnConfig>, marks: &mut u64) {
    if let Some(cfg) = ecn {
        if occupied > cfg.threshold.get() {
            packet.ecn = true;
            *marks += 1;
        }
    }
}

/// CoDel's `interval / sqrt(count)` control law. `count >= 1`.
fn codel_next_interval(interval_ns: u64, count: u64) -> u64 {
    (interval_ns as f64 / (count as f64).sqrt()) as u64
}

/// CoDel (RFC 8289): packets carry their enqueue time; when head sojourn
/// stays above `target` for a full `interval` the queue enters a dropping
/// state and sheds head packets on a `interval/sqrt(count)` cadence until
/// the standing delay falls back under target.
#[derive(Debug)]
pub struct CodelQueue {
    ledger: Ledger,
    packets: VecDeque<(PacketHandle, u64)>,
    target_ns: u64,
    interval_ns: u64,
    /// When the head sojourn first exceeded target (`None` while below).
    first_above_ns: Option<u64>,
    /// Next scheduled drop while in the dropping state.
    drop_next_ns: u64,
    /// Drops this dropping episode (drives the control law).
    count: u64,
    dropping: bool,
}

impl CodelQueue {
    /// A CoDel queue over a `capacity`-byte buffer.
    pub fn new(capacity: Bytes, target: Duration, interval: Duration) -> Self {
        CodelQueue {
            ledger: Ledger::new(capacity),
            packets: VecDeque::new(),
            target_ns: target.nanos(),
            interval_ns: interval.nanos().max(1),
            first_above_ns: None,
            drop_next_ns: 0,
            count: 0,
            dropping: false,
        }
    }
}

/// Byte sum of the handles resident in an AQM's deque. Only ever called
/// by the `checked-invariants` conservation check; the unchecked build
/// constructs (and discards) the closure without running it.
fn resident_sum<T>(
    packets: &VecDeque<T>,
    pool: &PacketPool,
    h: impl Fn(&T) -> PacketHandle,
) -> u64 {
    packets.iter().map(|t| pool.get(h(t)).bytes).sum()
}

impl QueueDiscipline for CodelQueue {
    fn enqueue_with_ecn(
        &mut self,
        mut packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue {
        self.ledger.advance_clock(now_ns);
        if self.ledger.would_overflow(packet.bytes) {
            self.ledger.refuse(packet.bytes);
            self.ledger
                .check(|| resident_sum(&self.packets, pool, |t| t.0));
            return Enqueue::Dropped;
        }
        maybe_mark(
            &mut packet,
            self.ledger.occupied,
            ecn,
            &mut self.ledger.stats.ecn_marks,
        );
        self.ledger.admit(packet.bytes);
        self.packets.push_back((pool.alloc(packet), now_ns));
        self.ledger
            .check(|| resident_sum(&self.packets, pool, |t| t.0));
        Enqueue::Accepted
    }

    fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle> {
        self.ledger.advance_clock(now_ns);
        loop {
            let (h, enq_ns) = match self.packets.pop_front() {
                Some(head) => head,
                None => {
                    self.dropping = false;
                    self.first_above_ns = None;
                    return None;
                }
            };
            let bytes = pool.get(h).bytes;
            let sojourn = now_ns.saturating_sub(enq_ns);
            let remaining = self.ledger.occupied - bytes;
            // Below target (or the backlog is under one MTU): the standing
            // queue is fine — reset the control law and deliver.
            if sojourn < self.target_ns || remaining < 1500 {
                self.first_above_ns = None;
                self.dropping = false;
                self.ledger.dequeue(bytes);
                self.ledger
                    .check(|| resident_sum(&self.packets, pool, |t| t.0));
                return Some(h);
            }
            if self.dropping {
                if now_ns >= self.drop_next_ns {
                    self.count += 1;
                    self.drop_next_ns += codel_next_interval(self.interval_ns, self.count);
                    self.ledger.head_drop(bytes);
                    pool.release(h);
                    continue;
                }
                self.ledger.dequeue(bytes);
                self.ledger
                    .check(|| resident_sum(&self.packets, pool, |t| t.0));
                return Some(h);
            }
            match self.first_above_ns {
                None => {
                    // First sighting above target: arm the interval timer.
                    self.first_above_ns = Some(now_ns + self.interval_ns);
                    self.ledger.dequeue(bytes);
                    self.ledger
                        .check(|| resident_sum(&self.packets, pool, |t| t.0));
                    return Some(h);
                }
                Some(first_above) if now_ns < first_above => {
                    self.ledger.dequeue(bytes);
                    self.ledger
                        .check(|| resident_sum(&self.packets, pool, |t| t.0));
                    return Some(h);
                }
                Some(_) => {
                    // Sojourn stayed above target for a full interval:
                    // enter the dropping state. Resume from the previous
                    // episode's cadence if we left it recently (RFC 8289
                    // §5.4 count decay), else restart at 1.
                    self.dropping = true;
                    self.count = if self.count > 2
                        && now_ns.saturating_sub(self.drop_next_ns) < 8 * self.interval_ns
                    {
                        self.count - 2
                    } else {
                        1
                    };
                    self.drop_next_ns = now_ns + codel_next_interval(self.interval_ns, self.count);
                    self.ledger.head_drop(bytes);
                    pool.release(h);
                }
            }
        }
    }

    fn occupied_bytes(&self) -> u64 {
        self.ledger.occupied
    }
    fn len(&self) -> usize {
        self.packets.len()
    }
    fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        self.ledger.mean_occupancy(now_ns)
    }
    fn counters(&self) -> QueueCounters {
        self.ledger.stats
    }
}

/// PIE (RFC 8033, simplified): a drop probability updated every
/// `update_period` from the head sojourn's distance to `target` (and its
/// trend), applied as a Bernoulli early drop at enqueue. Coin flips come
/// from the simulation's deterministic RNG.
#[derive(Debug)]
pub struct PieQueue {
    ledger: Ledger,
    packets: VecDeque<(PacketHandle, u64)>,
    target_ns: u64,
    update_ns: u64,
    next_update_ns: u64,
    drop_prob: f64,
    qdelay_old_ns: u64,
    rng: DetRng,
}

impl PieQueue {
    /// PIE over a `capacity`-byte buffer; `rng` drives the early drops.
    pub fn new(capacity: Bytes, target: Duration, update_period: Duration, rng: DetRng) -> Self {
        let update_ns = update_period.nanos().max(1);
        PieQueue {
            ledger: Ledger::new(capacity),
            packets: VecDeque::new(),
            target_ns: target.nanos(),
            update_ns,
            next_update_ns: update_ns,
            drop_prob: 0.0,
            qdelay_old_ns: 0,
            rng,
        }
    }

    /// Run any due drop-probability updates (RFC 8033 §4.2 with the
    /// standard α = 0.125 /s, β = 1.25 /s gains and an idle decay).
    fn maybe_update(&mut self, now_ns: u64) {
        while now_ns >= self.next_update_ns {
            let qdelay_ns = self
                .packets
                .front()
                .map(|(_, enq)| self.next_update_ns.saturating_sub(*enq))
                .unwrap_or(0);
            let qdelay_s = qdelay_ns as f64 / 1e9;
            let target_s = self.target_ns as f64 / 1e9;
            let qdelay_old_s = self.qdelay_old_ns as f64 / 1e9;
            let mut p =
                self.drop_prob + 0.125 * (qdelay_s - target_s) + 1.25 * (qdelay_s - qdelay_old_s);
            if qdelay_ns == 0 && self.qdelay_old_ns == 0 {
                // Idle queue: decay toward zero instead of integrating the
                // (negative) target error forever.
                p *= 0.98;
            }
            self.drop_prob = p.clamp(0.0, 1.0);
            self.qdelay_old_ns = qdelay_ns;
            self.next_update_ns += self.update_ns;
            // Fast-forward through long idle gaps once fully decayed.
            if self.packets.is_empty() && self.drop_prob < 1e-12 {
                self.drop_prob = 0.0;
                if now_ns >= self.next_update_ns {
                    let missed = (now_ns - self.next_update_ns) / self.update_ns + 1;
                    self.next_update_ns += missed * self.update_ns;
                }
            }
        }
    }
}

impl QueueDiscipline for PieQueue {
    fn enqueue_with_ecn(
        &mut self,
        mut packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue {
        self.ledger.advance_clock(now_ns);
        self.maybe_update(now_ns);
        if self.ledger.would_overflow(packet.bytes) {
            self.ledger.refuse(packet.bytes);
            self.ledger
                .check(|| resident_sum(&self.packets, pool, |t| t.0));
            return Enqueue::Dropped;
        }
        // Early drop, with RFC 8033 burst protection: never drop while
        // fewer than two MTUs are queued.
        if self.drop_prob > 0.0
            && self.ledger.occupied > 2 * packet.bytes
            && self.rng.chance(self.drop_prob)
        {
            self.ledger.refuse(packet.bytes);
            self.ledger
                .check(|| resident_sum(&self.packets, pool, |t| t.0));
            return Enqueue::Dropped;
        }
        maybe_mark(
            &mut packet,
            self.ledger.occupied,
            ecn,
            &mut self.ledger.stats.ecn_marks,
        );
        self.ledger.admit(packet.bytes);
        self.packets.push_back((pool.alloc(packet), now_ns));
        self.ledger
            .check(|| resident_sum(&self.packets, pool, |t| t.0));
        Enqueue::Accepted
    }

    fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle> {
        self.ledger.advance_clock(now_ns);
        self.maybe_update(now_ns);
        let (h, _) = self.packets.pop_front()?;
        self.ledger.dequeue(pool.get(h).bytes);
        self.ledger
            .check(|| resident_sum(&self.packets, pool, |t| t.0));
        Some(h)
    }

    fn occupied_bytes(&self) -> u64 {
        self.ledger.occupied
    }
    fn len(&self) -> usize {
        self.packets.len()
    }
    fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        self.ledger.mean_occupancy(now_ns)
    }
    fn counters(&self) -> QueueCounters {
        self.ledger.stats
    }
}

/// Ingress token-bucket policer in front of a FIFO: tokens refill at
/// `rate` up to `burst`; arrivals without enough credit are dropped
/// before the buffer, conforming packets queue droptail-style.
#[derive(Debug)]
pub struct TokenBucketQueue {
    ledger: Ledger,
    packets: VecDeque<PacketHandle>,
    bytes_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill_ns: u64,
}

impl TokenBucketQueue {
    /// A policer admitting `rate` sustained with `burst` bytes of credit,
    /// backed by a `capacity`-byte FIFO. The bucket starts full.
    pub fn new(capacity: Bytes, rate: Rate, burst: Bytes) -> Self {
        let burst = burst.get().max(1500) as f64;
        TokenBucketQueue {
            ledger: Ledger::new(capacity),
            packets: VecDeque::new(),
            bytes_per_sec: rate.bytes_per_sec(),
            burst,
            tokens: burst,
            last_refill_ns: 0,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let span_ns = now_ns.saturating_sub(self.last_refill_ns);
        self.last_refill_ns = now_ns;
        self.tokens = (self.tokens + self.bytes_per_sec * span_ns as f64 / 1e9).min(self.burst);
    }
}

impl QueueDiscipline for TokenBucketQueue {
    fn enqueue_with_ecn(
        &mut self,
        mut packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue {
        self.ledger.advance_clock(now_ns);
        self.refill(now_ns);
        if self.ledger.would_overflow(packet.bytes) || self.tokens < packet.bytes as f64 {
            self.ledger.refuse(packet.bytes);
            self.ledger
                .check(|| resident_sum(&self.packets, pool, |&h| h));
            return Enqueue::Dropped;
        }
        self.tokens -= packet.bytes as f64;
        maybe_mark(
            &mut packet,
            self.ledger.occupied,
            ecn,
            &mut self.ledger.stats.ecn_marks,
        );
        self.ledger.admit(packet.bytes);
        self.packets.push_back(pool.alloc(packet));
        self.ledger
            .check(|| resident_sum(&self.packets, pool, |&h| h));
        Enqueue::Accepted
    }

    fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle> {
        self.ledger.advance_clock(now_ns);
        let h = self.packets.pop_front()?;
        self.ledger.dequeue(pool.get(h).bytes);
        self.ledger
            .check(|| resident_sum(&self.packets, pool, |&h| h));
        Some(h)
    }

    fn occupied_bytes(&self) -> u64 {
        self.ledger.occupied
    }
    fn len(&self) -> usize {
        self.packets.len()
    }
    fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        self.ledger.mean_occupancy(now_ns)
    }
    fn counters(&self) -> QueueCounters {
        self.ledger.stats
    }
}

/// Static dispatch over the disciplines. The simulator holds one of
/// these; droptail runs pay a single predictable match branch instead of
/// a vtable call, keeping the hot path byte-identical to the pre-AQM
/// code.
#[derive(Debug)]
pub enum AnyQueue {
    /// Droptail FIFO (the default).
    Droptail(DroptailQueue),
    /// CoDel AQM.
    Codel(CodelQueue),
    /// PIE AQM.
    Pie(PieQueue),
    /// Token-bucket policed FIFO.
    TokenBucket(TokenBucketQueue),
}

impl AnyQueue {
    /// Build the configured discipline over a `buffer`-byte queue. `rng`
    /// feeds PIE's early-drop coin flips; the other disciplines are
    /// arrival-sequence deterministic and ignore it.
    pub fn build(cfg: QueueConfig, buffer: Bytes, rng: DetRng) -> AnyQueue {
        match cfg {
            QueueConfig::Droptail => AnyQueue::Droptail(DroptailQueue::new(buffer)),
            QueueConfig::Codel { target, interval } => {
                AnyQueue::Codel(CodelQueue::new(buffer, target, interval))
            }
            QueueConfig::Pie {
                target,
                update_period,
            } => AnyQueue::Pie(PieQueue::new(buffer, target, update_period, rng)),
            QueueConfig::TokenBucket { rate, burst } => {
                AnyQueue::TokenBucket(TokenBucketQueue::new(buffer, rate, burst))
            }
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            AnyQueue::Droptail($q) => $body,
            AnyQueue::Codel($q) => $body,
            AnyQueue::Pie($q) => $body,
            AnyQueue::TokenBucket($q) => $body,
        }
    };
}

impl QueueDiscipline for AnyQueue {
    #[inline]
    fn enqueue_with_ecn(
        &mut self,
        packet: Packet,
        pool: &mut PacketPool,
        now_ns: u64,
        ecn: Option<EcnConfig>,
    ) -> Enqueue {
        dispatch!(self, q => q.enqueue_with_ecn(packet, pool, now_ns, ecn))
    }
    #[inline]
    fn dequeue(&mut self, pool: &mut PacketPool, now_ns: u64) -> Option<PacketHandle> {
        dispatch!(self, q => q.dequeue(pool, now_ns))
    }
    #[inline]
    fn occupied_bytes(&self) -> u64 {
        dispatch!(self, q => q.occupied_bytes())
    }
    #[inline]
    fn len(&self) -> usize {
        dispatch!(self, q => q.len())
    }
    #[inline]
    fn mean_occupancy(&mut self, now_ns: u64) -> f64 {
        dispatch!(self, q => q.mean_occupancy(now_ns))
    }
    #[inline]
    fn counters(&self) -> QueueCounters {
        dispatch!(self, q => q.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use libra_types::Instant;

    fn pkt(seq: u64, bytes: u64) -> Packet {
        Packet {
            flow: FlowId(0),
            seq,
            bytes,
            sent_at: Instant::ZERO,
            delivered_at_send: 0,
            app_limited: false,
            ecn: false,
        }
    }

    const MS: u64 = 1_000_000;

    fn ledger_balances(c: &QueueCounters, resident: u64) {
        assert_eq!(
            c.admitted_bytes,
            c.dequeued_bytes + c.aqm_dropped_bytes + resident,
            "ledger out of balance: {c:?} resident {resident}"
        );
    }

    #[test]
    fn codel_drops_from_head_under_standing_queue() {
        let mut pool = PacketPool::with_capacity(256);
        let mut q = CodelQueue::new(
            Bytes::new(1_000_000),
            Duration::from_millis(5),
            Duration::from_millis(100),
        );
        // Build a standing queue: 200 packets at t=0, drain one per 10 ms
        // (slower than needed to clear sojourn), so head delay grows far
        // beyond target and stays there.
        for s in 0..200 {
            assert_eq!(
                q.enqueue_with_ecn(pkt(s, 1500), &mut pool, 0, None),
                Enqueue::Accepted
            );
        }
        let mut delivered = 0u64;
        for i in 0..150u64 {
            if let Some(h) = q.dequeue(&mut pool, (i + 1) * 10 * MS) {
                pool.release(h);
                delivered += 1;
            }
        }
        let c = q.counters();
        assert!(c.aqm_drops > 0, "standing queue never triggered CoDel");
        assert_eq!(c.admitted, 200);
        assert_eq!(delivered + c.aqm_drops, 200 - q.len() as u64);
        ledger_balances(&c, q.occupied_bytes());
        // Only the still-resident packets remain live in the pool.
        assert_eq!(pool.live(), q.len());
    }

    #[test]
    fn codel_idle_below_target_never_drops() {
        let mut pool = PacketPool::with_capacity(4);
        let mut q = CodelQueue::new(
            Bytes::new(1_000_000),
            Duration::from_millis(5),
            Duration::from_millis(100),
        );
        // Enqueue/dequeue promptly: sojourn ~1 ms, never above target.
        for s in 0..100u64 {
            q.enqueue_with_ecn(pkt(s, 1500), &mut pool, s * 2 * MS, None);
            let h = q.dequeue(&mut pool, s * 2 * MS + MS).expect("just queued");
            pool.release(h);
        }
        let c = q.counters();
        assert_eq!(c.aqm_drops, 0);
        assert_eq!(c.drops, 0);
        ledger_balances(&c, 0);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn codel_still_tail_drops_when_physically_full() {
        let mut pool = PacketPool::with_capacity(4);
        let mut q = CodelQueue::new(
            Bytes::new(3000),
            Duration::from_millis(5),
            Duration::from_millis(100),
        );
        assert_eq!(
            q.enqueue_with_ecn(pkt(0, 1500), &mut pool, 0, None),
            Enqueue::Accepted
        );
        assert_eq!(
            q.enqueue_with_ecn(pkt(1, 1500), &mut pool, 0, None),
            Enqueue::Accepted
        );
        assert_eq!(
            q.enqueue_with_ecn(pkt(2, 1500), &mut pool, 0, None),
            Enqueue::Dropped
        );
        let c = q.counters();
        assert_eq!(c.drops, 1);
        assert_eq!(c.aqm_drops, 0);
        ledger_balances(&c, q.occupied_bytes());
        // Refused packets never touched the slab.
        assert_eq!(pool.live(), 2);
    }

    #[test]
    fn pie_early_drops_under_sustained_delay() {
        let mut pool = PacketPool::with_capacity(4096);
        let mut q = PieQueue::new(
            Bytes::new(10_000_000),
            Duration::from_millis(15),
            Duration::from_millis(15),
            DetRng::new(7),
        );
        // Arrivals far faster than departures: head sojourn grows without
        // bound, so drop_prob must rise and shed arrivals.
        let mut t = 0u64;
        let mut refused = 0u64;
        for s in 0..4000u64 {
            t += MS / 4; // 4 pkts/ms in
            if q.enqueue_with_ecn(pkt(s, 1500), &mut pool, t, None) == Enqueue::Dropped {
                refused += 1;
            }
            if s % 8 == 0 {
                if let Some(h) = q.dequeue(&mut pool, t) {
                    pool.release(h); // 1 pkt per 2 ms out
                }
            }
        }
        let c = q.counters();
        assert!(refused > 0, "PIE never early-dropped under standing delay");
        assert_eq!(c.drops, refused);
        assert_eq!(c.aqm_drops, 0, "PIE drops are pre-admission");
        ledger_balances(&c, q.occupied_bytes());
    }

    #[test]
    fn pie_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut pool = PacketPool::with_capacity(4096);
            let mut q = PieQueue::new(
                Bytes::new(10_000_000),
                Duration::from_millis(15),
                Duration::from_millis(15),
                DetRng::new(seed),
            );
            let mut t = 0u64;
            let mut pattern = Vec::new();
            for s in 0..2000u64 {
                t += MS / 4;
                pattern.push(
                    q.enqueue_with_ecn(pkt(s, 1500), &mut pool, t, None) == Enqueue::Accepted,
                );
                if s % 8 == 0 {
                    if let Some(h) = q.dequeue(&mut pool, t) {
                        pool.release(h);
                    }
                }
            }
            pattern
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn pie_drop_prob_decays_when_idle() {
        let mut pool = PacketPool::with_capacity(4096);
        let mut q = PieQueue::new(
            Bytes::new(10_000_000),
            Duration::from_millis(15),
            Duration::from_millis(15),
            DetRng::new(1),
        );
        let mut t = 0u64;
        for s in 0..2000u64 {
            t += MS / 4;
            q.enqueue_with_ecn(pkt(s, 1500), &mut pool, t, None);
            if s % 8 == 0 {
                if let Some(h) = q.dequeue(&mut pool, t) {
                    pool.release(h);
                }
            }
        }
        assert!(q.drop_prob > 0.0);
        while let Some(h) = q.dequeue(&mut pool, t) {
            pool.release(h);
        }
        assert_eq!(pool.live(), 0);
        // A long idle stretch decays the probability to zero.
        q.maybe_update(t + 60_000 * MS);
        assert_eq!(q.drop_prob, 0.0);
    }

    #[test]
    fn token_bucket_polices_rate() {
        // 12 Mbps policer = 1500 bytes per ms; bucket 2 MTUs deep.
        let mut pool = PacketPool::with_capacity(256);
        let mut q = TokenBucketQueue::new(
            Bytes::new(1_000_000),
            Rate::from_mbps(12.0),
            Bytes::new(3000),
        );
        // Offer 4 packets per ms for 100 ms: only ~1/ms can conform.
        let mut accepted = 0u64;
        let mut t = 0u64;
        for s in 0..400u64 {
            t += MS / 4;
            if q.enqueue_with_ecn(pkt(s, 1500), &mut pool, t, None) == Enqueue::Accepted {
                accepted += 1;
            }
        }
        // 100 ms of credit + the initial burst, within one packet slack.
        assert!((100..=103).contains(&accepted), "accepted {accepted}");
        let c = q.counters();
        assert_eq!(c.admitted + c.drops, 400);
        ledger_balances(&c, q.occupied_bytes());
    }

    #[test]
    fn token_bucket_conforming_traffic_passes_untouched() {
        let mut pool = PacketPool::with_capacity(4);
        let mut q = TokenBucketQueue::new(
            Bytes::new(1_000_000),
            Rate::from_mbps(12.0),
            Bytes::new(3000),
        );
        // 1 packet per 2 ms = 6 Mbps, half the policed rate.
        for s in 0..100u64 {
            let t = s * 2 * MS;
            assert_eq!(
                q.enqueue_with_ecn(pkt(s, 1500), &mut pool, t, None),
                Enqueue::Accepted
            );
            let h = q.dequeue(&mut pool, t + MS / 2).expect("just queued");
            pool.release(h);
        }
        assert_eq!(q.counters().drops, 0);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn any_queue_builds_every_discipline() {
        let buffer = Bytes::new(150_000);
        for cfg in [
            QueueConfig::Droptail,
            QueueConfig::codel_default(),
            QueueConfig::pie_default(),
            QueueConfig::TokenBucket {
                rate: Rate::from_mbps(10.0),
                burst: Bytes::new(15_000),
            },
        ] {
            let mut pool = PacketPool::with_capacity(4);
            let mut q = AnyQueue::build(cfg, buffer, DetRng::new(3));
            assert!(q.is_empty());
            assert_eq!(
                q.enqueue_with_ecn(pkt(0, 1500), &mut pool, 0, None),
                Enqueue::Accepted
            );
            assert_eq!(q.occupied_bytes(), 1500);
            assert_eq!(q.len(), 1);
            let h = q
                .dequeue(&mut pool, 1_000_000)
                .expect("one packet is queued");
            let out = pool.release(h);
            assert_eq!(out.seq, 0);
            let c = q.counters();
            assert_eq!(c.admitted_bytes, 1500);
            assert_eq!(c.dequeued_bytes, 1500);
            assert!(q.mean_occupancy(2_000_000) > 0.0);
            assert_eq!(pool.live(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "clock went backwards")]
    #[cfg(any(debug_assertions, feature = "checked-invariants"))]
    fn aqm_clock_must_be_monotone() {
        let mut pool = PacketPool::with_capacity(4);
        let mut q = CodelQueue::new(
            Bytes::new(10_000),
            Duration::from_millis(5),
            Duration::from_millis(100),
        );
        q.enqueue_with_ecn(pkt(0, 1500), &mut pool, 1000, None);
        q.dequeue(&mut pool, 500);
    }
}
