//! Packet and flow identifiers.

use libra_types::Instant;

/// Index of a flow within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The flow's position in the simulation's flow table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data packet traversing the bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Per-flow sequence number (monotonic from 0).
    pub seq: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Departure time from the sender.
    pub sent_at: Instant,
    /// Sender's cumulative delivered-byte count at send time (for
    /// delivery-rate samples).
    pub delivered_at_send: u64,
    /// Whether the sender was application-limited at send time.
    pub app_limited: bool,
    /// Congestion-experienced (ECN CE) mark set by the queue.
    pub ecn: bool,
}

/// An acknowledgement travelling back to the sender. The receiver echoes
/// the data packet's bookkeeping so the sender can compute RTT and
/// delivery-rate samples without keeping per-packet state on the receiver.
#[derive(Debug, Clone, Copy)]
pub struct AckPacket {
    /// Owning flow.
    pub flow: FlowId,
    /// Acknowledged sequence number.
    pub seq: u64,
    /// Acknowledged payload bytes.
    pub bytes: u64,
    /// Echoed departure time of the data packet.
    pub sent_at: Instant,
    /// Echoed delivered-at-send counter.
    pub delivered_at_send: u64,
    /// Echoed application-limited flag.
    pub app_limited: bool,
    /// ECN-echo: the data packet was CE-marked.
    pub ecn: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_index() {
        assert_eq!(FlowId(3).index(), 3);
        assert!(FlowId(1) < FlowId(2));
    }

    #[test]
    fn packet_is_copy() {
        let p = Packet {
            flow: FlowId(0),
            seq: 7,
            bytes: 1500,
            sent_at: Instant::from_millis(3),
            delivered_at_send: 0,
            app_limited: false,
            ecn: false,
        };
        let q = p;
        assert_eq!(p.seq, q.seq);
    }
}
