// Production code must justify every potential panic site: unwraps are
// banned outside tests (audited sites use `expect` with an invariant
// message or handle the `None`/`Err` branch).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Hierarchical timer wheel: the O(1)-amortized event scheduler behind
//! [`crate::Simulation`].
//!
//! # Why not a binary heap?
//!
//! The original event core pushed every event through one global
//! `BinaryHeap`. At single-digit flow counts that is fine; at O(1000)
//! concurrent flows the heap holds thousands of timers (pacer wakes, MI
//! ticks, RTO checks, in-flight ACKs) and every push/pop pays
//! `O(log n)` compares over a cache-hostile array. The wheel replaces
//! that with `O(1)` amortized insert/extract: an event lands in a slot
//! indexed by its timestamp bits, and extraction walks occupancy
//! bitmaps instead of sifting.
//!
//! # Layout
//!
//! Time is quantized into level-0 slots of `2^12` ns (~4.1 µs). Each of
//! the [`LEVELS`] levels holds [`SLOTS`] slots; the level of an event is
//! the **highest byte in which its slot number differs from the current
//! cursor** (a 256-ary radix trie on the slot number):
//!
//! ```text
//! level 0:  4.1 µs/slot   — next ~1 ms     (byte 0 of slot0 differs)
//! level 1:  1.05 ms/slot  — next ~268 ms   (byte 1 differs)
//! level 2:  268 ms/slot   — next ~68.7 s   (byte 2 differs)
//! level 3:  68.7 s/slot   — next ~4.9 h    (byte 3 differs)
//! overflow: calendar fallback (min-heap)   — anything farther
//! ```
//!
//! Insertion is a `xor` + `leading_zeros` + `Vec::push`. Extraction
//! drains a tiny *near-heap* holding only the current 4 µs slot; when it
//! empties, occupancy bitmaps find the next populated slot across all
//! levels and either dump it into the near-heap (level 0) or cascade it
//! down one level (levels ≥ 1). Every event cascades at most
//! `LEVELS - 1` times, so the amortized cost per event is constant.
//!
//! # Determinism
//!
//! Pop order is **exactly** the binary heap's `(at, seq)` order — the
//! property the pinned run digests depend on:
//!
//! * Slots partition time, and the cursor visits slots in increasing
//!   slot-number order (the radix-trie prefix rule guarantees a
//!   level-k slot is only entered once everything before it drained).
//! * Within a slot, the near-heap orders entries by the same
//!   `(at, seq)` key the global heap used.
//! * Overflow events differ from the cursor above byte 3, so they sort
//!   after every event resident in the wheel and are only consulted
//!   when the wheel is empty.
//!
//! `tests/wheel_equivalence.rs` (and the in-crate tests below) replay
//! identical event streams through both schedulers and require
//! byte-identical pop order.

use libra_types::Instant;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Log2 of the level-0 slot width in nanoseconds.
const GRAIN_BITS: u32 = 12;
/// Slots per level (one byte of the slot number per level).
const SLOTS: usize = 256;
/// Wheel levels; beyond them the overflow heap takes over.
const LEVELS: usize = 4;
/// Bitmap words per level (256 slots / 64 bits).
const WORDS: usize = SLOTS / 64;

/// One scheduled event: the timestamp, the global schedule sequence
/// number (tie-break), and the payload.
#[derive(Debug)]
pub struct TimedEntry<E> {
    /// Due time.
    pub at: Instant,
    /// Schedule-order sequence number: the secondary sort key.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for TimedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for TimedEntry<E> {}
impl<E> PartialOrd for TimedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for TimedEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The hierarchical timer wheel. Generic over the event payload so the
/// scheduler is testable without dragging the simulator in.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// Current level-0 slot number (`at.nanos() >> GRAIN_BITS`): all
    /// events in strictly earlier slots have been drained.
    cursor: u64,
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<TimedEntry<E>>>,
    /// Occupancy bitmaps, one 256-bit map per level.
    occ: [[u64; WORDS]; LEVELS],
    /// Events inside the current level-0 slot, ordered by `(at, seq)`.
    near: BinaryHeap<Reverse<TimedEntry<E>>>,
    /// Events beyond the wheel horizon (> ~4.9 h ahead): strictly later
    /// than everything in the wheel, so a plain min-heap suffices — the
    /// calendar-queue fallback for far-future timers.
    overflow: BinaryHeap<Reverse<TimedEntry<E>>>,
    /// Total resident events.
    len: usize,
}

impl<E> TimerWheel<E> {
    /// An empty wheel starting at t = 0.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; WORDS]; LEVELS],
            near: BinaryHeap::with_capacity(64),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Resident event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no event is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_bit(&mut self, level: usize, idx: usize) {
        self.occ[level][idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear_bit(&mut self, level: usize, idx: usize) {
        self.occ[level][idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Schedule an entry. O(1): radix math plus one `Vec::push`.
    pub fn push(&mut self, entry: TimedEntry<E>) {
        self.len += 1;
        let slot0 = entry.at.nanos() >> GRAIN_BITS;
        if slot0 <= self.cursor {
            // Due inside the slot currently being drained (or, defensively,
            // in the past): the near-heap restores exact (at, seq) order.
            self.near.push(Reverse(entry));
            return;
        }
        let diff = slot0 ^ self.cursor;
        // Highest differing byte picks the level: the 256-ary radix rule.
        let level = ((63 - diff.leading_zeros()) / 8) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(entry));
            return;
        }
        let idx = ((slot0 >> (8 * level)) & 0xFF) as usize;
        self.slots[level * SLOTS + idx].push(entry);
        self.set_bit(level, idx);
    }

    /// Extract the globally minimum `(at, seq)` entry. Amortized O(1).
    pub fn pop(&mut self) -> Option<TimedEntry<E>> {
        loop {
            if let Some(Reverse(entry)) = self.near.pop() {
                self.len -= 1;
                return Some(entry);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// The near-heap is dry: move the cursor to the next populated slot.
    /// Level 0 slots dump straight into the near-heap; higher-level slots
    /// cascade one level down (splitting on the next byte of the slot
    /// number). Each event moves at most `LEVELS - 1` times in its life.
    fn advance(&mut self) {
        // Find, per level, the next occupied slot index strictly after the
        // cursor's position at that level; the lowest level with a hit at
        // the smallest absolute time wins. The radix-prefix invariant
        // makes the comparison easy: a level-k candidate's absolute slot
        // is the cursor with byte k replaced and lower bytes zeroed, and
        // any level-k slot at an index ≤ the cursor's byte k would have
        // been drained already (events are always inserted strictly ahead
        // of the cursor at their level's byte).
        let mut best: Option<(u64, usize, usize)> = None; // (abs_slot, level, idx)
        for level in 0..LEVELS {
            let pos = ((self.cursor >> (8 * level)) & 0xFF) as usize;
            if let Some(idx) = self.next_occupied(level, pos) {
                let keep_mask = u64::MAX << (8 * (level + 1)); // bytes above k
                let abs = (self.cursor & keep_mask) | ((idx as u64) << (8 * level));
                if best.is_none_or(|(b, _, _)| abs < b) {
                    best = Some((abs, level, idx));
                }
                // A populated lower level closer than any higher-level
                // boundary always wins, but a higher-level slot can still
                // be nearer when the lower levels are empty far ahead —
                // so all levels are compared (4 bitmap scans, cheap).
            }
        }
        let Some((abs, level, idx)) = best else {
            // Wheel empty but len > 0: pull the earliest overflow entry
            // back in. Its slot now shares a prefix with the cursor once
            // the cursor jumps to it.
            if let Some(Reverse(entry)) = self.overflow.pop() {
                let slot0 = entry.at.nanos() >> GRAIN_BITS;
                self.cursor = slot0;
                self.near.push(Reverse(entry));
                // Re-home any other overflow entries that the new cursor
                // position brought inside the wheel horizon.
                self.rehome_overflow();
            }
            return;
        };
        self.cursor = abs;
        let bucket = std::mem::take(&mut self.slots[level * SLOTS + idx]);
        self.clear_bit(level, idx);
        if level == 0 {
            self.near.extend(bucket.into_iter().map(Reverse));
        } else {
            // Cascade: redistribute on the next-lower byte. `push`
            // re-derives the level from the (moved) cursor, so entries in
            // this slot split across levels < `level` or the near-heap.
            self.len -= bucket.len();
            for entry in bucket {
                self.push(entry);
            }
        }
    }

    /// After a cursor jump to an overflow entry, any remaining overflow
    /// entries that now share a 4-byte prefix with the cursor belong in
    /// the wheel proper.
    fn rehome_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            let slot0 = head.at.nanos() >> GRAIN_BITS;
            let diff = slot0 ^ self.cursor;
            if diff != 0 && ((63 - diff.leading_zeros()) / 8) as usize >= LEVELS {
                break; // still beyond the horizon (heap ⇒ the rest are too)
            }
            let Some(Reverse(entry)) = self.overflow.pop() else {
                break;
            };
            self.len -= 1; // push re-counts it
            self.push(entry);
        }
    }

    /// First occupied slot index strictly greater than `pos` at `level`.
    #[inline]
    fn next_occupied(&self, level: usize, pos: usize) -> Option<usize> {
        let map = &self.occ[level];
        let mut word = pos / 64;
        // Mask off bits ≤ pos in the first word.
        let mut bits = map[word] & (u64::MAX << (pos % 64)) & !(1u64 << (pos % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= WORDS {
                return None;
            }
            bits = map[word];
        }
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_types::DetRng;

    fn entry(at_ns: u64, seq: u64) -> TimedEntry<u64> {
        TimedEntry {
            at: Instant::from_nanos(at_ns),
            seq,
            event: seq,
        }
    }

    /// Drain both a wheel and a reference heap fed the same stream and
    /// require identical pop order.
    fn check_against_heap(times: Vec<u64>) {
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<TimedEntry<u64>>> = BinaryHeap::new();
        for (seq, t) in times.iter().enumerate() {
            wheel.push(entry(*t, seq as u64));
            heap.push(Reverse(entry(*t, seq as u64)));
        }
        let mut n = 0;
        while let Some(Reverse(want)) = heap.pop() {
            let got = wheel.pop().expect("wheel has as many events as heap");
            assert_eq!((got.at, got.seq), (want.at, want.seq), "pop #{n} diverged");
            n += 1;
        }
        assert!(wheel.pop().is_none());
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn empty_wheel_pops_none() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }

    #[test]
    fn orders_same_slot_by_seq() {
        check_against_heap(vec![100, 100, 100, 50, 50]);
    }

    #[test]
    fn orders_across_levels() {
        // One event per level plus overflow.
        check_against_heap(vec![
            1,                  // near/level 0
            5_000,              // level 0
            2_000_000,          // level 1
            900_000_000,        // level 2
            100_000_000_000,    // level 3
            50_000_000_000_000, // overflow (~13.9 h)
        ]);
    }

    #[test]
    fn random_streams_match_heap_order() {
        let mut rng = DetRng::new(0xA11CE);
        for scale in [1_000u64, 1_000_000, 10_000_000_000, u64::MAX / 2] {
            let times: Vec<u64> = (0..2_000).map(|_| rng.uniform_u64(0, scale)).collect();
            check_against_heap(times);
        }
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Push while draining — the simulator's actual access pattern
        // (every dispatched event schedules successors at ≥ now).
        let mut rng = DetRng::new(7);
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<TimedEntry<u64>>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |w: &mut TimerWheel<u64>, h: &mut BinaryHeap<_>, at: u64| {
            w.push(entry(at, seq));
            h.push(Reverse(entry(at, seq)));
            seq += 1;
        };
        for t in 0..64u64 {
            push(&mut wheel, &mut heap, t * 1000);
        }
        let mut now = 0u64;
        for _ in 0..50_000 {
            let Some(Reverse(want)) = heap.pop() else {
                break;
            };
            let got = wheel.pop().expect("wheel in sync");
            assert_eq!((got.at, got.seq), (want.at, want.seq));
            now = want.at.nanos();
            // Schedule 0–2 successors at or after `now`, at mixed scales.
            for _ in 0..rng.uniform_u64(0, 3) {
                let delta = match rng.uniform_u64(0, 4) {
                    0 => rng.uniform_u64(0, 1 << 12), // same slot
                    1 => rng.uniform_u64(0, 1 << 20), // level 0/1
                    2 => rng.uniform_u64(0, 1 << 30), // level 2
                    _ => rng.uniform_u64(0, 1 << 44), // level 3/overflow
                };
                push(&mut wheel, &mut heap, now + delta);
            }
        }
        // Drain the rest.
        while let Some(Reverse(want)) = heap.pop() {
            let got = wheel.pop().expect("wheel drains fully");
            assert_eq!((got.at, got.seq), (want.at, want.seq));
        }
        assert!(wheel.pop().is_none());
        let _ = now;
    }

    #[test]
    fn far_future_overflow_rehomes() {
        let mut wheel = TimerWheel::new();
        // Three overflow-range events and nothing else.
        wheel.push(entry(60_000_000_000_000, 0)); // ~16.7 h
        wheel.push(entry(50_000_000_000_000, 1));
        wheel.push(entry(50_000_000_100_000, 2));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(1));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(2));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn len_tracks_residency() {
        let mut wheel = TimerWheel::new();
        for i in 0..100 {
            wheel.push(entry(i * 999, i));
        }
        assert_eq!(wheel.len(), 100);
        for left in (0..100usize).rev() {
            wheel.pop().expect("still resident");
            assert_eq!(wheel.len(), left);
        }
    }
}
