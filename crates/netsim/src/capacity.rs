//! Time-varying link capacity.
//!
//! A [`CapacitySchedule`] is a piecewise-constant function from simulated
//! time to link rate — the same model Mahimahi derives from its
//! packet-delivery-opportunity traces. The bottleneck integrates the
//! schedule to find when a packet of a given size finishes serialization,
//! which handles zero-capacity outages (an LTE deep fade) naturally: the
//! packet simply waits for the next non-zero segment.

use libra_types::{Duration, Instant, Rate};

/// A piecewise-constant capacity profile.
///
/// Segment `i` holds rate `segments[i].1` from `segments[i].0` until the
/// next segment's start (the final segment holds forever). Segments are
/// sorted by start time and the first segment starts at time zero.
#[derive(Debug, Clone)]
pub struct CapacitySchedule {
    segments: Vec<(Instant, Rate)>,
}

impl CapacitySchedule {
    /// A constant-rate link.
    pub fn constant(rate: Rate) -> Self {
        CapacitySchedule {
            segments: vec![(Instant::ZERO, rate)],
        }
    }

    /// Build from explicit `(start, rate)` breakpoints. Breakpoints are
    /// sorted; a segment at time zero is synthesized (rate of the earliest
    /// breakpoint) if missing.
    pub fn from_segments(mut segments: Vec<(Instant, Rate)>) -> Self {
        assert!(!segments.is_empty(), "capacity schedule needs >= 1 segment");
        segments.sort_by_key(|s| s.0);
        if segments[0].0 != Instant::ZERO {
            let first_rate = segments[0].1;
            segments.insert(0, (Instant::ZERO, first_rate));
        }
        // Collapse duplicate start times, keeping the last entry.
        segments.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 = b.1;
                true
            } else {
                false
            }
        });
        CapacitySchedule { segments }
    }

    /// The paper's *step scenario* (Fig. 2a): capacity changes every
    /// `period`, cycling through `rates`.
    pub fn step(rates: &[Rate], period: Duration, total: Duration) -> Self {
        assert!(!rates.is_empty());
        let mut segments = Vec::new();
        let mut t = Instant::ZERO;
        let mut i = 0usize;
        while t.nanos() < total.nanos() {
            segments.push((t, rates[i % rates.len()]));
            i += 1;
            t += period;
        }
        CapacitySchedule::from_segments(segments)
    }

    /// Overlay zero-capacity outage windows (e.g. fault-plan link flaps)
    /// onto this schedule: within each `[from, to)` window the rate is
    /// forced to zero, and at `to` the underlying schedule resumes.
    pub fn with_outages(&self, outages: &[(Instant, Instant)]) -> Self {
        if outages.is_empty() {
            return self.clone();
        }
        let mut windows: Vec<(Instant, Instant)> =
            outages.iter().copied().filter(|(a, b)| a < b).collect();
        windows.sort();
        // Coalesce overlapping/adjacent windows so each resume point is
        // genuinely outside every outage.
        let mut merged: Vec<(Instant, Instant)> = Vec::new();
        for (a, b) in windows {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        let windows = merged;
        let mut segments = Vec::new();
        for &(start, rate) in &self.segments {
            if windows.iter().any(|&(a, b)| a <= start && start < b) {
                // Breakpoint swallowed by an outage; the resume point below
                // restores the correct underlying rate.
                continue;
            }
            segments.push((start, rate));
        }
        for &(a, b) in &windows {
            segments.push((a, Rate::ZERO));
            if b != Instant::FAR_FUTURE {
                segments.push((b, self.rate_at(b)));
            }
        }
        CapacitySchedule::from_segments(segments)
    }

    /// Rate in force at `t`.
    pub fn rate_at(&self, t: Instant) -> Rate {
        match self.segments.binary_search_by_key(&t, |s| s.0) {
            Ok(i) => self.segments[i].1,
            Err(0) => self.segments[0].1,
            Err(i) => self.segments[i - 1].1,
        }
    }

    /// Index of the segment in force at `t`.
    fn segment_index(&self, t: Instant) -> usize {
        match self.segments.binary_search_by_key(&t, |s| s.0) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Index of the segment in force at `t`, starting the search at a
    /// cached `hint` index. Simulated time only moves forward, so the hot
    /// service loop advances linearly (amortized O(1)) instead of
    /// re-binary-searching per packet; a hint from the future (never the
    /// case in the service loop) falls back to the full search.
    fn segment_index_from(&self, hint: usize, t: Instant) -> usize {
        let mut idx = hint.min(self.segments.len() - 1);
        if self.segments[idx].0 > t {
            return self.segment_index(t);
        }
        while idx + 1 < self.segments.len() && self.segments[idx + 1].0 <= t {
            idx += 1;
        }
        idx
    }

    /// When does a transmission of `bytes`, starting at `start`, finish?
    ///
    /// Integrates the capacity forward from `start` until the required
    /// bits have been serialized. Returns [`Instant::FAR_FUTURE`] if the
    /// schedule can never deliver them (zero capacity to the end).
    pub fn service_finish(&self, start: Instant, bytes: u64) -> Instant {
        self.service_finish_inner(self.segment_index(start), start, bytes)
    }

    /// [`service_finish`](Self::service_finish) with a mutable segment
    /// cursor: `cursor` is the last segment index the caller saw and is
    /// updated to the segment in force at `start`. The simulation's
    /// service loop calls this with monotonically nondecreasing `start`
    /// times, so the lookup is amortized O(1). Results are bit-identical
    /// to the cursor-free path.
    pub fn service_finish_hinted(&self, cursor: &mut usize, start: Instant, bytes: u64) -> Instant {
        let idx = self.segment_index_from(*cursor, start);
        *cursor = idx;
        self.service_finish_inner(idx, start, bytes)
    }

    fn service_finish_inner(&self, start_idx: usize, start: Instant, bytes: u64) -> Instant {
        let mut remaining_bits = bytes as f64 * 8.0;
        if remaining_bits <= 0.0 {
            return start;
        }
        let mut idx = start_idx;
        let mut t = start;
        loop {
            let rate = self.segments[idx].1;
            let seg_end = self
                .segments
                .get(idx + 1)
                .map(|s| s.0)
                .unwrap_or(Instant::FAR_FUTURE);
            if !rate.is_zero() {
                let finish = t + Duration::from_secs_f64(remaining_bits / rate.bps());
                if finish <= seg_end || seg_end == Instant::FAR_FUTURE {
                    return finish;
                }
                // Serve what fits in this segment, carry the rest over.
                let seg_span = seg_end.saturating_since(t);
                remaining_bits -= rate.bps() * seg_span.as_secs_f64();
            }
            if seg_end == Instant::FAR_FUTURE {
                // Zero-rate final segment with bits left over.
                return Instant::FAR_FUTURE;
            }
            t = seg_end;
            idx += 1;
        }
    }

    /// Total bytes the link could carry between `a` and `b` — the
    /// denominator of link-utilization figures.
    pub fn capacity_bytes(&self, a: Instant, b: Instant) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut total_bits = 0.0;
        let mut idx = self.segment_index(a);
        let mut t = a;
        while t < b {
            let rate = self.segments[idx].1;
            let seg_end = self
                .segments
                .get(idx + 1)
                .map(|s| s.0)
                .unwrap_or(Instant::FAR_FUTURE);
            let span_end = seg_end.min(b);
            total_bits += rate.bps() * span_end.saturating_since(t).as_secs_f64();
            if seg_end >= b {
                break;
            }
            t = seg_end;
            idx += 1;
        }
        total_bits / 8.0
    }

    /// Mean capacity over `[a, b]`.
    pub fn mean_rate(&self, a: Instant, b: Instant) -> Rate {
        let span = b.saturating_since(a);
        if span.is_zero() {
            return self.rate_at(a);
        }
        Rate::from_bps(self.capacity_bytes(a, b) * 8.0 / span.as_secs_f64())
    }

    /// The breakpoints, for plotting capacity alongside throughput.
    pub fn segments(&self) -> &[(Instant, Rate)] {
        &self.segments
    }

    /// Sampled `(seconds, mbps)` series at `step` granularity up to `until`
    /// (for experiment output).
    pub fn series(&self, until: Instant, step: Duration) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut t = Instant::ZERO;
        while t <= until {
            out.push((t.as_secs_f64(), self.rate_at(t).mbps()));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Rate {
        Rate::from_mbps(x)
    }

    #[test]
    fn constant_schedule() {
        let c = CapacitySchedule::constant(mbps(10.0));
        assert_eq!(c.rate_at(Instant::from_secs(5)), mbps(10.0));
        // 1500 bytes at 10 Mbps = 1.2 ms
        let f = c.service_finish(Instant::ZERO, 1500);
        assert!((f.as_secs_f64() - 0.0012).abs() < 1e-9);
    }

    #[test]
    fn step_schedule_lookup() {
        let c = CapacitySchedule::step(
            &[mbps(5.0), mbps(20.0)],
            Duration::from_secs(10),
            Duration::from_secs(40),
        );
        assert_eq!(c.rate_at(Instant::from_secs(3)), mbps(5.0));
        assert_eq!(c.rate_at(Instant::from_secs(10)), mbps(20.0));
        assert_eq!(c.rate_at(Instant::from_secs(25)), mbps(5.0));
        assert_eq!(c.rate_at(Instant::from_secs(999)), mbps(20.0));
    }

    #[test]
    fn service_spans_segments() {
        // 1 Mbps for 1 s, then 9 Mbps. 250 kB = 2 Mbit: 1 Mbit in the first
        // second, remaining 1 Mbit at 9 Mbps = 1/9 s.
        let c = CapacitySchedule::from_segments(vec![
            (Instant::ZERO, mbps(1.0)),
            (Instant::from_secs(1), mbps(9.0)),
        ]);
        let f = c.service_finish(Instant::ZERO, 250_000);
        assert!((f.as_secs_f64() - (1.0 + 1.0 / 9.0)).abs() < 1e-6);
    }

    #[test]
    fn service_waits_out_zero_capacity() {
        let c = CapacitySchedule::from_segments(vec![
            (Instant::ZERO, Rate::ZERO),
            (Instant::from_secs(2), mbps(8.0)),
        ]);
        // Nothing moves for 2 s, then 1500 bytes at 8 Mbps = 1.5 ms.
        let f = c.service_finish(Instant::ZERO, 1500);
        assert!((f.as_secs_f64() - 2.0015).abs() < 1e-9);
    }

    #[test]
    fn service_never_finishes_on_dead_link() {
        let c = CapacitySchedule::constant(Rate::ZERO);
        assert_eq!(c.service_finish(Instant::ZERO, 1), Instant::FAR_FUTURE);
    }

    #[test]
    fn capacity_bytes_integrates() {
        let c = CapacitySchedule::from_segments(vec![
            (Instant::ZERO, mbps(8.0)),
            (Instant::from_secs(1), mbps(16.0)),
        ]);
        // 1 s at 1 MB/s + 1 s at 2 MB/s
        let b = c.capacity_bytes(Instant::ZERO, Instant::from_secs(2));
        assert!((b - 3_000_000.0).abs() < 1.0);
        // Partial window inside one segment.
        let b2 = c.capacity_bytes(Instant::from_millis(500), Instant::from_millis(1500));
        assert!((b2 - (500_000.0 + 1_000_000.0)).abs() < 1.0);
        assert_eq!(
            c.capacity_bytes(Instant::from_secs(3), Instant::from_secs(3)),
            0.0
        );
    }

    #[test]
    fn mean_rate_weighted() {
        let c = CapacitySchedule::from_segments(vec![
            (Instant::ZERO, mbps(10.0)),
            (Instant::from_secs(1), mbps(30.0)),
        ]);
        let m = c.mean_rate(Instant::ZERO, Instant::from_secs(2));
        assert!((m.mbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn from_segments_sorts_and_fills_zero() {
        let c = CapacitySchedule::from_segments(vec![
            (Instant::from_secs(5), mbps(2.0)),
            (Instant::from_secs(1), mbps(7.0)),
        ]);
        assert_eq!(c.rate_at(Instant::ZERO), mbps(7.0));
        assert_eq!(c.rate_at(Instant::from_secs(6)), mbps(2.0));
    }

    #[test]
    fn outage_overlay_zeros_windows() {
        let c = CapacitySchedule::constant(mbps(10.0)).with_outages(&[
            (Instant::from_secs(2), Instant::from_secs(3)),
            (Instant::from_secs(5), Instant::from_secs(6)),
        ]);
        assert_eq!(c.rate_at(Instant::from_secs(1)), mbps(10.0));
        assert_eq!(c.rate_at(Instant::from_secs(2)), Rate::ZERO);
        assert_eq!(c.rate_at(Instant::from_millis(2999)), Rate::ZERO);
        assert_eq!(c.rate_at(Instant::from_secs(3)), mbps(10.0));
        assert_eq!(c.rate_at(Instant::from_millis(5500)), Rate::ZERO);
        assert_eq!(c.rate_at(Instant::from_secs(7)), mbps(10.0));
    }

    #[test]
    fn outage_overlay_preserves_underlying_steps() {
        // Underlying step at t=4 sits inside the outage [3, 5): after the
        // outage the post-step rate must be in force.
        let c = CapacitySchedule::from_segments(vec![
            (Instant::ZERO, mbps(10.0)),
            (Instant::from_secs(4), mbps(20.0)),
        ])
        .with_outages(&[(Instant::from_secs(3), Instant::from_secs(5))]);
        assert_eq!(c.rate_at(Instant::from_millis(3500)), Rate::ZERO);
        assert_eq!(c.rate_at(Instant::from_millis(4500)), Rate::ZERO);
        assert_eq!(c.rate_at(Instant::from_secs(5)), mbps(20.0));
    }

    #[test]
    fn outage_overlay_merges_overlaps() {
        let c = CapacitySchedule::constant(mbps(10.0)).with_outages(&[
            (Instant::from_secs(1), Instant::from_secs(3)),
            (Instant::from_secs(2), Instant::from_secs(4)),
        ]);
        assert_eq!(c.rate_at(Instant::from_millis(3500)), Rate::ZERO);
        assert_eq!(c.rate_at(Instant::from_secs(4)), mbps(10.0));
        // Empty overlay is a no-op.
        let c2 = CapacitySchedule::constant(mbps(10.0)).with_outages(&[]);
        assert_eq!(c2.rate_at(Instant::ZERO), mbps(10.0));
    }

    #[test]
    fn hinted_service_finish_matches_search() {
        let c = CapacitySchedule::step(
            &[mbps(5.0), mbps(0.0), mbps(20.0), mbps(2.0)],
            Duration::from_millis(700),
            Duration::from_secs(30),
        );
        let mut cursor = 0usize;
        // Monotone forward sweep: the cursor path must be bit-identical to
        // the binary-search path at every step.
        for i in 0..2000u64 {
            let t = Instant::from_millis(i * 14);
            let bytes = 1500 + (i % 7) * 300;
            let expect = c.service_finish(t, bytes);
            let got = c.service_finish_hinted(&mut cursor, t, bytes);
            assert_eq!(got, expect, "mismatch at t={t}");
        }
        // A stale (future) cursor still answers correctly for earlier times.
        let mut late = c.segments().len() - 1;
        assert_eq!(
            c.service_finish_hinted(&mut late, Instant::from_millis(10), 1500),
            c.service_finish(Instant::from_millis(10), 1500)
        );
    }

    #[test]
    fn series_sampling() {
        let c = CapacitySchedule::constant(mbps(4.0));
        let s = c.series(Instant::from_secs(1), Duration::from_millis(500));
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&(_, m)| (m - 4.0).abs() < 1e-12));
    }
}
