//! Per-flow sender: pacing, windowing, RTT estimation, loss detection and
//! monitor-interval bookkeeping.
//!
//! The sender models a bulk transfer (it always has data). It drives one
//! boxed [`CongestionControl`] and translates the packet timeline into the
//! ACK/loss/MI callbacks of the trait — playing the role the TCP stack
//! plays for a kernel CCA module:
//!
//! * **Pacing**: packets leave at the controller's pacing rate (or
//!   `1.2 × cwnd / sRTT` for window-based schemes, Linux-style), never
//!   exceeding `cwnd` bytes in flight.
//! * **RTT estimation**: RFC 6298 smoothed RTT and variance, plus a
//!   connection-lifetime minimum.
//! * **Loss detection**: a packet is declared lost when three later
//!   packets have been ACKed (fast-retransmit emulation), or when nothing
//!   has been ACKed for a full RTO (timeout).
//! * **Monitor intervals**: an [`MiTracker`] aggregates each interval and
//!   the controller is ticked at its own `mi_duration`.
//!
//! Wall-clock time spent inside controller callbacks is accumulated into
//! `compute_ns` — the measurement behind the paper's CPU-overhead figures
//! (Fig. 2c and Fig. 12).

use crate::packet::{AckPacket, FlowId, Packet};
use libra_types::{
    AckEvent, CongestionControl, Duration, Instant, LossEvent, LossKind, MiTracker, P2Quantile,
    Rate, SendEvent, TraceEvent, Tracer, Welford,
};
use std::collections::VecDeque;

/// Packets ACKed beyond an outstanding one before it is declared lost.
const REORDER_WINDOW: u64 = 3;
/// Pacing gain applied to `cwnd / sRTT` for window-based schemes.
const WINDOW_PACING_GAIN: f64 = 1.2;
/// Hard cap on packets emitted per pump — bounds event-queue memory even
/// against a controller reporting an absurd window; the pacer re-wakes
/// immediately to continue.
const MAX_BURST_PER_CALL: usize = 4096;
/// Hard cap on unacknowledged packets the sender tracks — the analogue of
/// the kernel's tcp_mem limits. A controller demanding more is treated as
/// window-limited until ACKs (or loss detection) drain the backlog.
const MAX_OUTSTANDING: usize = 100_000;
/// RTO bounds.
const MIN_RTO: Duration = Duration::from_millis(200);
const MAX_RTO: Duration = Duration::from_secs(10);

#[derive(Debug, Clone, Copy)]
struct SentMeta {
    bytes: u64,
    sent_at: Instant,
}

/// Outstanding-packet table specialised to the sender's access pattern:
/// sequence numbers are assigned contiguously, ACKs clear slots near the
/// front, and loss sweeps consume a prefix. A ring buffer of
/// `Option<SentMeta>` indexed by `seq - base` replaces the old
/// `BTreeMap<u64, SentMeta>`: every insert/remove is O(1) with zero
/// allocator traffic in steady state, versus a node allocation and
/// rebalancing walk per packet for the map — one of the dominant costs on
/// the per-ACK hot path at thousand-flow scale.
///
/// Invariant: the front slot, when present, is always live (`Some`) — the
/// oldest outstanding packet — so `base` doubles as the oldest live
/// sequence and `slots.is_empty()` ⟺ no packets outstanding.
#[derive(Debug, Default)]
struct OutstandingWindow {
    /// Sequence number of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<SentMeta>>,
    /// Count of live (unacked, not-yet-lost) entries.
    live: usize,
}

impl OutstandingWindow {
    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Record a freshly sent packet. Sequences arrive contiguously (the
    /// sender allocates them with a counter), so this is always a
    /// push_back.
    fn insert(&mut self, seq: u64, meta: SentMeta) {
        if self.slots.is_empty() {
            self.base = seq;
        }
        debug_assert_eq!(
            seq,
            self.base + self.slots.len() as u64,
            "non-contiguous send sequence"
        );
        self.slots.push_back(Some(meta));
        self.live += 1;
    }

    /// Clear the slot for `seq`, returning its metadata if it was live.
    fn remove(&mut self, seq: u64) -> Option<SentMeta> {
        if seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        let meta = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        self.trim();
        Some(meta)
    }

    /// Restore the front-is-live invariant after a removal.
    fn trim(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Pop the oldest live entry if its sequence is below `cutoff`
    /// (the reorder-loss sweep).
    fn take_front_below(&mut self, cutoff: u64) -> Option<(u64, SentMeta)> {
        if self.base >= cutoff {
            return None;
        }
        let meta = self.slots.pop_front()??; // front is live by invariant
        let seq = self.base;
        self.base += 1;
        self.live -= 1;
        self.trim();
        Some((seq, meta))
    }

    /// Write off everything outstanding (RTO). Returns the oldest live
    /// sequence, total live bytes, and live count. Must not be called
    /// when empty.
    fn flush(&mut self) -> (u64, u64, u64) {
        debug_assert!(!self.is_empty());
        let oldest = self.base;
        let mut bytes = 0u64;
        let mut n = 0u64;
        for meta in self.slots.drain(..).flatten() {
            bytes += meta.bytes;
            n += 1;
        }
        self.live = 0;
        (oldest, bytes, n)
    }
}

/// Time-series metrics with a fixed bin width.
#[derive(Debug, Clone)]
pub struct BinSeries {
    bin: Duration,
    bins: Vec<f64>,
}

/// Upper bound on preallocated series entries — a guard against a
/// pathological stop time (e.g. `Instant::FAR_FUTURE` at a 100 ms bin).
/// Runs longer than the hint simply fall back to amortized growth.
const MAX_SERIES_PREALLOC: usize = 16_384;

impl BinSeries {
    /// A series with capacity reserved for `horizon` of simulated time,
    /// so the per-ACK `add` path never reallocates during a run.
    fn with_horizon(bin: Duration, horizon: Duration) -> Self {
        let hint = (horizon.nanos() / bin.nanos().max(1) + 1).min(MAX_SERIES_PREALLOC as u64);
        BinSeries {
            bin,
            bins: Vec::with_capacity(hint as usize),
        }
    }

    fn add(&mut self, t: Instant, value: f64) {
        let idx = (t.nanos() / self.bin.nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// `(bin-center seconds, accumulated value)` pairs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i as f64 + 0.5) * w, v))
            .collect()
    }

    /// Accumulated bytes per bin converted to Mbps.
    pub fn points_as_mbps(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.points()
            .into_iter()
            .map(|(t, bytes)| (t, bytes * 8.0 / w / 1e6))
            .collect()
    }

    /// The configured bin width.
    pub fn bin(&self) -> Duration {
        self.bin
    }
}

/// One flow's sending endpoint.
pub struct FlowSender {
    /// Flow identity.
    pub id: FlowId,
    /// The congestion controller under test.
    pub cca: Box<dyn CongestionControl>,
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// First permitted transmission.
    pub start: Instant,
    /// Transmissions cease at this time (ACK processing continues).
    pub stop: Instant,
    active: bool,

    next_seq: u64,
    outstanding: OutstandingWindow,
    in_flight: u64,
    delivered: u64,
    highest_acked: Option<u64>,

    srtt: Duration,
    rttvar: Duration,
    min_rtt: Duration,
    has_rtt: bool,
    init_rtt: Duration,

    next_send_time: Instant,
    last_progress: Instant,
    /// Generation counter for RTO events; stale events are ignored.
    pub rto_generation: u64,
    /// Earliest pacer wake currently sitting in the event queue, used to
    /// deduplicate wake events (without this, every pacing-limited pump
    /// would spawn an immortal chain of spurious wakes).
    pub pending_wake: Option<Instant>,

    tracker: MiTracker,
    /// Reused buffer for losses detected on the last ACK — returned by
    /// slice so the per-ACK hot path never allocates.
    last_losses: Vec<LossEvent>,
    /// Stats of a monitor interval whose decision is pending at the
    /// policy server (between `mi_tick_submit` and `mi_tick_resolve`).
    pending_mi: Option<libra_types::MiStats>,

    // ---- metrics ----
    /// Bytes handed to the network.
    pub sent_bytes: u64,
    /// Packets handed to the network.
    pub sent_packets: u64,
    /// Bytes acknowledged.
    pub delivered_bytes: u64,
    /// Packets acknowledged.
    pub acked_packets: u64,
    /// Packets declared lost.
    pub lost_packets: u64,
    /// Bytes declared lost.
    pub lost_bytes: u64,
    /// RTT sample statistics (milliseconds).
    pub rtt_stats: Welford,
    /// Streaming P² estimate of the 95th-percentile RTT (milliseconds).
    pub rtt_p95: P2Quantile,
    /// Delivered bytes per time bin.
    pub goodput_bins: BinSeries,
    /// Sparse `(seconds, ms)` RTT series for plotting.
    pub rtt_series: Vec<(f64, f64)>,
    /// ECN-echo count received.
    pub ecn_echoes: u64,
    /// Nanoseconds of wall-clock compute spent inside the controller.
    pub compute_ns: u64,
    /// Policy responses touched by an injected boundary fault.
    pub policy_faults: u64,
    /// Policy requests quarantined for invalid state vectors.
    pub policy_quarantines: u64,
    /// Whether to measure controller compute time (tiny overhead).
    pub measure_compute: bool,
    /// Structured-trace handle for transport-level events (RTOs,
    /// fast-retransmits, MI closes). Disabled by default; the simulation
    /// installs a live tracer when tracing is enabled.
    pub tracer: Tracer,
}

impl FlowSender {
    /// Create a sender. `init_rtt` seeds RTO/MI clocks before the first
    /// RTT sample (the simulator passes twice the propagation delay).
    pub fn new(
        id: FlowId,
        cca: Box<dyn CongestionControl>,
        mss: u64,
        start: Instant,
        stop: Instant,
        init_rtt: Duration,
        metrics_bin: Duration,
    ) -> Self {
        FlowSender {
            id,
            cca,
            mss,
            start,
            stop,
            active: false,
            next_seq: 0,
            outstanding: OutstandingWindow::default(),
            in_flight: 0,
            delivered: 0,
            highest_acked: None,
            srtt: Duration::ZERO,
            rttvar: Duration::ZERO,
            min_rtt: Duration::MAX,
            has_rtt: false,
            init_rtt,
            next_send_time: Instant::ZERO,
            last_progress: start,
            rto_generation: 0,
            pending_wake: None,
            tracker: MiTracker::new(start),
            last_losses: Vec::new(),
            pending_mi: None,
            sent_bytes: 0,
            sent_packets: 0,
            delivered_bytes: 0,
            acked_packets: 0,
            lost_packets: 0,
            lost_bytes: 0,
            rtt_stats: Welford::new(),
            rtt_p95: P2Quantile::new(0.95),
            goodput_bins: BinSeries::with_horizon(metrics_bin, stop.saturating_since(start)),
            rtt_series: Vec::with_capacity(256),
            ecn_echoes: 0,
            compute_ns: 0,
            policy_faults: 0,
            policy_quarantines: 0,
            measure_compute: true,
            tracer: Tracer::disabled(),
        }
    }

    /// Smoothed RTT, falling back to the initial estimate before the first
    /// sample.
    pub fn srtt(&self) -> Duration {
        if self.has_rtt {
            self.srtt
        } else {
            self.init_rtt
        }
    }

    /// Lifetime minimum RTT (initial estimate before the first sample).
    pub fn min_rtt(&self) -> Duration {
        if self.has_rtt {
            self.min_rtt
        } else {
            self.init_rtt
        }
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Duration {
        // Before the first RTT sample, assume variance of half the initial
        // estimate (RFC 6298's K·srtt/2 bootstrap) — otherwise the timeout
        // lands exactly on the first ACK's arrival on long-RTT paths
        // (satellite) and wrongly flushes the window.
        let var = if self.has_rtt {
            self.rttvar
        } else {
            self.init_rtt / 2
        };
        let base = self.srtt() + var * 4;
        base.max(MIN_RTO).min(MAX_RTO)
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether the flow may currently transmit.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Timestamp of the last forward progress (send or ACK).
    pub fn last_progress(&self) -> Instant {
        self.last_progress
    }

    /// Begin transmitting (FlowStart event).
    pub fn activate(&mut self, now: Instant) {
        self.active = true;
        self.last_progress = now;
        self.next_send_time = now;
    }

    /// Stop transmitting (FlowStop event).
    pub fn deactivate(&mut self) {
        self.active = false;
    }

    // Audited taint barrier: the wall stamp feeds only compute_ns, the
    // one report field documented as a host measurement and excluded
    // from determinism guarantees.
    // lint: allow(nondeterminism_taint)
    fn time_cca<R>(&mut self, f: impl FnOnce(&mut dyn CongestionControl) -> R) -> R {
        if self.measure_compute {
            let t0 = crate::host_clock::stamp();
            let r = f(self.cca.as_mut());
            self.compute_ns += t0.elapsed_ns();
            r
        } else {
            f(self.cca.as_mut())
        }
    }

    /// The controller's current pacing rate; `None` means "send unpaced"
    /// (only before the first RTT sample for window-based schemes).
    fn pacing_rate(&self) -> Option<Rate> {
        if let Some(r) = self.cca.pacing_rate() {
            return Some(r);
        }
        if !self.has_rtt {
            return None; // initial window leaves as a burst
        }
        Some(Rate::from_bytes_over(self.cca.cwnd_bytes(), self.srtt).scale(WINDOW_PACING_GAIN))
    }

    /// Emit as many packets as window and pacing allow at `now`, appending
    /// them to the caller-owned `out` scratch buffer (the simulator reuses
    /// one per pump, so the hot path never allocates). Returns when to
    /// wake the pacer next, if pacing-limited.
    pub fn try_emit(&mut self, now: Instant, out: &mut Vec<Packet>) -> Option<Instant> {
        if !self.active || now >= self.stop {
            return None;
        }
        let mut emitted = 0usize;
        loop {
            let cwnd = self.cca.cwnd_bytes();
            if self.in_flight + self.mss > cwnd {
                return None; // window-limited: an ACK will retrigger us
            }
            if self.outstanding.len() >= MAX_OUTSTANDING {
                return None; // memory-limited: ACK/loss will retrigger us
            }
            match self.pacing_rate() {
                None => {
                    // Unpaced initial burst.
                    out.push(self.emit_packet(now));
                    emitted += 1;
                }
                Some(rate) if rate.is_zero() => {
                    // Paused; a controller event will retrigger us.
                    return None;
                }
                Some(rate) => {
                    if self.next_send_time > now {
                        return Some(self.next_send_time);
                    }
                    out.push(self.emit_packet(now));
                    emitted += 1;
                    // Floor the pacing gap at 1 ns so an extreme rate can
                    // never freeze the pacing clock in integer time.
                    let gap = rate.transmit_time(self.mss).max(Duration::from_nanos(1));
                    let base = if self.next_send_time > now {
                        self.next_send_time
                    } else {
                        now
                    };
                    self.next_send_time = base + gap;
                }
            }
            // Safety valves: never emit more than one window per call, and
            // never more than MAX_BURST_PER_CALL packets (re-wake instead).
            if emitted > 1 + (cwnd / self.mss) as usize {
                return None;
            }
            if emitted >= MAX_BURST_PER_CALL {
                return Some(now + Duration::from_micros(1));
            }
        }
    }

    fn emit_packet(&mut self, now: Instant) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        let p = Packet {
            flow: self.id,
            seq,
            bytes: self.mss,
            sent_at: now,
            delivered_at_send: self.delivered,
            app_limited: false,
            ecn: false,
        };
        self.outstanding.insert(
            seq,
            SentMeta {
                bytes: self.mss,
                sent_at: now,
            },
        );
        self.in_flight += self.mss;
        self.sent_bytes += self.mss;
        self.sent_packets += 1;
        self.last_progress = now;
        let ev = SendEvent {
            now,
            seq,
            bytes: self.mss,
            in_flight: self.in_flight,
        };
        self.tracker.on_send(&ev);
        self.time_cca(|cca| cca.on_send(&ev));
        p
    }

    fn update_rtt(&mut self, sample: Duration) {
        if !self.has_rtt {
            self.srtt = sample;
            self.rttvar = sample / 2;
            self.min_rtt = sample;
            self.has_rtt = true;
        } else {
            // RFC 6298 with α=1/8, β=1/4.
            let diff = if self.srtt > sample {
                self.srtt - sample
            } else {
                sample - self.srtt
            };
            self.rttvar = Duration::from_nanos((self.rttvar.nanos() * 3 + diff.nanos()) / 4);
            self.srtt = Duration::from_nanos((self.srtt.nanos() * 7 + sample.nanos()) / 8);
            self.min_rtt = self.min_rtt.min(sample);
        }
    }

    /// Process an arriving ACK; returns losses detected by the reordering
    /// rule (already reported to the controller). The slice borrows a
    /// buffer reused across ACKs — copy out anything that must outlive the
    /// next call.
    pub fn on_ack_packet(&mut self, ack: &AckPacket, now: Instant) -> &[LossEvent] {
        self.last_losses.clear();
        let meta = match self.outstanding.remove(ack.seq) {
            Some(m) => m,
            None => return &self.last_losses, // late/duplicate ACK for a seq already written off
        };
        self.in_flight = self.in_flight.saturating_sub(meta.bytes);
        self.delivered += meta.bytes;
        self.delivered_bytes += meta.bytes;
        self.acked_packets += 1;
        self.last_progress = now;

        let rtt = now.saturating_since(meta.sent_at);
        self.update_rtt(rtt);
        self.rtt_stats.update(rtt.as_millis_f64());
        self.rtt_p95.update(rtt.as_millis_f64());
        self.goodput_bins.add(now, meta.bytes as f64);
        // Keep the plotted RTT series sparse: one point per ~20 samples.
        if self.acked_packets % 20 == 1 {
            self.rtt_series
                .push((now.as_secs_f64(), rtt.as_millis_f64()));
        }

        self.highest_acked = Some(self.highest_acked.map_or(ack.seq, |h| h.max(ack.seq)));

        let ev = AckEvent {
            now,
            seq: ack.seq,
            bytes: meta.bytes,
            rtt,
            min_rtt: self.min_rtt,
            srtt: self.srtt,
            sent_at: meta.sent_at,
            delivered_at_send: ack.delivered_at_send,
            delivered: self.delivered,
            in_flight: self.in_flight,
            app_limited: ack.app_limited,
        };
        self.tracker.on_ack(&ev);
        self.time_cca(|cca| cca.on_ack(&ev));
        if ack.ecn {
            self.ecn_echoes += 1;
            self.time_cca(|cca| cca.on_ecn(&ev));
        }
        self.check_controller_sanity();

        self.detect_reorder_losses(now);
        &self.last_losses
    }

    /// `checked-invariants`: after every ACK-path controller callback
    /// the CCA must report a positive window and a finite, non-negative
    /// pacing rate — the guardrail-layer contract promoted to a hard
    /// assert so a regression fails loudly in tests instead of
    /// poisoning pacing arithmetic downstream.
    #[cfg(feature = "checked-invariants")]
    fn check_controller_sanity(&self) {
        let cwnd = self.cca.cwnd_bytes();
        assert!(
            cwnd > 0,
            "{}: zero congestion window after controller callback",
            self.cca.name()
        );
        if let Some(rate) = self.cca.pacing_rate() {
            assert!(
                rate.bps().is_finite() && rate.bps() >= 0.0,
                "{}: non-finite pacing rate after controller callback",
                self.cca.name()
            );
        }
    }

    #[cfg(not(feature = "checked-invariants"))]
    #[inline(always)]
    fn check_controller_sanity(&self) {}

    /// Fast-retransmit emulation: outstanding packets more than
    /// [`REORDER_WINDOW`] below the highest ACKed sequence are lost.
    /// Detected losses accumulate into `last_losses` (cleared by the
    /// caller).
    fn detect_reorder_losses(&mut self, now: Instant) {
        let Some(high) = self.highest_acked else {
            return;
        };
        if high < REORDER_WINDOW {
            return;
        }
        let cutoff = high - REORDER_WINDOW;
        while let Some((seq, meta)) = self.outstanding.take_front_below(cutoff) {
            self.in_flight = self.in_flight.saturating_sub(meta.bytes);
            self.lost_packets += 1;
            self.lost_bytes += meta.bytes;
            let ev = LossEvent {
                now,
                seq,
                bytes: meta.bytes,
                in_flight: self.in_flight,
                kind: LossKind::FastRetransmit,
            };
            self.tracker.on_loss(&ev);
            self.time_cca(|cca| cca.on_loss(&ev));
            self.last_losses.push(ev);
        }
        if !self.last_losses.is_empty() {
            self.tracer.emit_with(|| TraceEvent::FastRetransmit {
                flow: self.id.0,
                at_ns: now.nanos(),
                packets: self.last_losses.len() as u64,
            });
        }
    }

    /// Handle an RTO expiry check. Returns true if a timeout fired.
    pub fn on_rto_check(&mut self, now: Instant) -> bool {
        if self.outstanding.is_empty() {
            return false;
        }
        if now.saturating_since(self.last_progress) < self.rto() {
            return false;
        }
        // Everything outstanding is written off; the controller sees one
        // timeout event (per-packet spam would overstate congestion).
        let (oldest, total, n) = self.outstanding.flush();
        self.in_flight = 0;
        self.lost_packets += n;
        self.lost_bytes += total;
        self.last_progress = now;
        self.next_send_time = now;
        let ev = LossEvent {
            now,
            seq: oldest,
            bytes: total,
            in_flight: 0,
            kind: LossKind::Timeout,
        };
        self.tracker.on_loss(&ev);
        self.time_cca(|cca| cca.on_loss(&ev));
        self.tracer.emit_with(|| TraceEvent::Rto {
            flow: self.id.0,
            at_ns: now.nanos(),
            packets: n,
        });
        true
    }

    /// Close the current monitor interval and emit its trace event.
    fn close_mi(&mut self, now: Instant) -> libra_types::MiStats {
        let min_rtt = self.min_rtt();
        let stats = self.tracker.close(now, min_rtt);
        // The MI close precedes whatever decision the controller takes on
        // it, so the trace reads cause-then-effect.
        self.tracer.emit_with(|| TraceEvent::MiClose {
            flow: self.id.0,
            at_ns: now.nanos(),
            acked_bytes: stats.acked_bytes,
            lost_bytes: stats.lost_bytes,
            ack_starved: stats.is_ack_starved(),
        });
        stats
    }

    /// When the next MI should fire after a tick at `now`.
    fn next_mi_at(&self, now: Instant) -> Instant {
        let srtt = self.srtt();
        let d = self.cca.mi_duration(srtt).max(Duration::from_millis(1));
        now + d
    }

    /// Close the current monitor interval and tick the controller.
    /// Returns when the next MI should fire.
    pub fn on_mi_tick(&mut self, now: Instant) -> Instant {
        let stats = self.close_mi(now);
        self.time_cca(|cca| cca.on_mi(&stats));
        self.next_mi_at(now)
    }

    /// Two-phase MI tick, phase 1: close the interval and let the
    /// controller either complete the tick inline (classic CCAs, the
    /// trait default — returns `false`) or submit a policy request into
    /// `policy_state` (returns `true`). On `true` the interval's stats
    /// are stashed and the caller owes exactly one
    /// [`FlowSender::mi_tick_resolve`] before
    /// [`FlowSender::mi_tick_finish`].
    pub fn mi_tick_submit(&mut self, now: Instant, policy_state: &mut Vec<f64>) -> bool {
        let stats = self.close_mi(now);
        let submitted = self.time_cca(|cca| cca.mi_submit(&stats, policy_state));
        if submitted {
            self.pending_mi = Some(stats);
        }
        submitted
    }

    /// Two-phase MI tick, phase 2: feed the policy server's action back
    /// into the controller for the interval stashed by
    /// [`FlowSender::mi_tick_submit`].
    pub fn mi_tick_resolve(&mut self, action: &[f64]) {
        let stats = self
            .pending_mi
            .take()
            .expect("mi_tick_resolve without a submitted MI");
        self.time_cca(|cca| cca.mi_resolve(&stats, action));
    }

    /// Two-phase MI tick, phase 3: schedule-side tail of the tick.
    /// Returns when the next MI should fire (the controller's decision is
    /// already applied, so `mi_duration` sees the post-decision state —
    /// exactly as at the end of [`FlowSender::on_mi_tick`]).
    pub fn mi_tick_finish(&mut self, now: Instant) -> Instant {
        debug_assert!(self.pending_mi.is_none(), "unresolved policy request");
        self.next_mi_at(now)
    }

    /// Average goodput between `start` and `end`.
    pub fn avg_goodput(&self, span: Duration) -> Rate {
        Rate::from_bytes_over(self.delivered_bytes, span)
    }

    /// Fraction of packets lost among those resolved (acked or lost).
    pub fn loss_fraction(&self) -> f64 {
        let resolved = self.acked_packets + self.lost_packets;
        if resolved == 0 {
            0.0
        } else {
            self.lost_packets as f64 / resolved as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-window controller for driving the sender in isolation.
    struct TestCca {
        cwnd: u64,
        acks: u32,
        losses: u32,
        mis: u32,
    }
    impl CongestionControl for TestCca {
        fn name(&self) -> &'static str {
            "test"
        }
        fn on_ack(&mut self, _: &AckEvent) {
            self.acks += 1;
        }
        fn on_loss(&mut self, _: &LossEvent) {
            self.losses += 1;
        }
        fn on_mi(&mut self, _: &libra_types::MiStats) {
            self.mis += 1;
        }
        fn cwnd_bytes(&self) -> u64 {
            self.cwnd
        }
    }

    fn sender(cwnd: u64) -> FlowSender {
        FlowSender::new(
            FlowId(0),
            Box::new(TestCca {
                cwnd,
                acks: 0,
                losses: 0,
                mis: 0,
            }),
            1500,
            Instant::ZERO,
            Instant::from_secs(100),
            Duration::from_millis(40),
            Duration::from_millis(100),
        )
    }

    fn ack_for(p: &Packet, _now: Instant) -> AckPacket {
        AckPacket {
            flow: p.flow,
            seq: p.seq,
            bytes: p.bytes,
            sent_at: p.sent_at,
            delivered_at_send: p.delivered_at_send,
            app_limited: p.app_limited,
            ecn: p.ecn,
        }
    }

    /// Test shim over the scratch-buffer API: collect one call's output.
    fn emit(s: &mut FlowSender, now: Instant) -> (Vec<Packet>, Option<Instant>) {
        let mut out = Vec::new();
        let wake = s.try_emit(now, &mut out);
        (out, wake)
    }

    #[test]
    fn initial_burst_fills_window() {
        let mut s = sender(10 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        assert_eq!(pkts.len(), 10);
        assert_eq!(s.in_flight(), 15_000);
        // Window-limited now.
        let (pkts2, wake2) = emit(&mut s, Instant::from_millis(1));
        assert!(pkts2.is_empty());
        assert!(wake2.is_none());
    }

    #[test]
    fn ack_frees_window_and_sets_rtt() {
        let mut s = sender(2 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        assert_eq!(pkts.len(), 2);
        let now = Instant::from_millis(50);
        let losses = s.on_ack_packet(&ack_for(&pkts[0], now), now);
        assert!(losses.is_empty());
        assert_eq!(s.srtt(), Duration::from_millis(50));
        assert_eq!(s.min_rtt(), Duration::from_millis(50));
        assert_eq!(s.in_flight(), 1500);
        assert_eq!(s.delivered_bytes, 1500);
        // Paced now: emitting again yields a packet (credit available).
        let (pkts2, _) = emit(&mut s, now);
        assert_eq!(pkts2.len(), 1);
    }

    #[test]
    fn pacing_spaces_packets() {
        let mut s = sender(100 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        assert_eq!(pkts.len(), 100, "initial burst fills the window");
        // Free half the window so the next emission is pacing-limited,
        // not window-limited.
        let now = Instant::from_millis(100);
        for p in &pkts[..50] {
            s.on_ack_packet(&ack_for(p, now), now);
        }
        // cwnd 150 kB, srtt 100 ms → pacing ≈ 1.2 × 12 Mbps.
        let (pkts2, wake) = emit(&mut s, now);
        // One packet immediately, then pacing-limited with a wake time.
        assert!(!pkts2.is_empty());
        let wake = wake.expect("pacing wake");
        assert!(wake > now);
        let gap = wake.saturating_since(now);
        // 1500 B at 14.4 Mbps ≈ 833 µs per packet — allow some slack for
        // multiple packets emitted in the call.
        assert!(gap < Duration::from_millis(10), "gap {gap}");
    }

    #[test]
    fn reorder_rule_declares_loss() {
        let mut s = sender(10 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        // ACK 1,2,3,4 but never 0 → 0 is lost when 4 is ACKed (0 < 4-3+... cutoff=1).
        let mut losses = Vec::new();
        for (i, p) in pkts.iter().enumerate().skip(1).take(4) {
            let now = Instant::from_millis(10 * (i as u64 + 1));
            losses.extend_from_slice(s.on_ack_packet(&ack_for(p, now), now));
        }
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].seq, 0);
        assert_eq!(losses[0].kind, LossKind::FastRetransmit);
        assert_eq!(s.lost_packets, 1);
    }

    #[test]
    fn rto_fires_and_flushes() {
        let mut s = sender(4 * 1500);
        s.activate(Instant::ZERO);
        let _ = emit(&mut s, Instant::ZERO);
        assert_eq!(s.in_flight(), 6000);
        // Nothing ACKed; RTO floor is 200 ms (srtt unknown → init 40 ms).
        assert!(!s.on_rto_check(Instant::from_millis(100)));
        assert!(s.on_rto_check(Instant::from_millis(500)));
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.lost_packets, 4);
        // Idempotent afterwards.
        assert!(!s.on_rto_check(Instant::from_millis(501)));
    }

    #[test]
    fn mi_tick_schedules_next() {
        let mut s = sender(4 * 1500);
        s.activate(Instant::ZERO);
        let next = s.on_mi_tick(Instant::from_millis(40));
        assert_eq!(next, Instant::from_millis(80)); // init_rtt = 40 ms
    }

    #[test]
    fn stop_time_halts_emission() {
        let mut s = sender(10 * 1500);
        s.activate(Instant::ZERO);
        s.stop = Instant::from_millis(10);
        let (pkts, _) = emit(&mut s, Instant::from_millis(20));
        assert!(pkts.is_empty());
    }

    #[test]
    fn late_ack_after_rto_is_ignored() {
        let mut s = sender(2 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        assert!(s.on_rto_check(Instant::from_millis(500)));
        let before = s.delivered_bytes;
        let now = Instant::from_millis(600);
        let losses = s.on_ack_packet(&ack_for(&pkts[0], now), now);
        assert!(losses.is_empty());
        assert_eq!(s.delivered_bytes, before);
    }

    #[test]
    fn window_survives_resumed_sending_after_rto() {
        // After an RTO flush the deque is empty but next_seq keeps
        // counting; the window must re-anchor its base on the next send.
        let mut s = sender(2 * 1500);
        s.activate(Instant::ZERO);
        let _ = emit(&mut s, Instant::ZERO);
        assert!(s.on_rto_check(Instant::from_millis(500)));
        let now = Instant::from_millis(500);
        let (pkts, _) = emit(&mut s, now);
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].seq, 2, "sequences continue after the flush");
        let later = Instant::from_millis(550);
        let losses = s.on_ack_packet(&ack_for(&pkts[0], later), later);
        assert!(losses.is_empty());
        assert_eq!(s.in_flight(), 1500);
    }

    #[test]
    fn out_of_order_acks_clear_mid_window_slots() {
        let mut s = sender(6 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        assert_eq!(pkts.len(), 6);
        let now = Instant::from_millis(10);
        // ACK 2 then 0 then 1: holes open and close mid-window without
        // tripping the reorder rule (high=2 < cutoff threshold).
        for idx in [2usize, 0, 1] {
            let losses = s.on_ack_packet(&ack_for(&pkts[idx], now), now);
            assert!(losses.is_empty());
        }
        assert_eq!(s.in_flight(), 3 * 1500);
        // Duplicate ACK is a no-op.
        assert!(s.on_ack_packet(&ack_for(&pkts[1], now), now).is_empty());
        assert_eq!(s.in_flight(), 3 * 1500);
    }

    #[test]
    fn bin_series_mbps() {
        let mut b = BinSeries::with_horizon(Duration::from_millis(100), Duration::from_secs(1));
        b.add(Instant::from_millis(50), 125_000.0); // 125 kB in first bin
        let pts = b.points_as_mbps();
        assert_eq!(pts.len(), 1);
        assert!((pts[0].1 - 10.0).abs() < 1e-9); // 125 kB / 100 ms = 10 Mbps
    }

    #[test]
    fn loss_fraction() {
        let mut s = sender(10 * 1500);
        s.activate(Instant::ZERO);
        let (pkts, _) = emit(&mut s, Instant::ZERO);
        for (i, p) in pkts.iter().enumerate().skip(1).take(4) {
            let now = Instant::from_millis(10 * (i as u64 + 1));
            s.on_ack_packet(&ack_for(p, now), now);
        }
        // 4 acked, 1 lost
        assert!((s.loss_fraction() - 0.2).abs() < 1e-12);
    }
}
