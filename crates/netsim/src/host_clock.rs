// lint: allow-file(host_clock)
//! The workspace's single audited wall-clock access point.
//!
//! Everything the simulator computes must be a pure function of
//! `(configuration, seed)` — which is why `libra-lint`'s `host-clock`
//! rule bans `std::time::Instant`/`SystemTime` everywhere else. The one
//! legitimate use of the host clock is *measuring our own compute cost*
//! (the paper's CPU-overhead metric, Fig. 2c/Fig. 12, and the perf-smoke
//! wall-clock numbers in `BENCH_netsim.json`): those readings are
//! reported as telemetry, never fed back into simulation behaviour.
//!
//! Keeping the access behind this module means the determinism audit is
//! one file long: any new wall-clock dependency has to either go through
//! [`stamp`] (and inherit this rationale) or argue with the lint gate.

/// An opaque wall-clock stamp; the only thing it can do is measure the
/// host time elapsed since it was taken.
#[derive(Debug, Clone, Copy)]
pub struct HostStamp(std::time::Instant);

/// Take a wall-clock stamp now.
#[inline]
pub fn stamp() -> HostStamp {
    HostStamp(std::time::Instant::now())
}

impl HostStamp {
    /// Nanoseconds of host time elapsed since the stamp was taken.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }

    /// Seconds (fractional) of host time elapsed since the stamp.
    #[inline]
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Milliseconds (fractional) of host time elapsed since the stamp.
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let t0 = stamp();
        let a = t0.elapsed_ns();
        let b = t0.elapsed_ns();
        assert!(b >= a);
        assert!(t0.elapsed_secs_f64() >= 0.0);
        assert!(t0.elapsed_ms() >= 0.0);
    }
}
