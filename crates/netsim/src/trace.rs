//! Trace generators: the workloads of the paper's evaluation.
//!
//! The paper drives its emulation with recorded Pantheon/DeepCC traces.
//! Those recordings are not redistributable, so this module synthesizes
//! traces with matched statistics (see DESIGN.md "Substitutions"):
//!
//! * **Wired** — constant-capacity links (12/24/48/96 Mbps).
//! * **LTE** — a mean-reverting (Ornstein–Uhlenbeck) capacity process in
//!   0–40 Mbps, parameterized per mobility scenario: *stationary* (slow,
//!   small swings), *walking* (moderate), *driving* (fast, deep fades).
//! * **Step** — the Fig. 2a step scenario (capacity jumps every 10 s).
//! * **WAN** — inter-/intra-continental Internet profiles: long RTTs,
//!   stochastic loss, ACK jitter and shallow policer-style buffers.

use crate::aqm::QueueConfig;
use crate::capacity::CapacitySchedule;
use crate::faults::FaultPlan;
use crate::loss::{GilbertElliott, LossProcess};
use crate::queue::EcnConfig;
use crate::sim::LinkConfig;
use libra_types::{Bytes, DetRng, Duration, Instant, Rate};

/// LTE mobility scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LteScenario {
    /// Handset on a desk: slowly varying capacity around a high mean.
    Stationary,
    /// Pedestrian mobility: moderate variation.
    Walking,
    /// Vehicular mobility: fast variation with deep fades.
    Driving,
}

impl LteScenario {
    /// All scenarios, in the paper's LTE#1–#3 order.
    pub const ALL: [LteScenario; 3] = [
        LteScenario::Stationary,
        LteScenario::Walking,
        LteScenario::Driving,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            LteScenario::Stationary => "LTE-stationary",
            LteScenario::Walking => "LTE-walking",
            LteScenario::Driving => "LTE-driving",
        }
    }

    /// (mean Mbps, reversion rate 1/s, volatility Mbps/√s, fade probability per step)
    fn params(self) -> (f64, f64, f64, f64) {
        match self {
            LteScenario::Stationary => (24.0, 0.4, 3.0, 0.000),
            LteScenario::Walking => (18.0, 0.8, 6.0, 0.002),
            LteScenario::Driving => (14.0, 1.6, 10.0, 0.008),
        }
    }
}

/// Synthesize an LTE capacity trace: an OU process sampled at 100 ms,
/// clamped to `[0.5, 40]` Mbps, with occasional deep fades (a few hundred
/// ms near zero) for the mobile scenarios.
pub fn lte_trace(scenario: LteScenario, total: Duration, rng: &mut DetRng) -> CapacitySchedule {
    let (mean, theta, sigma, fade_p) = scenario.params();
    let dt = 0.1; // 100 ms sampling, like Mahimahi trace granularity
    let steps = (total.as_secs_f64() / dt).ceil() as usize + 1;
    let mut segments = Vec::with_capacity(steps);
    let mut x = mean;
    let mut fade_left = 0usize;
    for k in 0..steps {
        let t = Instant::from_secs_f64_approx(k as f64 * dt);
        if fade_left > 0 {
            fade_left -= 1;
            segments.push((t, Rate::from_mbps(0.5)));
            continue;
        }
        if rng.chance(fade_p) {
            fade_left = 2 + rng.uniform_u64(0, 4) as usize; // 200–500 ms fade
            segments.push((t, Rate::from_mbps(0.5)));
            continue;
        }
        x += theta * (mean - x) * dt + sigma * dt.sqrt() * rng.normal();
        x = x.clamp(0.5, 40.0);
        segments.push((t, Rate::from_mbps(x)));
    }
    CapacitySchedule::from_segments(segments)
}

// Small private helper so `lte_trace` reads naturally.
trait FromSecsApprox {
    fn from_secs_f64_approx(s: f64) -> Instant;
}
impl FromSecsApprox for Instant {
    fn from_secs_f64_approx(s: f64) -> Instant {
        Instant::from_nanos((s * 1e9).round() as u64)
    }
}

/// The paper's Sec. 2 / Fig. 1 wired scenarios: constant capacity,
/// 30 ms minimum RTT, 150 KB buffer.
pub fn wired_link(mbps: f64) -> LinkConfig {
    LinkConfig::constant_with_buffer(
        Rate::from_mbps(mbps),
        Duration::from_millis(30),
        Bytes::from_kb(150),
    )
}

/// The paper's LTE scenarios: synthetic trace, 30 ms minimum RTT,
/// 150 KB buffer (matching Fig. 2b's setup).
pub fn lte_link(scenario: LteScenario, total: Duration, rng: &mut DetRng) -> LinkConfig {
    LinkConfig {
        capacity: lte_trace(scenario, total, rng),
        one_way_delay: Duration::from_millis(15),
        buffer: Bytes::from_kb(150),
        stochastic_loss: 0.0,
        ack_jitter: Duration::from_micros(500),
        loss_process: None,
        ecn: None,
        faults: FaultPlan::default(),
        queue: QueueConfig::Droptail,
    }
}

/// Fig. 2a's step scenario: capacity changes every 10 s, 80 ms minimum
/// RTT, 1 BDP buffer (sized for the mean rate).
pub fn step_link(total: Duration) -> LinkConfig {
    let rates = [
        Rate::from_mbps(20.0),
        Rate::from_mbps(5.0),
        Rate::from_mbps(15.0),
        Rate::from_mbps(10.0),
        Rate::from_mbps(25.0),
    ];
    let capacity = CapacitySchedule::step(&rates, Duration::from_secs(10), total);
    let mean = Rate::from_mbps(15.0);
    LinkConfig {
        capacity,
        one_way_delay: Duration::from_millis(40),
        buffer: Bytes::bdp(mean, Duration::from_millis(80)),
        stochastic_loss: 0.0,
        ack_jitter: Duration::ZERO,
        loss_process: None,
        ecn: None,
        faults: FaultPlan::default(),
        queue: QueueConfig::Droptail,
    }
}

/// WAN profile flavour for the live-Internet substitution (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WanScenario {
    /// Long paths (e.g. Tokyo → US-East): 150–250 ms RTT, 1–3 % stochastic
    /// loss, jittery ACK path, shallow (policer-like) buffer.
    InterContinental,
    /// Short paths (e.g. Tokyo → Hong Kong): 30–60 ms RTT, light loss.
    IntraContinental,
}

impl WanScenario {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            WanScenario::InterContinental => "inter-continental",
            WanScenario::IntraContinental => "intra-continental",
        }
    }
}

/// Sample a WAN path: each draw is one emulated EC2 pair.
pub fn wan_link(scenario: WanScenario, total: Duration, rng: &mut DetRng) -> LinkConfig {
    match scenario {
        WanScenario::InterContinental => {
            let rtt_ms = rng.uniform_range(150.0, 250.0);
            let mean_mbps = rng.uniform_range(40.0, 80.0);
            let loss = rng.uniform_range(0.01, 0.03);
            let capacity = jittery_capacity(mean_mbps, 0.15, total, rng);
            LinkConfig {
                capacity,
                one_way_delay: Duration::from_secs_f64(rtt_ms / 2.0 / 1e3),
                // Shallow policer-style buffer: ~0.4 BDP.
                buffer: Bytes::new(
                    (Bytes::bdp(
                        Rate::from_mbps(mean_mbps),
                        Duration::from_secs_f64(rtt_ms / 1e3),
                    )
                    .get() as f64
                        * 0.4) as u64,
                ),
                stochastic_loss: loss,
                ack_jitter: Duration::from_millis(4),
                loss_process: None,
                ecn: None,
                faults: FaultPlan::default(),
                queue: QueueConfig::Droptail,
            }
        }
        WanScenario::IntraContinental => {
            let rtt_ms = rng.uniform_range(30.0, 60.0);
            let mean_mbps = rng.uniform_range(80.0, 120.0);
            let capacity = jittery_capacity(mean_mbps, 0.05, total, rng);
            LinkConfig {
                capacity,
                one_way_delay: Duration::from_secs_f64(rtt_ms / 2.0 / 1e3),
                buffer: Bytes::bdp(
                    Rate::from_mbps(mean_mbps),
                    Duration::from_secs_f64(rtt_ms / 1e3),
                ),
                stochastic_loss: 0.001,
                ack_jitter: Duration::from_millis(1),
                loss_process: None,
                ecn: None,
                faults: FaultPlan::default(),
                queue: QueueConfig::Droptail,
            }
        }
    }
}

/// Capacity that wobbles around a mean by ±`rel` (cross-traffic effect),
/// resampled every 500 ms.
fn jittery_capacity(
    mean_mbps: f64,
    rel: f64,
    total: Duration,
    rng: &mut DetRng,
) -> CapacitySchedule {
    let step = Duration::from_millis(500);
    let steps = (total.nanos() / step.nanos()) as usize + 1;
    let mut segments = Vec::with_capacity(steps);
    let mut t = Instant::ZERO;
    for _ in 0..steps {
        let f = 1.0 + rng.uniform_range(-rel, rel);
        segments.push((t, Rate::from_mbps(mean_mbps * f)));
        t += step;
    }
    CapacitySchedule::from_segments(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_trace_in_bounds() {
        let mut rng = DetRng::new(1);
        let tr = lte_trace(LteScenario::Driving, Duration::from_secs(60), &mut rng);
        for &(_, r) in tr.segments() {
            assert!(r.mbps() >= 0.49 && r.mbps() <= 40.01, "{r}");
        }
        assert!(tr.segments().len() > 500);
    }

    #[test]
    fn lte_scenarios_differ_in_volatility() {
        let mut rng = DetRng::new(2);
        let total = Duration::from_secs(120);
        let measure = |s: LteScenario, rng: &mut DetRng| {
            let tr = lte_trace(s, total, rng);
            let rates: Vec<f64> = tr.segments().iter().map(|&(_, r)| r.mbps()).collect();
            let diffs: f64 = rates.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
            diffs / rates.len() as f64
        };
        let st = measure(LteScenario::Stationary, &mut rng);
        let dr = measure(LteScenario::Driving, &mut rng);
        assert!(dr > 1.5 * st, "stationary {st}, driving {dr}");
    }

    #[test]
    fn lte_trace_deterministic() {
        let a = lte_trace(
            LteScenario::Walking,
            Duration::from_secs(10),
            &mut DetRng::new(9),
        );
        let b = lte_trace(
            LteScenario::Walking,
            Duration::from_secs(10),
            &mut DetRng::new(9),
        );
        assert_eq!(a.segments().len(), b.segments().len());
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn wired_link_matches_paper_setup() {
        let l = wired_link(48.0);
        assert_eq!(l.one_way_delay, Duration::from_millis(15));
        assert_eq!(l.buffer, Bytes::from_kb(150));
        assert_eq!(
            l.capacity.rate_at(Instant::from_secs(30)),
            Rate::from_mbps(48.0)
        );
    }

    #[test]
    fn step_link_capacity_changes_every_10s() {
        let l = step_link(Duration::from_secs(50));
        let r0 = l.capacity.rate_at(Instant::from_secs(5));
        let r1 = l.capacity.rate_at(Instant::from_secs(15));
        assert_ne!(r0, r1);
        assert_eq!(l.one_way_delay, Duration::from_millis(40));
    }

    #[test]
    fn wan_profiles_have_expected_shape() {
        let mut rng = DetRng::new(5);
        let inter = wan_link(
            WanScenario::InterContinental,
            Duration::from_secs(30),
            &mut rng,
        );
        let intra = wan_link(
            WanScenario::IntraContinental,
            Duration::from_secs(30),
            &mut rng,
        );
        assert!(inter.one_way_delay > intra.one_way_delay);
        assert!(inter.stochastic_loss > intra.stochastic_loss);
        let rtt_inter = inter.one_way_delay.as_millis_f64() * 2.0;
        assert!((150.0..=250.0).contains(&rtt_inter), "{rtt_inter}");
    }

    #[test]
    fn labels() {
        assert_eq!(LteScenario::Driving.label(), "LTE-driving");
        assert_eq!(WanScenario::InterContinental.label(), "inter-continental");
    }
}

/// GEO-satellite path (Sec. 7: "long RTT and high stochastic loss rate
/// in satellite networks"): ~600 ms RTT, 20 Mbps, bursty 2 % loss.
pub fn satellite_link(total: Duration, rng: &mut DetRng) -> LinkConfig {
    let capacity = {
        // Mild weather-driven wobble around 20 Mbps.
        let step = Duration::from_secs(2);
        let steps = (total.nanos() / step.nanos()) as usize + 1;
        let mut segments = Vec::with_capacity(steps);
        let mut t = Instant::ZERO;
        for _ in 0..steps {
            segments.push((
                t,
                Rate::from_mbps(20.0 * (1.0 + rng.uniform_range(-0.1, 0.1))),
            ));
            t += step;
        }
        CapacitySchedule::from_segments(segments)
    };
    LinkConfig {
        capacity,
        one_way_delay: Duration::from_millis(300),
        buffer: Bytes::bdp(Rate::from_mbps(20.0), Duration::from_millis(600)),
        stochastic_loss: 0.0,
        ack_jitter: Duration::from_millis(2),
        loss_process: Some(LossProcess::GilbertElliott(GilbertElliott::bursty(
            0.02, 15.0,
        ))),
        ecn: None,
        faults: FaultPlan::default(),
        queue: QueueConfig::Droptail,
    }
}

/// 5G mmWave-style path (Sec. 7: "abrupt fluctuation on available link
/// capacity in 5G scenarios"): capacity toggles between a high
/// line-of-sight mode and a much lower blocked mode.
pub fn fiveg_link(total: Duration, rng: &mut DetRng) -> LinkConfig {
    let mut segments = Vec::new();
    let mut t = Instant::ZERO;
    let mut blocked = false;
    while t.nanos() < total.nanos() {
        let rate = if blocked {
            Rate::from_mbps(rng.uniform_range(10.0, 30.0))
        } else {
            Rate::from_mbps(rng.uniform_range(150.0, 300.0))
        };
        segments.push((t, rate));
        // Dwell: LoS 1–4 s, blockage 0.2–1 s.
        let dwell = if blocked {
            rng.uniform_range(0.2, 1.0)
        } else {
            rng.uniform_range(1.0, 4.0)
        };
        t += Duration::from_secs_f64(dwell);
        blocked = !blocked;
    }
    LinkConfig {
        capacity: CapacitySchedule::from_segments(segments),
        one_way_delay: Duration::from_millis(10),
        buffer: Bytes::from_kb(750),
        stochastic_loss: 0.0,
        ack_jitter: Duration::from_micros(500),
        loss_process: None,
        ecn: None,
        faults: FaultPlan::default(),
        queue: QueueConfig::Droptail,
    }
}

/// LEO-constellation path (Starlink-style): low RTT for a satellite hop
/// (~25 ms one-way) but periodic **handover capacity cliffs** — every
/// `handover_period` the serving satellite changes, capacity collapses to
/// near zero for `outage`, then resumes at a freshly drawn level around
/// `mean_mbps`. Between handovers the rate wobbles mildly. The cliff
/// cadence is the defining hazard: a controller that has converged on the
/// pre-handover rate faces an instant, deep capacity drop.
pub fn leo_link(
    mean_mbps: f64,
    handover_period: Duration,
    outage: Duration,
    total: Duration,
    rng: &mut DetRng,
) -> LinkConfig {
    let mut segments = Vec::new();
    let mut t = Instant::ZERO;
    let wobble_step = Duration::from_millis(500);
    while t.nanos() < total.nanos() {
        // One serving-satellite dwell: a fresh beam capacity, mild wobble.
        let beam = mean_mbps * (1.0 + rng.uniform_range(-0.35, 0.35));
        let dwell_end = (t + handover_period).nanos().min(total.nanos());
        while t.nanos() < dwell_end {
            let f = 1.0 + rng.uniform_range(-0.08, 0.08);
            segments.push((t, Rate::from_mbps((beam * f).max(1.0))));
            t += wobble_step;
        }
        // Handover: the cliff — near-zero capacity for the outage window.
        t = Instant::from_nanos(dwell_end);
        if t.nanos() < total.nanos() && !outage.is_zero() {
            segments.push((t, Rate::from_mbps(0.1)));
            t += outage;
        }
    }
    LinkConfig {
        capacity: CapacitySchedule::from_segments(segments),
        one_way_delay: Duration::from_millis(25),
        buffer: Bytes::bdp(Rate::from_mbps(mean_mbps), Duration::from_millis(100)),
        stochastic_loss: 0.0,
        ack_jitter: Duration::from_millis(1),
        loss_process: None,
        ecn: None,
        faults: FaultPlan::default(),
        queue: QueueConfig::Droptail,
    }
}

/// Datacenter hop with DCTCP-style ECN step marking: 200 Mbps, 400 µs
/// RTT, marking threshold ≈ 20 packets (Sec. 7's ECN extension).
pub fn datacenter_link() -> LinkConfig {
    LinkConfig {
        capacity: CapacitySchedule::constant(Rate::from_mbps(200.0)),
        one_way_delay: Duration::from_micros(200),
        buffer: Bytes::new(150 * 1500), // deep switch buffer
        stochastic_loss: 0.0,
        ack_jitter: Duration::ZERO,
        loss_process: None,
        ecn: Some(EcnConfig {
            threshold: Bytes::new(20 * 1500),
        }),
        faults: FaultPlan::default(),
        queue: QueueConfig::Droptail,
    }
}

#[cfg(test)]
mod other_network_tests {
    use super::*;

    #[test]
    fn satellite_shape() {
        let mut rng = DetRng::new(1);
        let l = satellite_link(Duration::from_secs(30), &mut rng);
        assert_eq!(l.one_way_delay, Duration::from_millis(300));
        let lp = l.loss_process.as_ref().expect("bursty loss");
        assert!((lp.mean_loss() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn fiveg_has_abrupt_swings() {
        let mut rng = DetRng::new(2);
        let l = fiveg_link(Duration::from_secs(30), &mut rng);
        let rates: Vec<f64> = (0..300)
            .map(|k| l.capacity.rate_at(Instant::from_millis(k * 100)).mbps())
            .collect();
        let hi = rates.iter().cloned().fold(f64::MIN, f64::max);
        let lo = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(hi > 3.0 * lo, "hi {hi} lo {lo}");
    }

    #[test]
    fn leo_has_periodic_cliffs() {
        let mut rng = DetRng::new(3);
        let l = leo_link(
            40.0,
            Duration::from_secs(15),
            Duration::from_millis(300),
            Duration::from_secs(60),
            &mut rng,
        );
        // Cliffs land right after each 15 s handover boundary.
        let during = l
            .capacity
            .rate_at(Instant::from_millis(15_000 + 100))
            .mbps();
        assert!(during < 1.0, "handover outage missing: {during} Mbps");
        let after = l.capacity.rate_at(Instant::from_millis(16_000)).mbps();
        assert!(after > 5.0, "capacity never recovered: {after} Mbps");
        assert_eq!(l.one_way_delay, Duration::from_millis(25));
    }

    #[test]
    fn leo_is_deterministic() {
        let build = || {
            leo_link(
                40.0,
                Duration::from_secs(15),
                Duration::from_millis(300),
                Duration::from_secs(60),
                &mut DetRng::new(7),
            )
        };
        let (a, b) = (build(), build());
        assert_eq!(a.capacity.segments().len(), b.capacity.segments().len());
        for (x, y) in a.capacity.segments().iter().zip(b.capacity.segments()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn datacenter_marks_ecn() {
        let l = datacenter_link();
        assert!(l.ecn.is_some());
        assert_eq!(l.one_way_delay, Duration::from_micros(200));
    }
}
