//! Criterion benchmarks for the learning substrate: MLP forward/backward
//! scaling and PPO update cost — what the paper's training pipeline pays
//! per step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use libra_nn::{Activation, Mlp};
use libra_rl::{PpoAgent, PpoConfig};
use libra_types::DetRng;
use std::hint::black_box;

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_forward");
    for width in [64usize, 256, 512] {
        let mut rng = DetRng::new(1);
        let net = Mlp::new(&[32, width, width, 1], Activation::Tanh, &mut rng);
        let input = vec![0.1; 32];
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| black_box(net.forward(black_box(&input))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mlp_backward");
    for width in [64usize, 512] {
        let mut rng = DetRng::new(2);
        let net = Mlp::new(&[32, width, width, 1], Activation::Tanh, &mut rng);
        let input = vec![0.1; 32];
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            let mut grad = net.zero_grad();
            b.iter(|| {
                let cache = net.forward_cached(black_box(&input));
                net.backward(&cache, &[1.0], &mut grad);
                grad.clear();
            })
        });
    }
    group.finish();
}

fn bench_ppo_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppo_update");
    group.sample_size(10);
    group.bench_function("update_512_samples", |b| {
        b.iter_batched(
            || {
                let mut rng = DetRng::new(3);
                let mut agent = PpoAgent::new(PpoConfig::new(32, 1), &mut rng);
                let mut env_rng = DetRng::new(4);
                for _ in 0..512 {
                    let obs: Vec<f64> = (0..32).map(|_| env_rng.uniform()).collect();
                    let a = agent.act(&obs);
                    agent.give_reward(-(a[0] * a[0]), false);
                }
                agent
            },
            |mut agent| black_box(agent.update(None).samples),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mlp, bench_ppo_update
}
criterion_main!(benches);
