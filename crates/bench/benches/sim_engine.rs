//! Criterion benchmarks for the simulator substrate itself: event-loop
//! throughput and the trace-integration primitives every experiment
//! leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use libra_classic::Cubic;
use libra_netsim::{
    CapacitySchedule, FaultKind, FaultPlan, FlowConfig, LinkConfig, SimConfig, Simulation,
};
use libra_types::{DetRng, Duration, Instant, Rate};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("cubic_10s_24mbps", |b| {
        b.iter(|| {
            let link = LinkConfig::constant(Rate::from_mbps(24.0), Duration::from_millis(40), 1.0);
            let until = Instant::from_secs(10);
            let mut sim = Simulation::new(link, 7);
            sim.add_flow(FlowConfig::whole_run(Box::new(Cubic::new(1500)), until));
            black_box(sim.run(until).link.utilization)
        })
    });
    group.bench_function("three_cubic_flows_10s", |b| {
        b.iter(|| {
            let link = LinkConfig::constant(Rate::from_mbps(48.0), Duration::from_millis(40), 1.0);
            let until = Instant::from_secs(10);
            let mut sim = Simulation::new(link, 7);
            for _ in 0..3 {
                sim.add_flow(FlowConfig::whole_run(Box::new(Cubic::new(1500)), until));
            }
            black_box(sim.run(until).jain_index())
        })
    });
    // Long multi-flow run: the shape of the convergence / fairness
    // experiments, and the heaviest single event loop in the suite.
    // This is the headline number for hot-path work (capacity cursor,
    // heap reuse, preallocated series).
    group.bench_function("eight_cubic_flows_60s", |b| {
        b.iter(|| {
            let link = LinkConfig::constant(Rate::from_mbps(96.0), Duration::from_millis(40), 1.0);
            let until = Instant::from_secs(60);
            let mut sim = Simulation::new(link, 11);
            for _ in 0..8 {
                sim.add_flow(FlowConfig::whole_run(Box::new(Cubic::new(1500)), until));
            }
            black_box(sim.run(until).jain_index())
        })
    });
    group.finish();
}

/// Empty-vs-populated `FaultPlan` pair: the empty case should show the
/// fault engine costing nothing (the `faults_active` fast path skips it
/// entirely); the populated case prices the per-ACK fate machinery.
fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_plan");
    group.sample_size(10);
    let run = |faults: FaultPlan| {
        let mut link = LinkConfig::constant(Rate::from_mbps(48.0), Duration::from_millis(40), 1.0);
        link.faults = faults;
        let until = Instant::from_secs(20);
        let mut sim = Simulation::new(link, 13);
        sim.add_flow(FlowConfig::whole_run(Box::new(Cubic::new(1500)), until));
        sim.run(until).link.utilization
    };
    group.bench_function("empty_plan_20s", |b| {
        b.iter(|| black_box(run(FaultPlan::none())))
    });
    group.bench_function("reorder_plan_20s", |b| {
        b.iter(|| {
            black_box(run(FaultPlan::none().with(
                Instant::from_secs(2),
                Instant::from_secs(18),
                FaultKind::Reorder {
                    probability: 0.02,
                    extra_delay: Duration::from_millis(12),
                },
            )))
        })
    });
    group.finish();
}

/// Disabled-vs-enabled tracing pair over an identical run. The disabled
/// case prices the `Tracer::emit_with` no-op path sprinkled through the
/// transport hot loop — it must stay within noise of a build without
/// tracing at all (the acceptance bar is <3 % vs the pinned
/// `BENCH_netsim.json` numbers). The enabled case prices event
/// construction + ring-buffer recording.
fn bench_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing");
    group.sample_size(10);
    let run = |cfg: SimConfig| {
        let link = LinkConfig::constant(Rate::from_mbps(24.0), Duration::from_millis(40), 1.0);
        let until = Instant::from_secs(10);
        let mut sim = Simulation::with_config(link, 7, cfg);
        sim.add_flow(FlowConfig::whole_run(Box::new(Cubic::new(1500)), until));
        sim.run(until).link.utilization
    };
    group.bench_function("cubic_10s_disabled", |b| {
        b.iter(|| black_box(run(SimConfig::default())))
    });
    group.bench_function("cubic_10s_enabled", |b| {
        b.iter(|| black_box(run(SimConfig::traced())))
    });
    group.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity_schedule");
    let mut rng = DetRng::new(3);
    let trace = libra_netsim::lte_trace(
        libra_netsim::LteScenario::Driving,
        Duration::from_secs(60),
        &mut rng,
    );
    group.bench_function("rate_at", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 37) % 60_000;
            black_box(trace.rate_at(Instant::from_millis(t)))
        })
    });
    group.bench_function("service_finish", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 37) % 60_000;
            black_box(trace.service_finish(Instant::from_millis(t), 1500))
        })
    });
    let constant = CapacitySchedule::constant(Rate::from_mbps(48.0));
    group.bench_function("capacity_bytes_integral", |b| {
        b.iter(|| black_box(constant.capacity_bytes(Instant::ZERO, Instant::from_secs(60))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulation, bench_faults, bench_tracing, bench_capacity
}
criterion_main!(benches);
