//! Criterion micro-benchmarks for per-decision controller cost — the
//! microscopic counterpart of Fig. 2c / Fig. 12: classic CCAs cost
//! nanoseconds per ACK; learned CCAs pay an NN forward pass per MI;
//! Libra pays it only during exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use libra_classic::{Bbr, Cubic};
use libra_core::Libra;
use libra_learned::{RlCca, RlCcaConfig};
use libra_rl::PpoAgent;
use libra_types::{AckEvent, CongestionControl, DetRng, Duration, Instant, MiStats, Rate};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn ack(now_ms: u64) -> AckEvent {
    AckEvent {
        now: Instant::from_millis(now_ms),
        seq: now_ms,
        bytes: 1500,
        rtt: Duration::from_millis(50),
        min_rtt: Duration::from_millis(50),
        srtt: Duration::from_millis(50),
        sent_at: Instant::from_millis(now_ms.saturating_sub(50)),
        delivered_at_send: now_ms * 1000,
        delivered: now_ms * 1000 + 1500,
        in_flight: 30_000,
        app_limited: false,
    }
}

fn mi(now_ms: u64) -> MiStats {
    let mut s = MiStats::empty(Instant::from_millis(now_ms));
    s.start = Instant::from_millis(now_ms.saturating_sub(50));
    s.end = Instant::from_millis(now_ms);
    s.sending_rate = Rate::from_mbps(20.0);
    s.delivery_rate = Rate::from_mbps(19.0);
    s.avg_rtt = Duration::from_millis(55);
    s.min_rtt = Duration::from_millis(50);
    s.acks = 50;
    s.sent_bytes = 125_000;
    s.acked_bytes = 120_000;
    s
}

fn bench_per_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_ack");
    let mut cubic = Cubic::new(1500);
    group.bench_function("cubic", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            cubic.on_ack(black_box(&ack(t)));
        })
    });
    let mut bbr = Bbr::new(1500);
    group.bench_function("bbr", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            bbr.on_ack(black_box(&ack(t)));
        })
    });
    group.finish();
}

fn rl_cca(hidden: Vec<usize>) -> RlCca {
    let mut cfg = RlCcaConfig::libra_rl();
    cfg.name = "bench";
    let mut ppo = cfg.ppo_config();
    ppo.hidden = hidden;
    let mut rng = DetRng::new(1);
    let mut agent = PpoAgent::new(ppo, &mut rng);
    agent.set_eval(true);
    let mut cca = RlCca::new(cfg, Rc::new(RefCell::new(agent)));
    // Leave the startup fast-path so the benchmark measures the real
    // per-MI path (feature extraction + NN inference).
    cca.set_rate(Rate::from_mbps(20.0), Duration::from_millis(50));
    cca
}

fn bench_per_mi(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_mi_decision");
    // Learned controller at the repo's default 2×64 geometry.
    let mut small = rl_cca(vec![64, 64]);
    group.bench_function("rl_2x64", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 50;
            small.on_mi(black_box(&mi(t)));
        })
    });
    // The paper's 2×512 geometry — the overhead the kernel deployment
    // would pay per inference.
    let mut large = rl_cca(vec![512, 512]);
    group.bench_function("rl_2x512", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 50;
            large.on_mi(black_box(&mi(t)));
        })
    });
    // Libra's MI handler outside exploration (no inference).
    let mut rng = DetRng::new(2);
    let mut agent = PpoAgent::new(Libra::ppo_config(), &mut rng);
    agent.set_eval(true);
    let mut libra = Libra::c_libra(Rc::new(RefCell::new(agent)));
    // Put Libra into its control cycle (out of classic startup) so the
    // bench measures stage-machine ticks, not the startup check.
    libra.set_rate(Rate::from_mbps(20.0), Duration::from_millis(50));
    group.bench_function("libra_mi", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 50;
            libra.on_mi(black_box(&mi(t)));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_per_ack, bench_per_mi
}
criterion_main!(benches);
